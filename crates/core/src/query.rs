//! Online query processing (paper §5.2, Algorithm 2).
//!
//! Iteration 0 produces the prime PPV of the query (loaded from the index
//! when the query is a hub, computed on the fly otherwise). Iteration `i`
//! assembles the tour partition `T^i` from the previous increment and the
//! stored prime PPVs of its border hubs (Theorem 4):
//!
//! ```text
//! r̂ⁱ_q = (1/α) · Σ_{h hub, r̂ⁱ⁻¹_q(h) > δ}  r̂ⁱ⁻¹_q(h) · r̊⁰_h
//! ```
//!
//! After every iteration the L1 error of the running estimate is exactly
//! `φ(k) = 1 − ‖r̂_q^(k)‖₁` (Eq. 6) — no exact PPV needed — which powers the
//! accuracy-aware [`StoppingCondition`].
//!
//! ## The allocation-free hot path
//!
//! The increment loop never materializes intermediate sparse vectors: the
//! running estimate lives in a dense [`ScoreScratch`] inside the
//! [`IncrementScratch`], increments are accumulated straight into it from
//! borrowed store views ([`PpvRef`]), the frontier of border hubs is
//! tracked in a second dense scratch and drained into a reused buffer, and
//! the covered mass `‖r̂‖₁` is maintained incrementally. The sorted sparse
//! estimate is materialized exactly once, in
//! [`IncrementalState::into_result`]. On a warmed-up workspace over a
//! [`crate::index::FlatIndex`], [`IncrementalState::step`] performs no
//! heap allocation at all (the per-iteration stats vector is preallocated
//! for 16 iterations and only reallocates — amortized — beyond that).
//! Cold **non-hub** queries are allocation-free too: iteration 0 runs the
//! fused [`PrimeComputer::prime_ppv_into`] extract+solve inside the
//! workspace's reused arena and is consumed as a borrowed slice, so no
//! per-query prime subgraph or PPV is ever materialized.

use std::time::{Duration, Instant};

use fastppv_graph::{Graph, NodeId, ScoreScratch, SparseVector};

use crate::config::Config;
use crate::hubs::HubSet;
use crate::index::{PpvRef, PpvStore};
use crate::prime::PrimeComputer;

/// When to stop the incremental iterations. Conditions combine with OR: the
/// session stops as soon as *any* of them is met (or when no border hub
/// clears `δ`, at which point the estimate cannot improve further).
#[derive(Clone, Copy, Debug, Default)]
pub struct StoppingCondition {
    /// Stop after this many increments beyond iteration 0 (the paper's `η`).
    pub max_iterations: Option<usize>,
    /// Stop once the accuracy-aware L1 error `φ` falls below this.
    pub l1_target: Option<f64>,
    /// Stop once this much wall-clock time has elapsed.
    pub time_limit: Option<Duration>,
}

impl StoppingCondition {
    /// Run exactly `eta` increments (paper's "number of iterations η").
    pub fn iterations(eta: usize) -> Self {
        StoppingCondition {
            max_iterations: Some(eta),
            ..Default::default()
        }
    }

    /// Run until `φ ≤ target`.
    pub fn l1_error(target: f64) -> Self {
        StoppingCondition {
            l1_target: Some(target),
            ..Default::default()
        }
    }

    /// Run until the time limit expires.
    pub fn time_limit(limit: Duration) -> Self {
        StoppingCondition {
            time_limit: Some(limit),
            ..Default::default()
        }
    }

    /// Adds an iteration cap to an existing condition.
    pub fn or_iterations(mut self, eta: usize) -> Self {
        self.max_iterations = Some(eta);
        self
    }

    /// Adds an L1 target to an existing condition.
    pub fn or_l1_error(mut self, target: f64) -> Self {
        self.l1_target = Some(target);
        self
    }

    /// Adds a time limit to an existing condition.
    pub fn or_time_limit(mut self, limit: Duration) -> Self {
        self.time_limit = Some(limit);
        self
    }

    fn met(&self, iterations_done: usize, l1_error: f64, elapsed: Duration) -> bool {
        if self.max_iterations.is_some_and(|k| iterations_done >= k) {
            return true;
        }
        if self.l1_target.is_some_and(|t| l1_error <= t) {
            return true;
        }
        if self.time_limit.is_some_and(|l| elapsed >= l) {
            return true;
        }
        // No condition at all means "run iteration 0 only".
        self.max_iterations.is_none() && self.l1_target.is_none() && self.time_limit.is_none()
    }
}

/// Per-iteration diagnostics.
#[derive(Clone, Copy, Debug)]
pub struct IterationStats {
    /// Iteration index (0 = the query's own prime PPV).
    pub iteration: usize,
    /// Mass added by this iteration's increment.
    pub increment_mass: f64,
    /// Border hubs expanded to build the increment (0 for iteration 0).
    pub hubs_expanded: usize,
    /// Accuracy-aware L1 error `φ` after this iteration.
    pub l1_error_after: f64,
    /// Cumulative wall-clock time when this iteration finished.
    pub elapsed: Duration,
}

/// The outcome of a query.
#[derive(Clone, Debug)]
pub struct QueryResult {
    /// The query node.
    pub query: NodeId,
    /// The PPV estimate (entry-wise lower bound on the exact PPV).
    pub scores: SparseVector,
    /// Increments computed beyond iteration 0.
    pub iterations: usize,
    /// Accuracy-aware L1 error `φ` of the estimate (Eq. 6).
    pub l1_error: f64,
    /// Total wall-clock time.
    pub elapsed: Duration,
    /// Whether the expansion frontier emptied (estimate is as exact as the
    /// configuration's `ε`/`δ`/clip truncations allow).
    pub exhausted: bool,
    /// Per-iteration diagnostics.
    pub iteration_stats: Vec<IterationStats>,
}

impl QueryResult {
    /// Top-`k` nodes by estimated score.
    pub fn top_k(&self, k: usize) -> Vec<(NodeId, f64)> {
        self.scores.top_k(k)
    }
}

/// Result of a certified top-`k` query ([`QueryEngine::query_top_k`]).
#[derive(Clone, Debug)]
pub struct TopKResult {
    /// The top-`k` nodes by estimated score, descending.
    pub nodes: Vec<(NodeId, f64)>,
    /// Whether the set is provably the exact top-`k`.
    pub certified: bool,
    /// Increments run.
    pub iterations: usize,
    /// Accuracy-aware L1 error when the query stopped.
    pub l1_error: f64,
}

/// The dense per-query scratch Algorithm 2's increment loop runs over:
/// the running estimate, the border-hub frontier accumulator, and the
/// reused previous-increment buffer. Graph-sized once, reused across
/// queries; [`IncrementalState`] holds only bookkeeping, so the same
/// scratch serves the in-memory engine and the disk engine in
/// `fastppv-cluster`.
pub struct IncrementScratch {
    estimate: ScoreScratch,
    frontier: ScoreScratch,
    prev: Vec<(NodeId, f64)>,
}

impl IncrementScratch {
    /// A scratch for graphs of `n` nodes.
    pub fn new(n: usize) -> Self {
        IncrementScratch {
            estimate: ScoreScratch::new(n),
            frontier: ScoreScratch::new(n),
            prev: Vec::new(),
        }
    }

    /// Number of node slots the scratch covers.
    pub fn capacity(&self) -> usize {
        self.estimate.capacity()
    }

    fn reset(&mut self) {
        self.estimate.clear();
        self.frontier.clear();
        self.prev.clear();
    }
}

/// Per-query mutable scratch space, sized to the graph once and reused
/// across queries. The engine itself is immutable at query time; each
/// thread (or each in-flight query) brings its own workspace.
pub struct QueryWorkspace {
    prime: PrimeComputer,
    inc: IncrementScratch,
}

impl QueryWorkspace {
    /// A workspace for graphs of `n` nodes.
    pub fn new(n: usize) -> Self {
        QueryWorkspace {
            prime: PrimeComputer::new(n),
            inc: IncrementScratch::new(n),
        }
    }

    /// Number of node slots the workspace covers.
    pub fn capacity(&self) -> usize {
        self.inc.capacity()
    }

    /// The increment scratch, for callers that drive the scattered
    /// expansion path ([`expand_frontier`]) directly.
    pub fn increment_scratch(&mut self) -> &mut IncrementScratch {
        &mut self.inc
    }

    /// Computes iteration 0 of `q` for a scattered query: the raw prime
    /// PPV entries (trivial tour excluded, exactly as stored) and their
    /// border-hub frontier, in entry order. Reads the stored PPV when `q`
    /// is indexed — the same bytes a single-process query would use — and
    /// computes it unclipped on the fly otherwise, mirroring
    /// [`QueryEngine::query`]'s iteration 0. The caller (the router) adds
    /// the trivial tour `α` at `q` and sums the covered mass itself, in
    /// the same order [`IncrementalState::new`] does.
    pub fn prime0_parts<S: PpvStore>(
        &mut self,
        graph: &Graph,
        hubs: &HubSet,
        store: &S,
        q: NodeId,
        config: &Config,
    ) -> (MassList, MassList) {
        assert!(
            (q as usize) < graph.num_nodes(),
            "query node {q} out of range"
        );
        let mut entries = Vec::new();
        let mut frontier = Vec::new();
        let mut collect = |p: NodeId, s: f64| {
            entries.push((p, s));
            if hubs.is_hub(p) {
                frontier.push((p, s));
            }
        };
        match store.view(q) {
            Some(view) => view.for_each(&mut collect),
            None => {
                let (slice, _) = self.prime.prime_ppv_into(graph, hubs, q, config, 0.0);
                for &(p, s) in slice {
                    collect(p, s);
                }
            }
        }
        (entries, frontier)
    }
}

/// The FastPPV online engine: immutable shared state of the online phase
/// (graph, hub set, PPV store, configuration).
///
/// Every query method takes `&self`; per-query mutable scratch lives in a
/// [`QueryWorkspace`]. One engine can therefore be shared across threads
/// (by reference or inside an `Arc`) as long as the store is `Sync` — each
/// worker holds its own workspace and calls [`QueryEngine::query_with`].
/// The workspace-free convenience methods ([`QueryEngine::query`],
/// [`QueryEngine::query_top_k`], [`QueryEngine::session`]) allocate a fresh
/// workspace per call; hot loops should reuse one via
/// [`QueryEngine::workspace`].
pub struct QueryEngine<'a, S: PpvStore> {
    graph: &'a Graph,
    hubs: &'a HubSet,
    store: &'a S,
    config: Config,
}

impl<'a, S: PpvStore> QueryEngine<'a, S> {
    /// Creates an engine over a graph, hub set, and PPV store.
    pub fn new(graph: &'a Graph, hubs: &'a HubSet, store: &'a S, config: Config) -> Self {
        config.validate();
        QueryEngine {
            graph,
            hubs,
            store,
            config,
        }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &Config {
        &self.config
    }

    /// The graph the engine queries.
    pub fn graph(&self) -> &'a Graph {
        self.graph
    }

    /// Allocates a workspace sized to this engine's graph.
    pub fn workspace(&self) -> QueryWorkspace {
        QueryWorkspace::new(self.graph.num_nodes())
    }

    /// Answers a query, iterating until `stop` is met. Allocates a fresh
    /// workspace; prefer [`QueryEngine::query_with`] in hot loops.
    pub fn query(&self, q: NodeId, stop: &StoppingCondition) -> QueryResult {
        self.query_with(&mut self.workspace(), q, stop)
    }

    /// Answers a query using caller-provided scratch space.
    pub fn query_with(
        &self,
        ws: &mut QueryWorkspace,
        q: NodeId,
        stop: &StoppingCondition,
    ) -> QueryResult {
        self.query_with_cancel(ws, q, stop, None)
    }

    /// Like [`QueryEngine::query_with`], but additionally polls `cancel`
    /// at every increment boundary. When the flag flips, the loop stops
    /// before the next increment and the partial answer is returned with
    /// its current certified φ — a cancelled query is a *looser* answer,
    /// never a wrong one. Iteration 0 (the query's own prime PPV) always
    /// runs, so even an immediately-cancelled query carries a finite
    /// error bound.
    pub fn query_with_cancel(
        &self,
        ws: &mut QueryWorkspace,
        q: NodeId,
        stop: &StoppingCondition,
        cancel: Option<&std::sync::atomic::AtomicBool>,
    ) -> QueryResult {
        let cancelled = || cancel.is_some_and(|c| c.load(std::sync::atomic::Ordering::Relaxed));
        let mut session = self.session_in(ws, q);
        while !cancelled()
            && !stop.met(
                session.iterations_done(),
                session.l1_error(),
                session.elapsed(),
            )
        {
            if !session.step() {
                break;
            }
        }
        session.into_result()
    }

    /// Answers a top-`k` query, iterating until the set is *certified*
    /// exact (see [`IncrementalState::certified_top_k`]) or `max_iterations`
    /// increments have run. Returns the best-effort set and whether it is
    /// certified.
    pub fn query_top_k(&self, q: NodeId, k: usize, max_iterations: usize) -> TopKResult {
        self.query_top_k_with(&mut self.workspace(), q, k, max_iterations)
    }

    /// Like [`QueryEngine::query_top_k`] using caller-provided scratch.
    pub fn query_top_k_with(
        &self,
        ws: &mut QueryWorkspace,
        q: NodeId,
        k: usize,
        max_iterations: usize,
    ) -> TopKResult {
        let mut session = self.session_in(ws, q);
        loop {
            if let Some(nodes) = session.certified_top_k(k) {
                return TopKResult {
                    nodes,
                    certified: true,
                    iterations: session.iterations_done(),
                    l1_error: session.l1_error(),
                };
            }
            if session.iterations_done() >= max_iterations || !session.step() {
                return TopKResult {
                    nodes: session.top_k(k),
                    certified: false,
                    iterations: session.iterations_done(),
                    l1_error: session.l1_error(),
                };
            }
        }
    }

    /// Starts an incremental session over a freshly allocated workspace
    /// (owned by the session): iteration 0 is computed immediately; call
    /// [`QuerySession::step`] to add increments one at a time.
    pub fn session(&self, q: NodeId) -> QuerySession<'_, 'a, S> {
        self.start_session(WorkspaceSlot::Owned(Box::new(self.workspace())), q)
    }

    /// Starts an incremental session over caller-provided scratch space.
    pub fn session_in<'e>(
        &'e self,
        ws: &'e mut QueryWorkspace,
        q: NodeId,
    ) -> QuerySession<'e, 'a, S> {
        assert!(
            ws.capacity() >= self.graph.num_nodes(),
            "workspace sized for {} nodes, graph has {}",
            ws.capacity(),
            self.graph.num_nodes()
        );
        self.start_session(WorkspaceSlot::Borrowed(ws), q)
    }

    fn start_session<'e>(
        &'e self,
        mut ws: WorkspaceSlot<'e>,
        q: NodeId,
    ) -> QuerySession<'e, 'a, S> {
        assert!(
            (q as usize) < self.graph.num_nodes(),
            "query node {q} out of range"
        );
        // Iteration 0: r̊⁰_q viewed straight from the index (zero-copy)
        // when q is a hub, computed on the fly otherwise — through the
        // fused extract+solve path, which leaves the sorted entries in the
        // workspace's prime computer instead of materializing a
        // `PrimeSubgraph` and a `PrimePpv` per query. Either way iteration
        // 0 borrows; the only allocation on a cold warm-workspace query is
        // the per-session stats vector. Query-time prime PPVs are not
        // clipped (they are never stored).
        let state = {
            let QueryWorkspace { prime, inc } = ws.get_mut();
            match self.store.view(q) {
                Some(view) => IncrementalState::new(q, view, self.hubs, self.config.alpha, inc),
                None => {
                    let (entries, _) =
                        prime.prime_ppv_into(self.graph, self.hubs, q, &self.config, 0.0);
                    IncrementalState::new(
                        q,
                        PpvRef::Aos(entries),
                        self.hubs,
                        self.config.alpha,
                        inc,
                    )
                }
            }
        };
        QuerySession {
            engine: self,
            ws,
            state,
        }
    }
}

/// The engine-independent bookkeeping of Algorithm 2: covered mass,
/// iteration count, and diagnostics. The dense numeric state (estimate,
/// frontier, previous increment) lives in the caller's
/// [`IncrementScratch`], passed into every method — that is what makes the
/// loop allocation-free and the scratch reusable across queries. Shared by
/// the in-memory [`QuerySession`] and the disk-based engine in
/// `fastppv-cluster` (via [`run_increments`]).
#[derive(Clone, Debug)]
pub struct IncrementalState {
    query: NodeId,
    covered: f64,
    iterations_done: usize,
    exhausted: bool,
    stats: Vec<IterationStats>,
    started: Instant,
}

impl IncrementalState {
    /// Initializes iteration 0 from a view of the query's prime PPV `r̊⁰_q`
    /// (with the trivial tour excluded, as stored; it is added back here).
    /// Resets `scratch` first, so a dirty scratch from an abandoned session
    /// is safe to reuse.
    pub fn new(
        q: NodeId,
        prime0: PpvRef<'_>,
        hubs: &HubSet,
        alpha: f64,
        scratch: &mut IncrementScratch,
    ) -> Self {
        let started = Instant::now();
        scratch.reset();
        let IncrementScratch { estimate, prev, .. } = scratch;
        let mut covered = 0.0;
        prime0.for_each(|p, s| {
            estimate.add(p, s);
            covered += s;
            if hubs.is_hub(p) {
                prev.push((p, s));
            }
        });
        // The trivial tour: α at the query node (excluded from storage).
        estimate.add(q, alpha);
        covered += alpha;
        let mut stats = Vec::with_capacity(16);
        stats.push(IterationStats {
            iteration: 0,
            increment_mass: covered,
            hubs_expanded: 0,
            l1_error_after: (1.0 - covered).max(0.0),
            elapsed: started.elapsed(),
        });
        IncrementalState {
            query: q,
            covered,
            iterations_done: 0,
            exhausted: false,
            stats,
            started,
        }
    }

    /// Computes the next increment (Theorem 4). Returns `false` when the
    /// frontier is exhausted (no border hub clears `δ`).
    ///
    /// `scratch` must be the same scratch this state was created over.
    pub fn step<S: PpvStore>(
        &mut self,
        hubs: &HubSet,
        store: &S,
        config: &Config,
        scratch: &mut IncrementScratch,
    ) -> bool {
        if self.exhausted {
            return false;
        }
        let inv_alpha = 1.0 / config.alpha;
        let IncrementScratch {
            estimate,
            frontier,
            prev,
        } = scratch;
        let mut hubs_expanded = 0usize;
        let mut inc_mass = 0.0;
        for &(h, mass) in prev.iter() {
            if mass <= config.delta {
                continue;
            }
            let Some(view) = store.view(h) else {
                // Every hub is indexed by construction; a missing entry
                // would silently bias results, so fail loudly.
                panic!("hub {h} has no prime PPV in the store");
            };
            hubs_expanded += 1;
            let coeff = mass * inv_alpha;
            // The bandwidth-bound loop: scale every entry into the dense
            // estimate. The SoA arm runs over two contiguous slices with
            // no tuple loads.
            match &view {
                PpvRef::Soa { ids, scores } => {
                    for (&p, &s) in ids.iter().zip(scores.iter()) {
                        let x = coeff * s;
                        estimate.add(p, x);
                        inc_mass += x;
                    }
                }
                other => other.for_each(|p, s| {
                    let x = coeff * s;
                    estimate.add(p, x);
                    inc_mass += x;
                }),
            }
            // The next frontier: only this PPV's hub entries matter. With
            // a precomputed border sublist we touch exactly those; other
            // stores fall back to the hub-mask filter.
            match store.border_sublist(h) {
                Some((border_ids, border_pos)) => {
                    for (&b, &pos) in border_ids.iter().zip(border_pos.iter()) {
                        frontier.add(b, coeff * view.score_at(pos as usize));
                    }
                }
                None => view.for_each(|p, s| {
                    if hubs.is_hub(p) {
                        frontier.add(p, coeff * s);
                    }
                }),
            }
        }
        if hubs_expanded == 0 {
            self.exhausted = true;
            return false;
        }
        // The frontier becomes the next previous-increment: drained into
        // the reused buffer and sorted by node id (in place) so expansion
        // order — and therefore floating-point accumulation order — is
        // identical across store implementations.
        frontier.drain_into(prev);
        prev.sort_unstable_by_key(|&(id, _)| id);
        self.covered += inc_mass;
        self.iterations_done += 1;
        self.stats.push(IterationStats {
            iteration: self.iterations_done,
            increment_mass: inc_mass,
            hubs_expanded,
            l1_error_after: self.l1_error(),
            elapsed: self.started.elapsed(),
        });
        true
    }

    /// The accuracy-aware L1 error `φ = 1 − ‖r̂‖₁` (Eq. 6).
    pub fn l1_error(&self) -> f64 {
        (1.0 - self.covered).max(0.0)
    }

    /// Increments computed beyond iteration 0.
    pub fn iterations_done(&self) -> usize {
        self.iterations_done
    }

    /// Whether the expansion frontier has emptied.
    pub fn is_exhausted(&self) -> bool {
        self.exhausted
    }

    /// Wall-clock time since iteration 0 started.
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }

    /// Materializes the current estimate as a sorted sparse vector (the
    /// scratch keeps its state). Prefer [`IncrementalState::into_result`],
    /// which materializes exactly once.
    pub fn estimate_sparse(&self, scratch: &IncrementScratch) -> SparseVector {
        scratch.estimate.to_sparse()
    }

    /// Top-`k` nodes of the current estimate, descending (ties by id).
    pub fn top_k(&self, k: usize, scratch: &IncrementScratch) -> Vec<(NodeId, f64)> {
        scratch.estimate.top_k(k)
    }

    /// The certified top-`k` set, if the current accuracy proves it.
    ///
    /// Every estimate entry is a lower bound on the true score and the
    /// total missing mass is `φ`, so the true score of any node lies in
    /// `[r̂(p), r̂(p) + φ]`. When the k-th estimate exceeds the (k+1)-th by
    /// at least `φ`, no outside node can overtake the set — the *set* (not
    /// its internal order) is provably the exact top-k. This turns the
    /// accuracy-aware error into rank certification, in the spirit of the
    /// top-K lines of work the paper cites ([Gupta et al. 2008; Fujiwara et
    /// al. 2012]).
    pub fn certified_top_k(
        &self,
        k: usize,
        scratch: &IncrementScratch,
    ) -> Option<Vec<(NodeId, f64)>> {
        assert!(k > 0, "k must be positive");
        let phi = self.l1_error();
        let top = scratch.estimate.top_k(k + 1);
        if top.len() <= k {
            // Fewer than k+1 scored nodes: outside nodes have estimate 0,
            // so certification needs the k-th score to beat 0 + φ.
            let kth = top.last().map(|&(_, s)| s).unwrap_or(0.0);
            return (top.len() == k && kth >= phi).then_some(top);
        }
        let kth = top[k - 1].1;
        let next = top[k].1;
        (kth - next >= phi).then(|| {
            let mut set = top;
            set.truncate(k);
            set
        })
    }

    /// Finalizes into a [`QueryResult`], materializing the sorted sparse
    /// estimate (the single materialization of the query) and resetting
    /// the scratch's estimate for reuse.
    pub fn into_result(self, scratch: &mut IncrementScratch) -> QueryResult {
        QueryResult {
            query: self.query,
            l1_error: (1.0 - self.covered).max(0.0),
            scores: scratch.estimate.drain_sparse(),
            iterations: self.iterations_done,
            elapsed: self.started.elapsed(),
            exhausted: self.exhausted,
            iteration_stats: self.stats,
        }
    }
}

/// Runs Algorithm 2's increment loop to completion given a precomputed
/// iteration 0. This is the entry point for engines that obtained `r̊⁰_q`
/// by other means (e.g. the disk-based engine in `fastppv-cluster`).
pub fn run_increments<S: PpvStore>(
    q: NodeId,
    prime0: &crate::index::PrimePpv,
    hubs: &HubSet,
    store: &S,
    config: &Config,
    stop: &StoppingCondition,
    scratch: &mut IncrementScratch,
) -> QueryResult {
    let mut state = IncrementalState::new(
        q,
        PpvRef::Aos(prime0.entries.entries()),
        hubs,
        config.alpha,
        scratch,
    );
    while !stop.met(state.iterations_done(), state.l1_error(), state.elapsed()) {
        if !state.step(hubs, store, config, scratch) {
            break;
        }
    }
    state.into_result(scratch)
}

/// A list of `(node, mass)` pairs — prime-PPV entries or a border-hub
/// frontier slice, depending on context.
pub type MassList = Vec<(NodeId, f64)>;

/// One store's share of an increment, produced by [`expand_frontier`]:
/// the partial estimate contribution, the partial next frontier, and the
/// covered-mass contribution. Partial outcomes from disjoint stores merge
/// exactly (the paper's linearity decomposition): summing `entries`,
/// `frontier`, and `increment_mass` across shards — in a fixed shard
/// order — reproduces [`IncrementalState::step`] up to floating-point
/// reassociation.
#[derive(Clone, Debug)]
pub struct ExpandOutcome {
    /// Partial increment `(1/α) Σ r̂(h)·r̊⁰_h` over this store's hubs,
    /// sorted by node id.
    pub entries: SparseVector,
    /// This store's contribution to the next border-hub frontier, sorted
    /// by node id.
    pub frontier: Vec<(NodeId, f64)>,
    /// L1 mass of `entries` accumulated in expansion order — the shard's
    /// contribution to the covered mass `‖r̂‖₁` behind `φ`.
    pub increment_mass: f64,
    /// Border hubs actually expanded (entries at or below `δ` are skipped,
    /// exactly as in [`IncrementalState::step`]).
    pub hubs_expanded: usize,
}

/// Expands one sublist of a border-hub frontier against a (possibly
/// partial) store: the shard-side half of a scattered
/// [`IncrementalState::step`]. `sublist` must be sorted by hub id — the
/// same order `step` expands in — so per-entry accumulation order matches
/// the single-store loop. Hubs whose mass does not clear `config.delta`
/// are skipped; a hub missing from the store is an error (`Err(hub)`)
/// rather than a silent bias, mirroring the panic in `step`.
pub fn expand_frontier<S: PpvStore>(
    sublist: &[(NodeId, f64)],
    hubs: &HubSet,
    store: &S,
    config: &Config,
    scratch: &mut IncrementScratch,
) -> Result<ExpandOutcome, NodeId> {
    scratch.reset();
    let IncrementScratch {
        estimate, frontier, ..
    } = scratch;
    let inv_alpha = 1.0 / config.alpha;
    let mut inc_mass = 0.0;
    let mut hubs_expanded = 0usize;
    for &(h, mass) in sublist {
        if mass <= config.delta {
            continue;
        }
        let Some(view) = store.view(h) else {
            return Err(h);
        };
        hubs_expanded += 1;
        let coeff = mass * inv_alpha;
        match &view {
            PpvRef::Soa { ids, scores } => {
                for (&p, &s) in ids.iter().zip(scores.iter()) {
                    let x = coeff * s;
                    estimate.add(p, x);
                    inc_mass += x;
                }
            }
            other => other.for_each(|p, s| {
                let x = coeff * s;
                estimate.add(p, x);
                inc_mass += x;
            }),
        }
        match store.border_sublist(h) {
            Some((border_ids, border_pos)) => {
                for (&b, &pos) in border_ids.iter().zip(border_pos.iter()) {
                    frontier.add(b, coeff * view.score_at(pos as usize));
                }
            }
            None => view.for_each(|p, s| {
                if hubs.is_hub(p) {
                    frontier.add(p, coeff * s);
                }
            }),
        }
    }
    let mut next = Vec::new();
    frontier.drain_into(&mut next);
    next.sort_unstable_by_key(|&(id, _)| id);
    Ok(ExpandOutcome {
        entries: estimate.drain_sparse(),
        frontier: next,
        increment_mass: inc_mass,
        hubs_expanded,
    })
}

/// The scratch space a [`QuerySession`] runs over: either owned by the
/// session (convenience path) or borrowed from the caller (hot path).
enum WorkspaceSlot<'w> {
    Owned(Box<QueryWorkspace>),
    Borrowed(&'w mut QueryWorkspace),
}

impl WorkspaceSlot<'_> {
    fn get(&self) -> &QueryWorkspace {
        match self {
            WorkspaceSlot::Owned(ws) => ws,
            WorkspaceSlot::Borrowed(ws) => ws,
        }
    }

    fn get_mut(&mut self) -> &mut QueryWorkspace {
        match self {
            WorkspaceSlot::Owned(ws) => ws,
            WorkspaceSlot::Borrowed(ws) => ws,
        }
    }
}

/// An in-flight incremental query (paper's "incremental query processing").
pub struct QuerySession<'e, 'a, S: PpvStore> {
    engine: &'e QueryEngine<'a, S>,
    ws: WorkspaceSlot<'e>,
    state: IncrementalState,
}

impl<S: PpvStore> QuerySession<'_, '_, S> {
    /// Computes the next increment (Theorem 4). Returns `false` when the
    /// frontier is exhausted (no border hub clears `δ`), in which case the
    /// session state is unchanged.
    pub fn step(&mut self) -> bool {
        let engine = self.engine;
        self.state.step(
            engine.hubs,
            engine.store,
            &engine.config,
            &mut self.ws.get_mut().inc,
        )
    }

    /// The accuracy-aware L1 error `φ = 1 − ‖r̂‖₁` (Eq. 6).
    pub fn l1_error(&self) -> f64 {
        self.state.l1_error()
    }

    /// Increments computed beyond iteration 0.
    pub fn iterations_done(&self) -> usize {
        self.state.iterations_done()
    }

    /// Whether the expansion frontier has emptied.
    pub fn is_exhausted(&self) -> bool {
        self.state.is_exhausted()
    }

    /// Wall-clock time since the session started.
    pub fn elapsed(&self) -> Duration {
        self.state.elapsed()
    }

    /// The current estimate, materialized as a sorted sparse vector. The
    /// estimate itself lives densely in the session's workspace; calling
    /// this mid-session costs one sort — [`QuerySession::into_result`]
    /// is the materialize-once path.
    pub fn estimate(&self) -> SparseVector {
        self.state.estimate_sparse(&self.ws.get().inc)
    }

    /// Top-`k` nodes of the current estimate, descending (ties by id).
    pub fn top_k(&self, k: usize) -> Vec<(NodeId, f64)> {
        self.state.top_k(k, &self.ws.get().inc)
    }

    /// The certified top-`k` set, if the current accuracy proves it (see
    /// [`IncrementalState::certified_top_k`]).
    pub fn certified_top_k(&self, k: usize) -> Option<Vec<(NodeId, f64)>> {
        self.state.certified_top_k(k, &self.ws.get().inc)
    }

    /// The query node.
    pub fn query(&self) -> NodeId {
        self.state.query
    }

    /// Per-iteration diagnostics so far.
    pub fn iteration_stats(&self) -> &[IterationStats] {
        &self.state.stats
    }

    /// Finalizes the session.
    pub fn into_result(self) -> QueryResult {
        let QuerySession { mut ws, state, .. } = self;
        state.into_result(&mut ws.get_mut().inc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hubs::{select_hubs, HubPolicy, HubSet};
    use crate::offline::build_index;
    use fastppv_baselines::exact::{exact_ppv, ExactOptions};
    use fastppv_baselines::naive::partition_by_hub_length;
    use fastppv_graph::gen::barabasi_albert;
    use fastppv_graph::toy;

    fn toy_setup(config: Config) -> (fastppv_graph::Graph, HubSet, crate::index::MemoryIndex) {
        let g = toy::graph();
        let hubs = HubSet::from_ids(8, toy::PAPER_HUBS.to_vec());
        let (index, _) = build_index(&g, &hubs, &config);
        (g, hubs, index)
    }

    #[test]
    fn increments_match_naive_hub_length_partitions() {
        // The definitive correctness test: per-iteration increments must
        // equal the naive per-tour hub-length partition masses.
        let config = Config::exhaustive();
        let (g, hubs, index) = toy_setup(config);
        let engine = QueryEngine::new(&g, &hubs, &index, config);
        let mut session = engine.session(toy::A);
        let parts = partition_by_hub_length(&g, toy::A, hubs.mask(), 0.15, 1e-13);
        // Iteration 0 vs T0 (the estimate includes the trivial tour; the
        // naive partition counts it too, at the query node).
        let t0: f64 = parts[0].iter().sum();
        assert!(
            (session.iteration_stats()[0].increment_mass - t0).abs() < 1e-7,
            "T0: got {} want {t0}",
            session.iteration_stats()[0].increment_mass
        );
        let mut level = 1;
        while session.step() {
            let expected: f64 = parts.get(level).map(|p| p.iter().sum()).unwrap_or(0.0);
            let got = session.iteration_stats()[level].increment_mass;
            assert!(
                (got - expected).abs() < 1e-6,
                "T{level}: got {got} want {expected}"
            );
            level += 1;
            if level > 6 {
                break;
            }
        }
    }

    #[test]
    fn estimate_converges_to_exact() {
        let config = Config::exhaustive();
        let (g, hubs, index) = toy_setup(config);
        let engine = QueryEngine::new(&g, &hubs, &index, config);
        let result = engine.query(toy::A, &StoppingCondition::l1_error(1e-9));
        let exact = exact_ppv(&g, toy::A, ExactOptions::default());
        for v in g.nodes() {
            assert!(
                (result.scores.get(v) - exact[v as usize]).abs() < 1e-6,
                "node {v}"
            );
        }
        assert!(result.l1_error < 1e-8);
    }

    #[test]
    fn monotone_and_accuracy_aware() {
        // Theorem 1 (monotone growth) and Eq. 6 (reported φ equals the true
        // L1 gap when nothing is truncated).
        let g = barabasi_albert(400, 3, 7);
        let config = Config::exhaustive();
        let hubs = select_hubs(&g, HubPolicy::ExpectedUtility, 30, 0);
        let (index, _) = build_index(&g, &hubs, &config);
        let engine = QueryEngine::new(&g, &hubs, &index, config);
        let exact = exact_ppv(&g, 11, ExactOptions::default());
        let mut session = engine.session(11);
        let mut prev = session.estimate();
        for _ in 0..4 {
            let reported = session.l1_error();
            let true_gap = session.estimate().l1_distance_dense(&exact);
            assert!(
                (reported - true_gap).abs() < 1e-6,
                "reported {reported} true {true_gap}"
            );
            if !session.step() {
                break;
            }
            // Entry-wise monotone growth.
            let current = session.estimate();
            for &(v, s) in prev.entries() {
                assert!(current.get(v) >= s - 1e-12);
            }
            prev = current;
        }
    }

    #[test]
    fn error_bound_theorem_2_holds() {
        let g = barabasi_albert(300, 3, 3);
        let config = Config::exhaustive();
        let hubs = select_hubs(&g, HubPolicy::ExpectedUtility, 25, 0);
        let (index, _) = build_index(&g, &hubs, &config);
        let engine = QueryEngine::new(&g, &hubs, &index, config);
        for q in [0u32, 50, 150, 299] {
            let mut session = engine.session(q);
            for k in 0..5usize {
                let bound = crate::error::l1_error_bound(0.15, k);
                assert!(
                    session.l1_error() <= bound + 1e-9,
                    "q {q} k {k}: φ {} > bound {bound}",
                    session.l1_error()
                );
                if !session.step() {
                    break;
                }
            }
        }
    }

    #[test]
    fn hub_query_loads_from_index() {
        let config = Config::exhaustive();
        let (g, hubs, index) = toy_setup(config);
        let engine = QueryEngine::new(&g, &hubs, &index, config);
        let result = engine.query(toy::D, &StoppingCondition::l1_error(1e-9));
        let exact = exact_ppv(&g, toy::D, ExactOptions::default());
        for v in g.nodes() {
            assert!((result.scores.get(v) - exact[v as usize]).abs() < 1e-6);
        }
    }

    #[test]
    fn stopping_condition_iterations() {
        let config = Config::exhaustive();
        let (g, hubs, index) = toy_setup(config);
        let engine = QueryEngine::new(&g, &hubs, &index, config);
        let r0 = engine.query(toy::A, &StoppingCondition::iterations(0));
        assert_eq!(r0.iterations, 0);
        let r2 = engine.query(toy::A, &StoppingCondition::iterations(2));
        assert!(r2.iterations <= 2);
        assert!(r2.l1_error <= r0.l1_error);
        assert_eq!(r2.iteration_stats.len(), r2.iterations + 1);
    }

    #[test]
    fn stopping_condition_l1() {
        let g = barabasi_albert(300, 3, 9);
        let config = Config::default().with_clip(0.0);
        let hubs = select_hubs(&g, HubPolicy::ExpectedUtility, 25, 0);
        let (index, _) = build_index(&g, &hubs, &config);
        let engine = QueryEngine::new(&g, &hubs, &index, config);
        let r = engine.query(42, &StoppingCondition::l1_error(0.05));
        assert!(r.l1_error <= 0.05 || r.exhausted);
    }

    #[test]
    fn stopping_condition_time_limit_zero_stops_immediately() {
        let config = Config::exhaustive();
        let (g, hubs, index) = toy_setup(config);
        let engine = QueryEngine::new(&g, &hubs, &index, config);
        let r = engine.query(toy::A, &StoppingCondition::time_limit(Duration::ZERO));
        assert_eq!(r.iterations, 0);
    }

    #[test]
    fn delta_filter_reduces_hub_expansions() {
        let g = barabasi_albert(400, 3, 13);
        let hubs = select_hubs(&g, HubPolicy::ExpectedUtility, 40, 0);
        let strict = Config::default().with_delta(0.05).with_clip(0.0);
        let loose = Config::default().with_delta(0.0).with_clip(0.0);
        let (is, _) = build_index(&g, &hubs, &strict);
        let (il, _) = build_index(&g, &hubs, &loose);
        let es = QueryEngine::new(&g, &hubs, &is, strict);
        let el = QueryEngine::new(&g, &hubs, &il, loose);
        let rs = es.query(5, &StoppingCondition::iterations(2));
        let rl = el.query(5, &StoppingCondition::iterations(2));
        let hs: usize = rs.iteration_stats.iter().map(|s| s.hubs_expanded).sum();
        let hl: usize = rl.iteration_stats.iter().map(|s| s.hubs_expanded).sum();
        assert!(hs <= hl);
        assert!(rs.l1_error >= rl.l1_error - 1e-12);
    }

    #[test]
    fn exhaustion_reported_on_hubless_setup() {
        // No hubs: iteration 0 covers everything reachable above ε; the
        // first step must report exhaustion.
        let g = toy::graph();
        let hubs = HubSet::empty(8);
        let config = Config::exhaustive();
        let (index, _) = build_index(&g, &hubs, &config);
        let engine = QueryEngine::new(&g, &hubs, &index, config);
        let mut session = engine.session(toy::A);
        assert!(!session.step());
        assert!(session.is_exhausted());
        let r = session.into_result();
        assert!(r.l1_error < 1e-9, "hubless T0 covers the whole toy PPV");
    }

    #[test]
    fn cancelled_query_returns_partial_certified_answer() {
        use std::sync::atomic::AtomicBool;
        let config = Config::exhaustive();
        let (g, hubs, index) = toy_setup(config);
        let engine = QueryEngine::new(&g, &hubs, &index, config);
        let mut ws = engine.workspace();
        // Pre-set cancel: the loop must stop at the first increment
        // boundary, returning iteration 0 with its (loose but true) φ.
        let cancel = AtomicBool::new(true);
        let partial = engine.query_with_cancel(
            &mut ws,
            toy::A,
            &StoppingCondition::l1_error(1e-12),
            Some(&cancel),
        );
        assert_eq!(partial.iterations, 0, "cancel stops before any step");
        let exact = exact_ppv(&g, toy::A, ExactOptions::default());
        let true_gap: f64 = g
            .nodes()
            .map(|v| exact[v as usize] - partial.scores.get(v))
            .sum();
        assert!(
            true_gap <= partial.l1_error + 1e-9,
            "partial φ {} is not a true bound (gap {true_gap})",
            partial.l1_error
        );
        // Unset cancel behaves exactly like query_with.
        let cancel = AtomicBool::new(false);
        let full = engine.query_with_cancel(
            &mut ws,
            toy::A,
            &StoppingCondition::l1_error(1e-9),
            Some(&cancel),
        );
        assert!(full.l1_error <= 1e-9);
    }

    #[test]
    fn session_reuses_dirty_workspace_cleanly() {
        // Abandoning a session mid-flight (no into_result) must not leak
        // estimate mass into the next session over the same workspace.
        let config = Config::exhaustive();
        let (g, hubs, index) = toy_setup(config);
        let engine = QueryEngine::new(&g, &hubs, &index, config);
        let mut ws = engine.workspace();
        {
            let mut abandoned = engine.session_in(&mut ws, toy::A);
            abandoned.step();
            // Dropped without materializing.
        }
        let clean = engine.query(toy::G, &StoppingCondition::iterations(2));
        let reused = engine.query_with(&mut ws, toy::G, &StoppingCondition::iterations(2));
        assert_eq!(clean.scores, reused.scores);
        assert_eq!(clean.l1_error, reused.l1_error);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_query() {
        let config = Config::default();
        let (g, hubs, index) = toy_setup(config);
        let engine = QueryEngine::new(&g, &hubs, &index, config);
        engine.query(1000, &StoppingCondition::iterations(1));
    }

    #[test]
    fn certified_top_k_matches_exact_ranking() {
        let g = barabasi_albert(300, 3, 17);
        let config = Config::exhaustive();
        let hubs = select_hubs(&g, HubPolicy::ExpectedUtility, 30, 0);
        let (index, _) = build_index(&g, &hubs, &config);
        let engine = QueryEngine::new(&g, &hubs, &index, config);
        for q in [5u32, 120, 250] {
            let res = engine.query_top_k(q, 5, 40);
            assert!(res.certified, "q {q}: not certified at φ {}", res.l1_error);
            let exact = exact_ppv(&g, q, ExactOptions::default());
            let mut exact_top: Vec<u32> = (0..300u32).collect();
            exact_top.sort_by(|&a, &b| {
                exact[b as usize]
                    .partial_cmp(&exact[a as usize])
                    .unwrap()
                    .then(a.cmp(&b))
            });
            let mut got: Vec<u32> = res.nodes.iter().map(|&(v, _)| v).collect();
            got.sort_unstable();
            let mut want: Vec<u32> = exact_top[..5].to_vec();
            want.sort_unstable();
            assert_eq!(got, want, "q {q}");
        }
    }

    #[test]
    fn certification_is_conservative() {
        // Whenever a set is certified, it must actually be the exact top-k;
        // at very low accuracy certification simply does not trigger.
        let g = barabasi_albert(200, 3, 19);
        let config = Config::exhaustive();
        let hubs = select_hubs(&g, HubPolicy::ExpectedUtility, 20, 0);
        let (index, _) = build_index(&g, &hubs, &config);
        let engine = QueryEngine::new(&g, &hubs, &index, config);
        let exact = exact_ppv(&g, 42, ExactOptions::default());
        let mut session = engine.session(42);
        loop {
            if let Some(set) = session.certified_top_k(3) {
                for &(v, s) in &set {
                    // Lower bound within φ of the truth.
                    assert!(s <= exact[v as usize] + 1e-12);
                    assert!(exact[v as usize] - s <= session.l1_error() + 1e-12);
                }
                let min_in: f64 = set
                    .iter()
                    .map(|&(v, _)| exact[v as usize])
                    .fold(f64::INFINITY, f64::min);
                let max_out: f64 = (0..200u32)
                    .filter(|v| !set.iter().any(|&(u, _)| u == *v))
                    .map(|v| exact[v as usize])
                    .fold(0.0, f64::max);
                assert!(min_in >= max_out - 1e-12);
                break;
            }
            assert!(session.step(), "exhausted before certification");
        }
    }

    #[test]
    fn uncertified_result_reported_when_budget_too_small() {
        let g = barabasi_albert(300, 3, 23);
        // Heavy truncation: φ stays large, certification can fail.
        let config = Config::default().with_delta(0.05);
        let hubs = select_hubs(&g, HubPolicy::ExpectedUtility, 10, 0);
        let (index, _) = build_index(&g, &hubs, &config);
        let engine = QueryEngine::new(&g, &hubs, &index, config);
        let res = engine.query_top_k(7, 10, 0);
        assert_eq!(res.nodes.len(), 10);
        // With zero extra iterations and φ ~ 0.5, a 10-way certification is
        // implausible; whichever way it lands, the flag must be honest.
        if res.certified {
            assert!(res.l1_error < 1.0);
        }
    }
}
