//! The PPV index: precomputed prime PPVs of hub nodes (paper §5.1).
//!
//! Three interchangeable stores implement [`PpvStore`]:
//!
//! * [`FlatIndex`] — one contiguous structure-of-arrays arena (`ids` /
//!   `scores` slices per hub plus a precomputed border-hub sublist), the
//!   zero-copy hot path of the online engine;
//! * [`MemoryIndex`] — a slot map of per-hub [`PrimePpv`]s, the mutable
//!   build-time representation (convert with [`FlatIndex::from_memory`]);
//! * [`DiskIndex`] — a file-backed store with a per-hub directory for O(1)
//!   random access and a small FIFO read cache, used by the disk-resident
//!   experiments (§5.3 / §6.4.2).
//!
//! ## The zero-copy store contract
//!
//! Reads go through [`PpvStore::view`], which returns a borrowed
//! [`PpvRef`] — no `Arc` refcount traffic, no cloning, no allocation on the
//! in-memory paths. Stores that must materialize on a miss (the disk
//! stores) return the [`PpvRef::Owned`] fallback, which carries an `Arc`
//! from their read cache. Code that genuinely needs an owned copy calls
//! [`PpvStore::load`].
//!
//! Two hand-rolled little-endian on-disk formats:
//!
//! `FPPVIDX1` version 2 — the record-oriented format of [`MemoryIndex`] /
//! [`DiskIndex`]:
//!
//! ```text
//! magic "FPPVIDX1" | u32 version=2 | u32 flags | u64 num_hubs
//! directory: num_hubs × { u32 hub_id, u64 offset, u32 num_entries }
//! spend:     num_hubs × f64 budget_spent   (directory order)
//! data:      per hub { num_entries × (u32 node, f32 score) }
//! ```
//!
//! Scores are stored as `f32`: entries are clipped at 1e-4 anyway (§6), so
//! the ~1e-7 relative quantization error is far below the approximation
//! error budget.
//!
//! `FPPVIDX3` — the arena file of [`FlatIndex`]: its body *is* the flat
//! structure-of-arrays arena, section-aligned so [`FlatIndex::open`] can
//! borrow it zero-copy from an `mmap` (see the private `mapfile` module):
//!
//! ```text
//! magic "FPPVIDX3" | u32 version=3 | u32 flags
//! u64 × { num_nodes, num_hubs, num_entries, num_border,
//!         dir_off, spend_off, ids_off, scores_off,
//!         border_ids_off, border_pos_off, file_len }          (104-byte header)
//! directory:  num_hubs × { u32 hub_id, u32 len, u32 border_len, u32 0,
//!                          u64 entry_start, u64 border_start }
//! spend:      num_hubs × f64 budget_spent                     (directory order)
//! ids:        num_entries × u32, zero-padded to 8 bytes
//! scores:     num_entries × f64
//! border_ids: num_border × u32, zero-padded to 8 bytes
//! border_pos: num_border × u32, zero-padded to 8 bytes
//! ```
//!
//! Every section starts 8-byte aligned and hubs are laid out ascending with
//! tightly packed `entry_start`/`border_start`, so an opened arena carves
//! the sections into borrowed [`FlatIndex`] chunks without any decode pass.
//! [`FlatIndex::open`] fails closed ([`OpenError`]): every header and
//! directory field is validated with checked arithmetic before any slice of
//! the backing is formed.

use std::collections::HashMap;
use std::fs::File;
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use fastppv_graph::{NodeId, SparseVector};

use crate::hubs::HubSet;
use crate::mapfile::Backing;

/// A stored prime PPV: the trivial-tour-excluded reachabilities `r̊⁰_v`
/// (see [`crate::prime`] for why the empty tour is excluded).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PrimePpv {
    /// Sparse reachability entries, sorted by node id.
    pub entries: SparseVector,
}

impl PrimePpv {
    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether there are no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The hub entries (expansion candidates of the next iteration).
    pub fn border_hubs<'a>(&'a self, hubs: &'a HubSet) -> impl Iterator<Item = (NodeId, f64)> + 'a {
        self.entries
            .entries()
            .iter()
            .copied()
            .filter(move |&(v, _)| hubs.is_hub(v))
    }
}

/// A borrowed view of one stored prime PPV — the unit of the zero-copy
/// store contract (see the module docs).
///
/// The borrowed variants alias the store's own memory; the `Owned` variant
/// exists for stores that materialize on a miss (disk-backed reads).
#[derive(Clone, Debug)]
pub enum PpvRef<'a> {
    /// Structure-of-arrays slices into a [`FlatIndex`] arena.
    Soa {
        /// Entry node ids, ascending.
        ids: &'a [NodeId],
        /// Scores, parallel to `ids`.
        scores: &'a [f64],
    },
    /// Array-of-structs entries borrowed from a [`MemoryIndex`] slot.
    Aos(&'a [(NodeId, f64)]),
    /// Materialized fallback (disk stores): shared with the read cache.
    Owned(Arc<PrimePpv>),
}

impl PpvRef<'_> {
    /// Number of entries.
    pub fn len(&self) -> usize {
        match self {
            PpvRef::Soa { ids, .. } => ids.len(),
            PpvRef::Aos(entries) => entries.len(),
            PpvRef::Owned(ppv) => ppv.len(),
        }
    }

    /// Whether there are no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Calls `f(node, score)` for every entry, in ascending node-id order.
    #[inline]
    pub fn for_each(&self, mut f: impl FnMut(NodeId, f64)) {
        match self {
            PpvRef::Soa { ids, scores } => {
                for (&id, &s) in ids.iter().zip(scores.iter()) {
                    f(id, s);
                }
            }
            PpvRef::Aos(entries) => {
                for &(id, s) in *entries {
                    f(id, s);
                }
            }
            PpvRef::Owned(ppv) => {
                for &(id, s) in ppv.entries.entries() {
                    f(id, s);
                }
            }
        }
    }

    /// The score at entry position `pos` (used with the border-hub
    /// sublists of [`PpvStore::border_sublist`], whose positions index
    /// into this view).
    #[inline]
    pub fn score_at(&self, pos: usize) -> f64 {
        match self {
            PpvRef::Soa { scores, .. } => scores[pos],
            PpvRef::Aos(entries) => entries[pos].1,
            PpvRef::Owned(ppv) => ppv.entries.entries()[pos].1,
        }
    }

    /// Sum of all scores.
    pub fn l1_norm(&self) -> f64 {
        let mut sum = 0.0;
        self.for_each(|_, s| sum += s);
        sum
    }

    /// Score of node `id`, or `None` if it has no entry. Binary search —
    /// the point lookup the delta-update path uses to read a changed
    /// tail's settled mass out of a stored PPV.
    pub fn score_of(&self, id: NodeId) -> Option<f64> {
        match self {
            PpvRef::Soa { ids, scores } => ids.binary_search(&id).ok().map(|pos| scores[pos]),
            PpvRef::Aos(entries) => entries
                .binary_search_by_key(&id, |&(v, _)| v)
                .ok()
                .map(|pos| entries[pos].1),
            PpvRef::Owned(ppv) => {
                let entries = ppv.entries.entries();
                entries
                    .binary_search_by_key(&id, |&(v, _)| v)
                    .ok()
                    .map(|pos| entries[pos].1)
            }
        }
    }

    /// Materializes an owned copy.
    pub fn to_prime_ppv(&self) -> PrimePpv {
        match self {
            PpvRef::Soa { ids, scores } => PrimePpv {
                entries: SparseVector::from_sorted(
                    ids.iter().copied().zip(scores.iter().copied()).collect(),
                ),
            },
            PpvRef::Aos(entries) => PrimePpv {
                entries: SparseVector::from_sorted(entries.to_vec()),
            },
            PpvRef::Owned(ppv) => PrimePpv::clone(ppv),
        }
    }
}

/// Read access to precomputed prime PPVs.
///
/// The primary read is [`PpvStore::view`] — a borrowed, clone-free
/// [`PpvRef`]. Per-query `Arc` bumps and deep copies are reserved for
/// stores that must materialize (disk reads) and for callers that opt into
/// [`PpvStore::load`].
pub trait PpvStore {
    /// A borrowed view of `hub`'s prime PPV, or `None` if not indexed.
    fn view(&self, hub: NodeId) -> Option<PpvRef<'_>>;

    /// Whether `hub` is indexed.
    fn contains(&self, hub: NodeId) -> bool;

    /// Number of indexed hubs.
    fn hub_count(&self) -> usize;

    /// Total stored entries across hubs.
    fn total_entries(&self) -> usize;

    /// The precomputed border-hub sublist of `hub`'s PPV, if this store
    /// maintains one: the hub-entry node ids plus their positions within
    /// the PPV's entry list (so `view.score_at(pos)` is the hub's score).
    /// Stores without sublists return `None` and the query engine falls
    /// back to filtering every entry through [`HubSet::is_hub`].
    fn border_sublist(&self, _hub: NodeId) -> Option<(&[NodeId], &[u32])> {
        None
    }

    /// Materializes an owned copy of `hub`'s prime PPV (convenience; not
    /// the hot path).
    fn load(&self, hub: NodeId) -> Option<PrimePpv> {
        self.view(hub).map(|v| v.to_prime_ppv())
    }

    /// Accumulated delta-refresh error-budget spend of `hub`'s stored PPV
    /// (see [`crate::dynamic`]); 0 for stores that do not track it.
    /// Exposed on the trait so store slicing (`fastppv-cluster`) can carry
    /// spend into a shard's partial index regardless of source layout.
    fn spent_budget(&self, _hub: NodeId) -> f64 {
        0.0
    }

    /// Index size in bytes (on-disk layout equivalent).
    fn storage_bytes(&self) -> usize {
        HEADER_LEN
            + self.hub_count() * (DIR_RECORD_LEN + SPEND_LEN)
            + self.total_entries() * ENTRY_LEN
    }

    /// Bytes this store keeps resident in process memory. The default —
    /// the serialized size — is right for fully in-memory stores;
    /// file-backed stores override it with their actual heap footprint.
    fn resident_bytes(&self) -> usize {
        self.storage_bytes()
    }

    /// Bytes this store serves through a memory-mapped file (0 for
    /// heap-only stores). Mapped bytes are page-cache resident at the
    /// kernel's discretion, not process heap.
    fn mapped_bytes(&self) -> usize {
        0
    }
}

impl<S: PpvStore> PpvStore for &S {
    fn view(&self, hub: NodeId) -> Option<PpvRef<'_>> {
        (**self).view(hub)
    }
    fn contains(&self, hub: NodeId) -> bool {
        (**self).contains(hub)
    }
    fn hub_count(&self) -> usize {
        (**self).hub_count()
    }
    fn total_entries(&self) -> usize {
        (**self).total_entries()
    }
    fn border_sublist(&self, hub: NodeId) -> Option<(&[NodeId], &[u32])> {
        (**self).border_sublist(hub)
    }
    fn resident_bytes(&self) -> usize {
        (**self).resident_bytes()
    }
    fn mapped_bytes(&self) -> usize {
        (**self).mapped_bytes()
    }
}

use crate::protocol_consts::{IDX1_MAGIC as MAGIC, IDX1_VERSION as VERSION};

const HEADER_LEN: usize = 8 + 4 + 4 + 8;
const DIR_RECORD_LEN: usize = 4 + 8 + 4;
const SPEND_LEN: usize = 8;
const ENTRY_LEN: usize = 8;

/// Writes the `FPPVIDX1` (version 2) layout given sorted hub ids, a
/// per-hub entry lookup, and a per-hub budget spend. Used by
/// [`MemoryIndex::write_to_file`]; [`FlatIndex`] serializes to the
/// `FPPVIDX3` arena format instead.
fn write_index_file<'a, P, F, G>(
    path: P,
    sorted_hubs: &[NodeId],
    mut entries_of: F,
    mut spent_of: G,
) -> io::Result<()>
where
    P: AsRef<Path>,
    F: FnMut(NodeId) -> PpvRef<'a>,
    G: FnMut(NodeId) -> f64,
{
    // Published atomically (temp + fsync + rename): a crash mid-write can
    // never leave a torn FPPVIDX1 file at `path`.
    crate::atomic_io::write_atomic(path, move |w| {
        w.write_all(MAGIC)?;
        w.write_all(&VERSION.to_le_bytes())?;
        w.write_all(&0u32.to_le_bytes())?;
        w.write_all(&(sorted_hubs.len() as u64).to_le_bytes())?;
        // Directory (blobs start after the directory and the spend section).
        let mut offset = (HEADER_LEN + sorted_hubs.len() * (DIR_RECORD_LEN + SPEND_LEN)) as u64;
        for &h in sorted_hubs {
            let view = entries_of(h);
            w.write_all(&h.to_le_bytes())?;
            w.write_all(&offset.to_le_bytes())?;
            w.write_all(&(view.len() as u32).to_le_bytes())?;
            offset += (view.len() * ENTRY_LEN) as u64;
        }
        // Budget-spend section, directory order: the PR 6 self-certification
        // state must survive a serialize/reopen cycle.
        for &h in sorted_hubs {
            w.write_all(&spent_of(h).to_le_bytes())?;
        }
        // Data blobs.
        for &h in sorted_hubs {
            let mut err = None;
            entries_of(h).for_each(|id, s| {
                if err.is_none() {
                    err = w
                        .write_all(&id.to_le_bytes())
                        .and_then(|()| w.write_all(&(s as f32).to_le_bytes()))
                        .err();
                }
            });
            if let Some(e) = err {
                return Err(e);
            }
        }
        Ok(())
    })
}

/// In-memory PPV index: the mutable build-time store.
#[derive(Clone, Debug, Default)]
pub struct MemoryIndex {
    slots: Vec<Option<Arc<PrimePpv>>>,
    hub_ids: Vec<NodeId>,
    total_entries: usize,
    /// Per-hub accumulated score-L1 error bound of the stored PPV relative
    /// to an exact recompute — runtime state of the delta-update path
    /// ([`crate::dynamic`]), not serialized. 0 for freshly computed PPVs.
    spent: Vec<f64>,
}

impl MemoryIndex {
    /// An empty index for graphs of `n` nodes.
    pub fn new(n: usize) -> Self {
        MemoryIndex {
            slots: vec![None; n],
            hub_ids: Vec::new(),
            total_entries: 0,
            spent: vec![0.0; n],
        }
    }

    /// Number of node slots (the graph size the index was created for).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Inserts (or replaces) the prime PPV of `hub`.
    pub fn insert(&mut self, hub: NodeId, ppv: PrimePpv) {
        self.insert_shared(hub, Arc::new(ppv));
    }

    /// Inserts (or replaces) an already-shared prime PPV without copying
    /// its entries — the sharing path of [`crate::dynamic::refresh_index`].
    pub fn insert_shared(&mut self, hub: NodeId, ppv: Arc<PrimePpv>) {
        let slot = &mut self.slots[hub as usize];
        match slot {
            Some(old) => self.total_entries -= old.len(),
            None => self.hub_ids.push(hub),
        }
        self.total_entries += ppv.len();
        *slot = Some(ppv);
        // An inserted PPV is presumed exact; the delta refresh path
        // re-applies a carried-over budget via `set_budget_spent`.
        self.spent[hub as usize] = 0.0;
    }

    /// Accumulated error-budget spend of `hub`'s stored PPV (score-L1
    /// bound vs an exact recompute; see [`crate::dynamic`]).
    pub fn budget_spent(&self, hub: NodeId) -> f64 {
        self.spent.get(hub as usize).copied().unwrap_or(0.0)
    }

    /// Sets `hub`'s accumulated error-budget spend (delta refresh only).
    pub fn set_budget_spent(&mut self, hub: NodeId, spent: f64) {
        self.spent[hub as usize] = spent;
    }

    /// Largest per-hub budget spend in the index — the watermark reported
    /// by [`crate::dynamic::RefreshStats`].
    pub fn budget_watermark(&self) -> f64 {
        self.hub_ids
            .iter()
            .map(|&h| self.spent[h as usize])
            .fold(0.0, f64::max)
    }

    /// The stored prime PPV of `hub`, borrowed (no refcount traffic).
    pub fn get(&self, hub: NodeId) -> Option<&PrimePpv> {
        self.slots.get(hub as usize).and_then(|s| s.as_deref())
    }

    /// The stored prime PPV of `hub` as a shared handle (for callers that
    /// retain it past the index borrow, e.g. index refresh reuse).
    pub fn get_shared(&self, hub: NodeId) -> Option<Arc<PrimePpv>> {
        self.slots.get(hub as usize).and_then(|s| s.clone())
    }

    /// Indexed hub ids, in insertion order.
    pub fn hub_ids(&self) -> &[NodeId] {
        &self.hub_ids
    }

    /// Serializes the index to the `FPPVIDX1` (version 2) format,
    /// including the per-hub budget-spend section.
    pub fn write_to_file<P: AsRef<Path>>(&self, path: P) -> io::Result<()> {
        let mut sorted_hubs = self.hub_ids.clone();
        sorted_hubs.sort_unstable();
        write_index_file(
            path,
            &sorted_hubs,
            |h| {
                PpvRef::Aos(
                    self.slots[h as usize]
                        .as_ref()
                        .expect("indexed hub")
                        .entries
                        .entries(),
                )
            },
            |h| self.spent[h as usize],
        )
    }
}

impl PpvStore for MemoryIndex {
    fn view(&self, hub: NodeId) -> Option<PpvRef<'_>> {
        self.slots
            .get(hub as usize)
            .and_then(|s| s.as_deref())
            .map(|ppv| PpvRef::Aos(ppv.entries.entries()))
    }

    fn contains(&self, hub: NodeId) -> bool {
        self.slots.get(hub as usize).is_some_and(|s| s.is_some())
    }

    fn hub_count(&self) -> usize {
        self.hub_ids.len()
    }

    fn total_entries(&self) -> usize {
        self.total_entries
    }

    fn spent_budget(&self, hub: NodeId) -> f64 {
        self.budget_spent(hub)
    }
}

/// Sentinel for "node is not an indexed hub" in [`FlatIndex::slot_of`].
const NO_SLOT: u32 = u32::MAX;

/// Why [`FlatIndex::open`] rejected a file. Header parsing fails closed:
/// a corrupt or truncated file yields `Format`, never a panic or an
/// out-of-bounds slice.
#[derive(Debug)]
pub enum OpenError {
    /// The underlying I/O failed.
    Io(io::Error),
    /// The file is not a well-formed `FPPVIDX3` arena.
    Format(String),
}

impl std::fmt::Display for OpenError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OpenError::Io(e) => write!(f, "arena open failed: {e}"),
            OpenError::Format(detail) => write!(f, "invalid arena file: {detail}"),
        }
    }
}

impl std::error::Error for OpenError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            OpenError::Io(e) => Some(e),
            OpenError::Format(_) => None,
        }
    }
}

impl From<io::Error> for OpenError {
    fn from(e: io::Error) -> Self {
        OpenError::Io(e)
    }
}

fn bad(detail: impl Into<String>) -> OpenError {
    OpenError::Format(detail.into())
}

use crate::protocol_consts::{IDX3_MAGIC as FLAT_MAGIC, IDX3_VERSION as FLAT_VERSION};

const FLAT_HEADER_LEN: usize = 8 + 4 + 4 + 11 * 8;
const FLAT_DIR_RECORD_LEN: usize = 4 + 4 + 4 + 4 + 8 + 8;
/// Headers claiming more nodes than this are rejected before the
/// `slot_of` table is allocated (a corrupt header must not OOM the open).
const MAX_ARENA_NODES: u64 = 1 << 31;

/// Rounds up to the next multiple of 8 (section alignment), checked.
fn pad8(x: u64) -> Option<u64> {
    x.checked_add(7).map(|v| v & !7)
}

/// Section offsets of the `FPPVIDX3` layout, derived from the four counts
/// with checked arithmetic. The writer and the opener both compute it, so
/// a file whose stored offsets disagree is rejected as corrupt.
struct ArenaLayout {
    num_nodes: u64,
    num_hubs: u64,
    num_entries: u64,
    num_border: u64,
    dir_off: u64,
    spend_off: u64,
    ids_off: u64,
    scores_off: u64,
    border_ids_off: u64,
    border_pos_off: u64,
    file_len: u64,
}

impl ArenaLayout {
    fn compute(num_nodes: u64, num_hubs: u64, num_entries: u64, num_border: u64) -> Option<Self> {
        let dir_off = FLAT_HEADER_LEN as u64;
        let spend_off = dir_off.checked_add(num_hubs.checked_mul(FLAT_DIR_RECORD_LEN as u64)?)?;
        let ids_off = spend_off.checked_add(num_hubs.checked_mul(8)?)?;
        let scores_off = ids_off.checked_add(pad8(num_entries.checked_mul(4)?)?)?;
        let border_ids_off = scores_off.checked_add(num_entries.checked_mul(8)?)?;
        let border_pos_off = border_ids_off.checked_add(pad8(num_border.checked_mul(4)?)?)?;
        let file_len = border_pos_off.checked_add(pad8(num_border.checked_mul(4)?)?)?;
        Some(ArenaLayout {
            num_nodes,
            num_hubs,
            num_entries,
            num_border,
            dir_off,
            spend_off,
            ids_off,
            scores_off,
            border_ids_off,
            border_pos_off,
            file_len,
        })
    }

    /// The header fields after magic/version/flags, in file order.
    fn header_words(&self) -> [u64; 11] {
        [
            self.num_nodes,
            self.num_hubs,
            self.num_entries,
            self.num_border,
            self.dir_off,
            self.spend_off,
            self.ids_off,
            self.scores_off,
            self.border_ids_off,
            self.border_pos_off,
            self.file_len,
        ]
    }
}

/// Directory entry of one hub segment: which chunk holds it and where.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct SegRef {
    /// Index into [`FlatIndex::chunks`].
    chunk: u32,
    /// Entry offset within the chunk.
    off: u32,
    /// Segment length (entries).
    len: u32,
    /// Border-sublist offset within the chunk.
    border_off: u32,
    /// Border-sublist length.
    border_len: u32,
}

/// Heap-resident chunk storage (the mutable kind).
#[derive(Clone, Debug, Default)]
struct OwnedChunk {
    ids: Vec<NodeId>,
    scores: Vec<f64>,
    border_ids: Vec<NodeId>,
    border_pos: Vec<u32>,
}

/// Chunk storage: heap vectors, or borrowed spans of an opened arena file.
#[derive(Debug)]
enum ChunkData {
    Owned(OwnedChunk),
    /// Byte spans of [`Backing`] (an `mmap` or its heap fallback). Only
    /// constructed on little-endian targets, where the file encoding *is*
    /// the in-memory encoding.
    Mapped {
        backing: Arc<Backing>,
        ids_off: usize,
        scores_off: usize,
        border_ids_off: usize,
        border_pos_off: usize,
        len: usize,
        border_len: usize,
    },
}

/// One fixed-capacity span of the arena. Chunks are immutable once sealed
/// (shared with a snapshot, file-backed, or full); only the unique owned
/// tail chunk ever grows. Snapshot clones `Arc`-share chunks wholesale —
/// the copy-on-write unit of the publish path.
#[derive(Debug)]
struct Chunk {
    data: ChunkData,
}

#[cfg(target_endian = "little")]
fn map_u32s(backing: &Backing, off: usize, n: usize) -> &[u32] {
    let bytes = &backing.bytes()[off..off + n * 4];
    debug_assert_eq!(bytes.as_ptr() as usize % 4, 0);
    // SAFETY: the slice covers exactly n*4 in-bounds bytes of the backing
    // (which outlives the return via the borrow), the arena layout keeps
    // every section 4-aligned from an 8-aligned base, and on this
    // little-endian target the file encoding is the in-memory encoding.
    unsafe { std::slice::from_raw_parts(bytes.as_ptr().cast::<u32>(), n) }
}

#[cfg(target_endian = "little")]
fn map_f64s(backing: &Backing, off: usize, n: usize) -> &[f64] {
    let bytes = &backing.bytes()[off..off + n * 8];
    debug_assert_eq!(bytes.as_ptr() as usize % 8, 0);
    // SAFETY: the slice covers exactly n*8 in-bounds bytes of the backing,
    // the score section is 8-aligned from the backing's 8-aligned base,
    // any bit pattern is a valid f64, and this target is little-endian.
    unsafe { std::slice::from_raw_parts(bytes.as_ptr().cast::<f64>(), n) }
}

impl Chunk {
    fn empty() -> Self {
        Chunk {
            data: ChunkData::Owned(OwnedChunk::default()),
        }
    }

    fn from_owned(owned: OwnedChunk) -> Self {
        Chunk {
            data: ChunkData::Owned(owned),
        }
    }

    fn is_owned(&self) -> bool {
        matches!(self.data, ChunkData::Owned(_))
    }

    /// Whether the chunk borrows from a kernel file mapping (as opposed to
    /// heap memory, owned or heap-fallback backing).
    fn is_file_mapped(&self) -> bool {
        match &self.data {
            ChunkData::Owned(_) => false,
            ChunkData::Mapped { backing, .. } => backing.is_file_mapped(),
        }
    }

    fn owned_mut(&mut self) -> &mut OwnedChunk {
        match &mut self.data {
            ChunkData::Owned(o) => o,
            ChunkData::Mapped { .. } => unreachable!("appends only target owned tail chunks"),
        }
    }

    fn len(&self) -> usize {
        match &self.data {
            ChunkData::Owned(o) => o.ids.len(),
            ChunkData::Mapped { len, .. } => *len,
        }
    }

    fn border_len(&self) -> usize {
        match &self.data {
            ChunkData::Owned(o) => o.border_ids.len(),
            ChunkData::Mapped { border_len, .. } => *border_len,
        }
    }

    fn ids(&self) -> &[NodeId] {
        match &self.data {
            ChunkData::Owned(o) => &o.ids,
            ChunkData::Mapped {
                backing,
                ids_off,
                len,
                ..
            } => map_u32s(backing, *ids_off, *len),
        }
    }

    fn scores(&self) -> &[f64] {
        match &self.data {
            ChunkData::Owned(o) => &o.scores,
            ChunkData::Mapped {
                backing,
                scores_off,
                len,
                ..
            } => map_f64s(backing, *scores_off, *len),
        }
    }

    fn border_ids(&self) -> &[NodeId] {
        match &self.data {
            ChunkData::Owned(o) => &o.border_ids,
            ChunkData::Mapped {
                backing,
                border_ids_off,
                border_len,
                ..
            } => map_u32s(backing, *border_ids_off, *border_len),
        }
    }

    fn border_pos(&self) -> &[u32] {
        match &self.data {
            ChunkData::Owned(o) => &o.border_pos,
            ChunkData::Mapped {
                backing,
                border_pos_off,
                border_len,
                ..
            } => map_u32s(backing, *border_pos_off, *border_len),
        }
    }

    /// Bytes of entry + border data viewed through this chunk.
    fn data_bytes(&self) -> usize {
        self.len() * (4 + 8) + self.border_len() * (4 + 4)
    }
}

/// The flat structure-of-arrays PPV index — the online hot path.
///
/// All entries live in fixed-capacity *chunks* (`ids` / `scores` parallel
/// arrays plus each segment's precomputed *border-hub sublist*: the
/// positions of the entries that are themselves hubs, so the query
/// engine's `step()` walks only the expansion candidates instead of
/// filtering every entry through a hub mask). A per-hub directory
/// ([`SegRef`]) carves the chunks into segments; segments never span a
/// chunk boundary.
///
/// Reads are zero-copy: [`PpvStore::view`] returns slices into the chunk.
/// A chunk either owns its vectors on the heap or borrows spans of an
/// opened `FPPVIDX3` file ([`FlatIndex::open`] — `mmap` where available).
///
/// ## Copy-on-write snapshots
///
/// `Clone` is shallow: chunks are `Arc`-shared and only the directory
/// (`slot_of`, `segs`, `spent` — a few bytes per node/hub) is copied, so
/// publishing a patched snapshot costs microseconds instead of a deep
/// arena copy. Mutations never write through a shared chunk: appends that
/// would touch a shared (or file-backed, or full) tail chunk *seal* it and
/// start a fresh owned chunk instead — see [`FlatIndex::CHUNK_ENTRIES`].
/// The only bulk copying left is compaction, and [`FlatIndex::bytes_cloned`]
/// meters it.
///
/// ## Dynamic updates
///
/// [`FlatIndex::replace`] patches a segment by tombstoning the old one
/// (a directory edit — chunk bytes are left in place) and appending the
/// new entries at the tail chunk. When dead entries exceed
/// [`FlatIndex::COMPACTION_THRESHOLD`] of the arena, compaction rewrites
/// the live segments into fresh owned chunks in ascending hub order.
#[derive(Clone, Debug)]
pub struct FlatIndex {
    /// node id → directory slot (or [`NO_SLOT`]).
    slot_of: Vec<u32>,
    /// slot → hub id.
    hub_ids: Vec<NodeId>,
    /// slot → segment location.
    segs: Vec<SegRef>,
    /// The arena: `Arc`-shared fixed-capacity chunks.
    chunks: Vec<Arc<Chunk>>,
    /// Live (non-tombstoned) arena entries.
    live_entries: usize,
    /// Tombstoned arena entries awaiting compaction.
    dead_entries: usize,
    /// Compactions performed over the arena's lifetime.
    compactions: u64,
    /// Cumulative chunk bytes deep-copied (compactions and any other
    /// copy-on-write materialization) over the arena's lifetime.
    bytes_cloned: u64,
    /// slot → accumulated score-L1 error bound of the segment relative to
    /// an exact recompute — runtime state of the delta-update path
    /// ([`crate::dynamic`]), serialized in the arena's spend section.
    spent: Vec<f64>,
}

impl FlatIndex {
    /// Dead-entry fraction of the arena that triggers compaction on the
    /// next [`FlatIndex::replace`].
    pub const COMPACTION_THRESHOLD: f64 = 0.3;

    /// Target entries per chunk — the copy-on-write granule. A segment
    /// larger than this gets a chunk of its own (segments never span
    /// chunks).
    pub const CHUNK_ENTRIES: usize = 1 << 16;

    /// An empty arena for graphs of `n` nodes.
    pub fn new(n: usize) -> Self {
        FlatIndex {
            slot_of: vec![NO_SLOT; n],
            hub_ids: Vec::new(),
            segs: Vec::new(),
            chunks: Vec::new(),
            live_entries: 0,
            dead_entries: 0,
            compactions: 0,
            bytes_cloned: 0,
            spent: Vec::new(),
        }
    }

    /// Builds the arena from a [`MemoryIndex`] (hubs laid out in ascending
    /// hub-id order, so two builds from equal inputs are byte-identical).
    pub fn from_memory(index: &MemoryIndex, hubs: &HubSet) -> Self {
        let mut sorted: Vec<NodeId> = index.hub_ids().to_vec();
        sorted.sort_unstable();
        let mut flat = FlatIndex::new(index.capacity());
        for h in sorted {
            let ppv = index.get(h).expect("indexed hub");
            flat.append_segment(h, &PpvRef::Aos(ppv.entries.entries()), hubs);
            flat.set_budget_spent(h, index.budget_spent(h));
        }
        flat
    }

    /// Builds the arena from any store (e.g. a [`DiskIndex`], to pull a
    /// file-resident index into the zero-copy layout). Hubs are laid out
    /// in the order given.
    pub fn from_store<S: PpvStore>(n: usize, store: &S, hub_ids: &[NodeId], hubs: &HubSet) -> Self {
        let mut flat = FlatIndex::new(n);
        for &h in hub_ids {
            let view = store.view(h).expect("hub listed but not stored");
            flat.append_segment(h, &view, hubs);
        }
        flat
    }

    /// Appends a brand-new segment for `hub` (which must not be indexed
    /// yet — use [`FlatIndex::replace`] to patch an existing hub).
    pub fn insert(&mut self, hub: NodeId, ppv: &PrimePpv, hubs: &HubSet) {
        assert!(
            self.slot_of[hub as usize] == NO_SLOT,
            "hub {hub} already indexed (use replace)"
        );
        self.append_segment(hub, &PpvRef::Aos(ppv.entries.entries()), hubs);
    }

    /// Replaces `hub`'s prime PPV: tombstone-and-append, then compaction
    /// once the dead fraction crosses [`FlatIndex::COMPACTION_THRESHOLD`].
    pub fn replace(&mut self, hub: NodeId, ppv: &PrimePpv, hubs: &HubSet) {
        self.replace_entries(hub, ppv.entries.entries(), hubs);
    }

    /// [`FlatIndex::replace`] over a raw sorted entry slice — the
    /// delta-update path patches segments from its merge scratch without
    /// materializing a [`PrimePpv`]. Resets the slot's budget spend to 0;
    /// delta patches re-apply theirs via [`FlatIndex::set_budget_spent`].
    pub fn replace_entries(&mut self, hub: NodeId, entries: &[(NodeId, f64)], hubs: &HubSet) {
        let view = PpvRef::Aos(entries);
        let slot = self.slot_of[hub as usize];
        if slot == NO_SLOT {
            self.append_segment(hub, &view, hubs);
            return;
        }
        let slot = slot as usize;
        // Tombstone the old segment: a pure directory edit. The old chunk
        // bytes are left in place, so snapshots sharing the chunk keep
        // reading them untouched.
        let old_len = self.segs[slot].len as usize;
        self.live_entries -= old_len;
        self.dead_entries += old_len;
        // Append the new segment and point the directory at it.
        self.segs[slot] = self.push_segment_data(&view, hubs);
        self.spent[slot] = 0.0;
        if (self.dead_entries as f64)
            > Self::COMPACTION_THRESHOLD * (self.live_entries + self.dead_entries) as f64
        {
            self.compact();
        }
    }

    /// Rewrites the live segments into fresh owned chunks in ascending
    /// hub-id order (the same layout a fresh [`FlatIndex::from_memory`]
    /// build produces), dropping tombstoned bytes and releasing any shared
    /// or file-backed chunks. The copied bytes are metered in
    /// [`FlatIndex::bytes_cloned`].
    pub fn compact(&mut self) {
        let mut sorted: Vec<NodeId> = self.hub_ids.clone();
        sorted.sort_unstable();
        let mut chunks: Vec<Arc<Chunk>> = Vec::new();
        let mut cur = OwnedChunk::default();
        let mut segs = self.segs.clone();
        let mut copied = 0u64;
        for &h in &sorted {
            let slot = self.slot_of[h as usize] as usize;
            let old = self.segs[slot];
            if !cur.ids.is_empty() && cur.ids.len() + old.len as usize > Self::CHUNK_ENTRIES {
                chunks.push(Arc::new(Chunk::from_owned(std::mem::take(&mut cur))));
            }
            let off = cur.ids.len() as u32;
            let border_off = cur.border_ids.len() as u32;
            if old.len > 0 {
                let src = &self.chunks[old.chunk as usize];
                let (o, l) = (old.off as usize, old.len as usize);
                cur.ids.extend_from_slice(&src.ids()[o..o + l]);
                cur.scores.extend_from_slice(&src.scores()[o..o + l]);
                let (bo, bl) = (old.border_off as usize, old.border_len as usize);
                cur.border_ids
                    .extend_from_slice(&src.border_ids()[bo..bo + bl]);
                cur.border_pos
                    .extend_from_slice(&src.border_pos()[bo..bo + bl]);
                copied += old.len as u64 * (4 + 8) + old.border_len as u64 * (4 + 4);
            }
            segs[slot] = SegRef {
                chunk: chunks.len() as u32,
                off,
                len: old.len,
                border_off,
                border_len: old.border_len,
            };
        }
        if !cur.ids.is_empty() {
            chunks.push(Arc::new(Chunk::from_owned(cur)));
        }
        self.chunks = chunks;
        self.segs = segs;
        self.dead_entries = 0;
        self.compactions += 1;
        self.bytes_cloned += copied;
    }

    /// Appends a fresh directory slot for `hub` backed by a new arena
    /// segment.
    fn append_segment(&mut self, hub: NodeId, view: &PpvRef<'_>, hubs: &HubSet) {
        let slot = self.hub_ids.len() as u32;
        self.slot_of[hub as usize] = slot;
        self.hub_ids.push(hub);
        let seg = self.push_segment_data(view, hubs);
        self.segs.push(seg);
        self.spent.push(0.0);
    }

    /// Copies one segment's entries (and its border-hub sublist) into the
    /// tail chunk — the single place the segment encoding is written.
    ///
    /// The tail chunk is grown in place only while it is uniquely owned,
    /// heap-resident, and has room; otherwise it is *sealed* and a fresh
    /// owned chunk is started. Appends therefore never deep-copy a chunk a
    /// snapshot is still reading — that is what makes the shallow `Clone`
    /// a sound copy-on-write publish.
    fn push_segment_data(&mut self, view: &PpvRef<'_>, hubs: &HubSet) -> SegRef {
        let need = view.len();
        let start_new = match self.chunks.last() {
            None => true,
            Some(c) => {
                !c.is_owned()
                    || Arc::strong_count(c) > 1
                    || (c.len() > 0 && c.len() + need > Self::CHUNK_ENTRIES)
            }
        };
        if start_new {
            self.chunks.push(Arc::new(Chunk::empty()));
        }
        let ci = self.chunks.len() - 1;
        let chunk = Arc::get_mut(&mut self.chunks[ci])
            .expect("tail chunk is uniquely owned")
            .owned_mut();
        let off = chunk.ids.len() as u32;
        let border_off = chunk.border_ids.len() as u32;
        let mut n_border = 0u32;
        view.for_each(|id, s| {
            if hubs.is_hub(id) {
                chunk.border_ids.push(id);
                chunk.border_pos.push(chunk.ids.len() as u32 - off);
                n_border += 1;
            }
            chunk.ids.push(id);
            chunk.scores.push(s);
        });
        self.live_entries += need;
        SegRef {
            chunk: ci as u32,
            off,
            len: need as u32,
            border_off,
            border_len: n_border,
        }
    }

    /// The entry slices of a segment.
    fn seg_entries(&self, seg: SegRef) -> (&[NodeId], &[f64]) {
        if seg.len == 0 {
            return (&[], &[]);
        }
        let c = &self.chunks[seg.chunk as usize];
        let (o, l) = (seg.off as usize, seg.len as usize);
        (&c.ids()[o..o + l], &c.scores()[o..o + l])
    }

    /// The border-sublist slices of a segment.
    fn seg_borders(&self, seg: SegRef) -> (&[NodeId], &[u32]) {
        if seg.border_len == 0 {
            return (&[], &[]);
        }
        let c = &self.chunks[seg.chunk as usize];
        let (o, l) = (seg.border_off as usize, seg.border_len as usize);
        (&c.border_ids()[o..o + l], &c.border_pos()[o..o + l])
    }

    /// Indexed hub ids, in slot order (insertion order).
    pub fn hub_ids(&self) -> &[NodeId] {
        &self.hub_ids
    }

    /// Number of node slots (the graph size the arena was created for).
    pub fn capacity(&self) -> usize {
        self.slot_of.len()
    }

    /// Tombstoned arena entries currently awaiting compaction.
    pub fn dead_entries(&self) -> usize {
        self.dead_entries
    }

    /// Compactions performed over the arena's lifetime.
    pub fn compactions(&self) -> u64 {
        self.compactions
    }

    /// Accumulated error-budget spend of `hub`'s segment (score-L1 bound
    /// vs an exact recompute; see [`crate::dynamic`]).
    pub fn budget_spent(&self, hub: NodeId) -> f64 {
        match self.slot_of.get(hub as usize) {
            Some(&slot) if slot != NO_SLOT => self.spent[slot as usize],
            _ => 0.0,
        }
    }

    /// Sets `hub`'s accumulated error-budget spend (delta refresh only).
    pub fn set_budget_spent(&mut self, hub: NodeId, spent: f64) {
        let slot = self.slot_of[hub as usize];
        assert!(slot != NO_SLOT, "hub {hub} not indexed");
        self.spent[slot as usize] = spent;
    }

    /// Largest per-hub budget spend in the arena — the watermark reported
    /// by [`crate::dynamic::RefreshStats`].
    pub fn budget_watermark(&self) -> f64 {
        self.spent.iter().copied().fold(0.0, f64::max)
    }

    /// Directory overhead in bytes (`slot_of`, `hub_ids`, `segs`, `spent`)
    /// — the part a shallow snapshot clone actually copies.
    fn directory_bytes(&self) -> usize {
        self.slot_of.len() * 4
            + self.hub_ids.len() * 4
            + self.segs.len() * std::mem::size_of::<SegRef>()
            + self.spent.len() * 8
    }

    /// Bytes viewed through the arena chunks (including tombstoned
    /// segments and the border sublists) plus the directory — the total
    /// working-set figure, as opposed to the on-disk-equivalent
    /// [`PpvStore::storage_bytes`].
    pub fn arena_bytes(&self) -> usize {
        self.chunks.iter().map(|c| c.data_bytes()).sum::<usize>() + self.directory_bytes()
    }

    /// Bytes resident on the process heap: owned chunks, heap-fallback
    /// file backings, and the directory. Memory behind a kernel file
    /// mapping is *not* counted here — see [`FlatIndex::mapped_bytes`].
    pub fn resident_bytes(&self) -> usize {
        self.chunks
            .iter()
            .filter(|c| !c.is_file_mapped())
            .map(|c| c.data_bytes())
            .sum::<usize>()
            + self.directory_bytes()
    }

    /// Bytes served through `mmap`-backed chunks (page-cache resident at
    /// the kernel's discretion; an arena larger than RAM stays openable).
    pub fn mapped_bytes(&self) -> usize {
        self.chunks
            .iter()
            .filter(|c| c.is_file_mapped())
            .map(|c| c.data_bytes())
            .sum::<usize>()
    }

    /// Cumulative chunk bytes deep-copied over the arena's lifetime
    /// (compaction rewrites; zero for shallow snapshot clones and
    /// tombstone patches). The delta-refresh path reports the per-refresh
    /// difference as [`crate::dynamic::RefreshStats::cloned_bytes`].
    pub fn bytes_cloned(&self) -> u64 {
        self.bytes_cloned
    }

    /// Number of chunks currently backing the arena.
    pub fn chunk_count(&self) -> usize {
        self.chunks.len()
    }

    /// How many of `self`'s chunks are the *same allocation* as one of
    /// `other`'s — the copy-on-write sharing observable across a snapshot
    /// clone.
    pub fn shared_chunk_count(&self, other: &FlatIndex) -> usize {
        self.chunks
            .iter()
            .filter(|c| other.chunks.iter().any(|o| Arc::ptr_eq(c, o)))
            .count()
    }

    /// Exact byte size of the `FPPVIDX3` serialization of this arena.
    pub fn file_bytes(&self) -> usize {
        let num_border: u64 = self.segs.iter().map(|s| s.border_len as u64).sum();
        ArenaLayout::compute(
            self.slot_of.len() as u64,
            self.hub_ids.len() as u64,
            self.live_entries as u64,
            num_border,
        )
        .expect("arena sizes fit u64")
        .file_len as usize
    }

    /// Serializes to the `FPPVIDX3` arena format: live segments only, in
    /// ascending hub-id order — so the bytes are independent of the
    /// in-memory chunk/tombstone state and two equal arenas serialize
    /// byte-identically. The per-hub budget spend is included.
    pub fn write_to_file<P: AsRef<Path>>(&self, path: P) -> io::Result<()> {
        let mut sorted = self.hub_ids.clone();
        sorted.sort_unstable();
        let num_border: u64 = self.segs.iter().map(|s| s.border_len as u64).sum();
        let layout = ArenaLayout::compute(
            self.slot_of.len() as u64,
            sorted.len() as u64,
            self.live_entries as u64,
            num_border,
        )
        .expect("arena sizes fit u64");
        // Published atomically (temp + fsync + rename): a crash mid-write
        // can never leave a torn FPPVIDX3 file at `path`, so `open`'s
        // fail-closed validation only ever sees external corruption.
        crate::atomic_io::write_atomic(path, |w| {
            w.write_all(FLAT_MAGIC)?;
            w.write_all(&FLAT_VERSION.to_le_bytes())?;
            w.write_all(&0u32.to_le_bytes())?;
            for word in layout.header_words() {
                w.write_all(&word.to_le_bytes())?;
            }
            // Directory: tightly packed ascending hubs.
            let (mut entry_start, mut border_start) = (0u64, 0u64);
            for &h in &sorted {
                let seg = self.segs[self.slot_of[h as usize] as usize];
                w.write_all(&h.to_le_bytes())?;
                w.write_all(&seg.len.to_le_bytes())?;
                w.write_all(&seg.border_len.to_le_bytes())?;
                w.write_all(&0u32.to_le_bytes())?;
                w.write_all(&entry_start.to_le_bytes())?;
                w.write_all(&border_start.to_le_bytes())?;
                entry_start += seg.len as u64;
                border_start += seg.border_len as u64;
            }
            // Spend section (directory order).
            for &h in &sorted {
                let spent = self.spent[self.slot_of[h as usize] as usize];
                w.write_all(&spent.to_le_bytes())?;
            }
            // Entry ids, then scores; then the border sublists.
            let pad = |n: u64| (pad8(n).unwrap() - n) as usize;
            for &h in &sorted {
                let seg = self.segs[self.slot_of[h as usize] as usize];
                write_u32s(w, self.seg_entries(seg).0)?;
            }
            w.write_all(&[0u8; 8][..pad(layout.num_entries * 4)])?;
            for &h in &sorted {
                let seg = self.segs[self.slot_of[h as usize] as usize];
                write_f64s(w, self.seg_entries(seg).1)?;
            }
            for &h in &sorted {
                let seg = self.segs[self.slot_of[h as usize] as usize];
                write_u32s(w, self.seg_borders(seg).0)?;
            }
            w.write_all(&[0u8; 8][..pad(layout.num_border * 4)])?;
            for &h in &sorted {
                let seg = self.segs[self.slot_of[h as usize] as usize];
                write_u32s(w, self.seg_borders(seg).1)?;
            }
            w.write_all(&[0u8; 8][..pad(layout.num_border * 4)])?;
            Ok(())
        })
    }

    /// Opens a `FPPVIDX3` arena file zero-copy: the file is mapped (or
    /// heap-loaded where `mmap` is unavailable) and the sections become
    /// borrowed chunks — no decode pass, so open time is O(header +
    /// directory) instead of O(arena).
    ///
    /// Fails closed: every header and directory field is validated with
    /// checked arithmetic (magic, version, section offsets, bounds,
    /// tight packing, border positions) before any data is referenced. A
    /// corrupt file yields [`OpenError::Format`], never a panic.
    pub fn open<P: AsRef<Path>>(path: P) -> Result<FlatIndex, OpenError> {
        let file = File::open(path)?;
        let file_len = file.metadata()?.len();
        if file_len < FLAT_HEADER_LEN as u64 {
            return Err(bad("file too short for an arena header"));
        }
        let byte_len =
            usize::try_from(file_len).map_err(|_| bad("file larger than the address space"))?;
        let mut header = [0u8; FLAT_HEADER_LEN];
        {
            let mut r = &file;
            r.read_exact(&mut header)?;
        }
        if &header[..8] != FLAT_MAGIC {
            return Err(bad("not a FastPPV arena (bad magic)"));
        }
        let version = u32::from_le_bytes(header[8..12].try_into().unwrap());
        if version != FLAT_VERSION {
            return Err(bad(format!(
                "unsupported arena version {version} (expected {FLAT_VERSION}); \
                 rebuild the index with this binary"
            )));
        }
        let flags = u32::from_le_bytes(header[12..16].try_into().unwrap());
        if flags != 0 {
            return Err(bad(format!("unknown flags 0x{flags:x}")));
        }
        let mut words = [0u64; 11];
        for (i, word) in words.iter_mut().enumerate() {
            *word = u64::from_le_bytes(header[16 + i * 8..24 + i * 8].try_into().unwrap());
        }
        let [num_nodes, num_hubs, num_entries, num_border, ..] = words;
        if num_nodes > MAX_ARENA_NODES {
            return Err(bad(format!("implausible node count {num_nodes}")));
        }
        if num_hubs > num_nodes {
            return Err(bad("more hubs than nodes"));
        }
        let layout = ArenaLayout::compute(num_nodes, num_hubs, num_entries, num_border)
            .ok_or_else(|| bad("section sizes overflow (corrupt header)"))?;
        if layout.header_words() != words {
            return Err(bad("section offsets disagree with the declared counts \
                 (misaligned or overlapping sections)"));
        }
        if layout.file_len != file_len {
            return Err(bad(format!(
                "file is {file_len} bytes but the header declares {}",
                layout.file_len
            )));
        }
        let backing = Arc::new(Backing::open(&file, byte_len)?);
        FlatIndex::from_backing(backing, &layout)
    }

    /// Builds the directory and carves the chunks out of a validated
    /// backing. Separated from [`FlatIndex::open`] so tests can drive it
    /// with heap backings.
    fn from_backing(backing: Arc<Backing>, layout: &ArenaLayout) -> Result<FlatIndex, OpenError> {
        let bytes = backing.bytes();
        let num_nodes = layout.num_nodes as usize;
        let num_hubs = layout.num_hubs as usize;
        let mut slot_of = vec![NO_SLOT; num_nodes];
        let mut hub_ids = Vec::with_capacity(num_hubs);
        let mut segs: Vec<SegRef> = Vec::with_capacity(num_hubs);
        let mut chunks: Vec<Arc<Chunk>> = Vec::new();
        // Running sums double as tight-packing validation and as the
        // entry/border offsets of the chunk under construction.
        let (mut entry_sum, mut border_sum) = (0u64, 0u64);
        // Chunk under construction: first entry/border and counts.
        let (mut c_entry0, mut c_border0) = (0u64, 0u64);
        let (mut c_len, mut c_blen) = (0u64, 0u64);
        let dir = &bytes[layout.dir_off as usize..layout.spend_off as usize];
        for (slot, rec) in dir.chunks_exact(FLAT_DIR_RECORD_LEN).enumerate() {
            let hub = u32::from_le_bytes(rec[0..4].try_into().unwrap());
            let len = u32::from_le_bytes(rec[4..8].try_into().unwrap());
            let blen = u32::from_le_bytes(rec[8..12].try_into().unwrap());
            let reserved = u32::from_le_bytes(rec[12..16].try_into().unwrap());
            let entry_start = u64::from_le_bytes(rec[16..24].try_into().unwrap());
            let border_start = u64::from_le_bytes(rec[24..32].try_into().unwrap());
            if (hub as u64) >= layout.num_nodes {
                return Err(bad(format!("hub {hub} out of node range")));
            }
            if hub_ids.last().is_some_and(|&prev| prev >= hub) {
                return Err(bad("directory hubs not strictly ascending"));
            }
            if reserved != 0 {
                return Err(bad("nonzero reserved directory field"));
            }
            if blen > len {
                return Err(bad(format!(
                    "hub {hub}: border sublist longer than its segment"
                )));
            }
            if entry_start != entry_sum || border_start != border_sum {
                return Err(bad(format!(
                    "hub {hub}: segment offsets not tightly packed (corrupt directory)"
                )));
            }
            entry_sum = entry_sum
                .checked_add(len as u64)
                .filter(|&e| e <= layout.num_entries)
                .ok_or_else(|| bad("directory entry counts exceed the header total"))?;
            border_sum = border_sum
                .checked_add(blen as u64)
                .filter(|&b| b <= layout.num_border)
                .ok_or_else(|| bad("directory border counts exceed the header total"))?;
            // Seal the chunk under construction when this segment would
            // overflow it (oversized segments get a chunk of their own).
            if c_len > 0 && c_len + len as u64 > Self::CHUNK_ENTRIES as u64 {
                chunks.push(Arc::new(carve_chunk(
                    &backing, layout, c_entry0, c_len, c_border0, c_blen,
                )));
                (c_entry0, c_border0) = (entry_start, border_start);
                (c_len, c_blen) = (0, 0);
            }
            segs.push(SegRef {
                chunk: chunks.len() as u32,
                off: c_len as u32,
                len,
                border_off: c_blen as u32,
                border_len: blen,
            });
            c_len += len as u64;
            c_blen += blen as u64;
            slot_of[hub as usize] = slot as u32;
            hub_ids.push(hub);
        }
        if entry_sum != layout.num_entries || border_sum != layout.num_border {
            return Err(bad("directory totals disagree with the header"));
        }
        if c_len > 0 || c_blen > 0 {
            chunks.push(Arc::new(carve_chunk(
                &backing, layout, c_entry0, c_len, c_border0, c_blen,
            )));
        }
        let spend = &bytes[layout.spend_off as usize..layout.ids_off as usize];
        let spent: Vec<f64> = spend
            .chunks_exact(8)
            .map(|b| f64::from_le_bytes(b.try_into().unwrap()))
            .collect();
        let flat = FlatIndex {
            slot_of,
            hub_ids,
            segs,
            chunks,
            live_entries: layout.num_entries as usize,
            dead_entries: 0,
            compactions: 0,
            bytes_cloned: 0,
            spent,
        };
        // Border positions index into their segment's entry slice at query
        // time; validate them now so a corrupt file cannot panic later.
        for (slot, &seg) in flat.segs.iter().enumerate() {
            let (_, positions) = flat.seg_borders(seg);
            if positions.iter().any(|&p| p >= seg.len) {
                return Err(bad(format!(
                    "hub {}: border position out of segment range",
                    flat.hub_ids[slot]
                )));
            }
        }
        Ok(flat)
    }
}

/// A chunk borrowing the byte spans of entries `[entry0, entry0+len)` and
/// borders `[border0, border0+blen)` from an opened arena. On big-endian
/// targets the spans are decoded into an owned chunk instead.
fn carve_chunk(
    backing: &Arc<Backing>,
    layout: &ArenaLayout,
    entry0: u64,
    len: u64,
    border0: u64,
    blen: u64,
) -> Chunk {
    #[cfg(target_endian = "little")]
    {
        Chunk {
            data: ChunkData::Mapped {
                backing: Arc::clone(backing),
                ids_off: (layout.ids_off + entry0 * 4) as usize,
                scores_off: (layout.scores_off + entry0 * 8) as usize,
                border_ids_off: (layout.border_ids_off + border0 * 4) as usize,
                border_pos_off: (layout.border_pos_off + border0 * 4) as usize,
                len: len as usize,
                border_len: blen as usize,
            },
        }
    }
    #[cfg(not(target_endian = "little"))]
    {
        let bytes = backing.bytes();
        let u32s = |off: u64, n: u64| -> Vec<u32> {
            bytes[off as usize..(off + n * 4) as usize]
                .chunks_exact(4)
                .map(|b| u32::from_le_bytes(b.try_into().unwrap()))
                .collect()
        };
        let scores = bytes[(layout.scores_off + entry0 * 8) as usize
            ..(layout.scores_off + (entry0 + len) * 8) as usize]
            .chunks_exact(8)
            .map(|b| f64::from_le_bytes(b.try_into().unwrap()))
            .collect();
        Chunk::from_owned(OwnedChunk {
            ids: u32s(layout.ids_off + entry0 * 4, len),
            scores,
            border_ids: u32s(layout.border_ids_off + border0 * 4, blen),
            border_pos: u32s(layout.border_pos_off + border0 * 4, blen),
        })
    }
}

/// Writes a `u32` slice little-endian (bulk memcpy on LE targets).
fn write_u32s(w: &mut impl Write, vals: &[u32]) -> io::Result<()> {
    #[cfg(target_endian = "little")]
    {
        let n = std::mem::size_of_val(vals);
        // SAFETY: viewing an initialized `[u32]` as bytes is always valid —
        // same allocation, same length in bytes, alignment only loosens.
        let bytes = unsafe { std::slice::from_raw_parts(vals.as_ptr().cast::<u8>(), n) };
        w.write_all(bytes)
    }
    #[cfg(not(target_endian = "little"))]
    {
        for v in vals {
            w.write_all(&v.to_le_bytes())?;
        }
        Ok(())
    }
}

/// Writes an `f64` slice little-endian (bulk memcpy on LE targets).
fn write_f64s(w: &mut impl Write, vals: &[f64]) -> io::Result<()> {
    #[cfg(target_endian = "little")]
    {
        let n = std::mem::size_of_val(vals);
        // SAFETY: viewing an initialized `[f64]` as bytes is always valid —
        // same allocation, same length in bytes, alignment only loosens.
        let bytes = unsafe { std::slice::from_raw_parts(vals.as_ptr().cast::<u8>(), n) };
        w.write_all(bytes)
    }
    #[cfg(not(target_endian = "little"))]
    {
        for v in vals {
            w.write_all(&v.to_le_bytes())?;
        }
        Ok(())
    }
}

impl PpvStore for FlatIndex {
    #[inline]
    fn view(&self, hub: NodeId) -> Option<PpvRef<'_>> {
        let slot = *self.slot_of.get(hub as usize)?;
        if slot == NO_SLOT {
            return None;
        }
        let (ids, scores) = self.seg_entries(self.segs[slot as usize]);
        Some(PpvRef::Soa { ids, scores })
    }

    fn contains(&self, hub: NodeId) -> bool {
        self.slot_of
            .get(hub as usize)
            .is_some_and(|&s| s != NO_SLOT)
    }

    fn spent_budget(&self, hub: NodeId) -> f64 {
        self.budget_spent(hub)
    }

    fn hub_count(&self) -> usize {
        self.hub_ids.len()
    }

    fn total_entries(&self) -> usize {
        self.live_entries
    }

    #[inline]
    fn border_sublist(&self, hub: NodeId) -> Option<(&[NodeId], &[u32])> {
        let slot = *self.slot_of.get(hub as usize)?;
        if slot == NO_SLOT {
            return None;
        }
        Some(self.seg_borders(self.segs[slot as usize]))
    }

    /// The `FPPVIDX3` serialized size.
    fn storage_bytes(&self) -> usize {
        self.file_bytes()
    }

    fn resident_bytes(&self) -> usize {
        FlatIndex::resident_bytes(self)
    }

    fn mapped_bytes(&self) -> usize {
        FlatIndex::mapped_bytes(self)
    }
}

/// A bounded FIFO read cache (approximates LRU without per-hit bookkeeping).
struct FifoCache {
    map: HashMap<NodeId, Arc<PrimePpv>>,
    order: std::collections::VecDeque<NodeId>,
    capacity: usize,
}

impl FifoCache {
    fn new(capacity: usize) -> Self {
        FifoCache {
            map: HashMap::with_capacity(capacity),
            order: std::collections::VecDeque::with_capacity(capacity),
            capacity,
        }
    }

    fn get(&self, hub: NodeId) -> Option<Arc<PrimePpv>> {
        self.map.get(&hub).cloned()
    }

    fn put(&mut self, hub: NodeId, ppv: Arc<PrimePpv>) {
        if self.capacity == 0 || self.map.contains_key(&hub) {
            return;
        }
        if self.map.len() >= self.capacity {
            if let Some(old) = self.order.pop_front() {
                self.map.remove(&old);
            }
        }
        self.map.insert(hub, ppv);
        self.order.push_back(hub);
    }
}

/// File-backed PPV index with a per-hub directory and a FIFO read cache.
pub struct DiskIndex {
    file: Mutex<File>,
    directory: HashMap<NodeId, (u64, u32)>,
    /// Per-hub budget spend from the file's spend section.
    spent: HashMap<NodeId, f64>,
    total_entries: usize,
    cache: Mutex<FifoCache>,
    reads: AtomicU64,
}

impl DiskIndex {
    /// Opens an index written by [`MemoryIndex::write_to_file`].
    ///
    /// `cache_capacity` bounds the number of prime PPVs kept in memory.
    pub fn open<P: AsRef<Path>>(path: P, cache_capacity: usize) -> io::Result<Self> {
        let mut file = File::open(path)?;
        let mut header = [0u8; HEADER_LEN];
        file.read_exact(&mut header)?;
        if &header[..8] != MAGIC {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "not a FastPPV index (bad magic)",
            ));
        }
        let version = u32::from_le_bytes(header[8..12].try_into().unwrap());
        if version != VERSION {
            let hint = if version == 1 {
                " (version 1 predates the budget-spend section; rebuild the index)"
            } else {
                ""
            };
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unsupported index version {version}{hint}"),
            ));
        }
        let num_hubs = u64::from_le_bytes(header[16..24].try_into().unwrap()) as usize;
        let file_len = file.metadata()?.len();
        let dir_len = (num_hubs as u64).checked_mul((DIR_RECORD_LEN + SPEND_LEN) as u64);
        if dir_len.is_none_or(|d| HEADER_LEN as u64 + d > file_len) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "index directory exceeds file size (corrupt header)",
            ));
        }
        let mut dir_bytes = vec![0u8; num_hubs * DIR_RECORD_LEN];
        file.read_exact(&mut dir_bytes)?;
        let mut spend_bytes = vec![0u8; num_hubs * SPEND_LEN];
        file.read_exact(&mut spend_bytes)?;
        let mut directory = HashMap::with_capacity(num_hubs);
        let mut spent = HashMap::with_capacity(num_hubs);
        let mut total_entries = 0usize;
        for (i, rec) in dir_bytes.chunks_exact(DIR_RECORD_LEN).enumerate() {
            let hub = NodeId::from_le_bytes(rec[0..4].try_into().unwrap());
            let offset = u64::from_le_bytes(rec[4..12].try_into().unwrap());
            let count = u32::from_le_bytes(rec[12..16].try_into().unwrap());
            // Every blob must lie within the file; a corrupt directory must
            // fail at open, not panic (or over-allocate) at query time.
            let end = offset
                .checked_add(count as u64 * ENTRY_LEN as u64)
                .filter(|&e| e <= file_len);
            if end.is_none() {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("hub {hub} blob out of bounds (corrupt directory)"),
                ));
            }
            if directory.insert(hub, (offset, count)).is_some() {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("hub {hub} appears twice in the directory"),
                ));
            }
            let s = f64::from_le_bytes(
                spend_bytes[i * SPEND_LEN..(i + 1) * SPEND_LEN]
                    .try_into()
                    .unwrap(),
            );
            spent.insert(hub, s);
            total_entries += count as usize;
        }
        Ok(DiskIndex {
            file: Mutex::new(file),
            directory,
            spent,
            total_entries,
            cache: Mutex::new(FifoCache::new(cache_capacity)),
            reads: AtomicU64::new(0),
        })
    }

    /// Accumulated error-budget spend of `hub`'s stored PPV, as carried by
    /// the file's spend section (0 for unindexed hubs).
    pub fn budget_spent(&self, hub: NodeId) -> f64 {
        self.spent.get(&hub).copied().unwrap_or(0.0)
    }

    /// Number of disk reads performed so far (cache misses).
    pub fn disk_reads(&self) -> u64 {
        self.reads.load(Ordering::Relaxed)
    }

    /// Indexed hub ids, sorted ascending. The hub set is implicit in the
    /// index file, so a deployment can reconstruct its
    /// [`crate::hubs::HubSet`] from the index alone.
    pub fn hub_ids(&self) -> Vec<NodeId> {
        let mut ids: Vec<NodeId> = self.directory.keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// The stored prime PPV of `hub`, served from the read cache when
    /// possible. The cache lock is taken exactly once and held across the
    /// (already file-lock serialized) miss read — deliberately trading
    /// concurrent hits during a cold miss (they wait one disk read) for a
    /// single lock acquisition per `get`; a hot multi-reader deployment
    /// should serve from a [`FlatIndex`] instead.
    pub fn get(&self, hub: NodeId) -> Option<Arc<PrimePpv>> {
        let &(offset, count) = self.directory.get(&hub)?;
        let mut cache = self.cache.lock();
        if let Some(hit) = cache.get(hub) {
            return Some(hit);
        }
        let ppv = Arc::new(
            self.read_ppv(offset, count)
                .expect("index file truncated or corrupt"),
        );
        cache.put(hub, Arc::clone(&ppv));
        Some(ppv)
    }

    fn read_ppv(&self, offset: u64, count: u32) -> io::Result<PrimePpv> {
        let mut buf = vec![0u8; count as usize * ENTRY_LEN];
        {
            let mut file = self.file.lock();
            file.seek(SeekFrom::Start(offset))?;
            file.read_exact(&mut buf)?;
            self.reads.fetch_add(1, Ordering::Relaxed);
        }
        let mut entries = Vec::with_capacity(count as usize);
        for rec in buf.chunks_exact(ENTRY_LEN) {
            let id = NodeId::from_le_bytes(rec[0..4].try_into().unwrap());
            let s = f32::from_le_bytes(rec[4..8].try_into().unwrap());
            entries.push((id, s as f64));
        }
        Ok(PrimePpv {
            entries: SparseVector::from_sorted(entries),
        })
    }
}

impl PpvStore for DiskIndex {
    fn view(&self, hub: NodeId) -> Option<PpvRef<'_>> {
        self.get(hub).map(PpvRef::Owned)
    }

    fn contains(&self, hub: NodeId) -> bool {
        self.directory.contains_key(&hub)
    }

    fn hub_count(&self) -> usize {
        self.directory.len()
    }

    fn total_entries(&self) -> usize {
        self.total_entries
    }

    fn spent_budget(&self, hub: NodeId) -> f64 {
        self.budget_spent(hub)
    }

    /// Only the directory and spend tables stay resident; entry blobs live
    /// on disk (plus a bounded read cache not counted here).
    fn resident_bytes(&self) -> usize {
        self.directory.len() * (4 + 8 + 4 + 4 + 8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_ppv(ids: &[(NodeId, f64)]) -> PrimePpv {
        PrimePpv {
            entries: SparseVector::from_unsorted(ids.to_vec()),
        }
    }

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "fastppv-test-{}-{}-{name}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        p
    }

    #[test]
    fn memory_index_insert_and_get() {
        let mut idx = MemoryIndex::new(10);
        idx.insert(3, sample_ppv(&[(1, 0.5), (2, 0.25)]));
        idx.insert(7, sample_ppv(&[(0, 0.1)]));
        assert_eq!(idx.hub_count(), 2);
        assert_eq!(idx.total_entries(), 3);
        assert!(idx.contains(3) && !idx.contains(4));
        assert_eq!(idx.get(3).unwrap().entries.get(2), 0.25);
        assert!(idx.get(4).is_none());
        assert!(idx.view(4).is_none());
        assert_eq!(idx.load(3).unwrap().entries.get(1), 0.5);
    }

    #[test]
    fn memory_index_replace_updates_totals() {
        let mut idx = MemoryIndex::new(10);
        idx.insert(3, sample_ppv(&[(1, 0.5), (2, 0.25)]));
        idx.insert(3, sample_ppv(&[(1, 0.9)]));
        assert_eq!(idx.hub_count(), 1);
        assert_eq!(idx.total_entries(), 1);
        assert_eq!(idx.get(3).unwrap().entries.get(1), 0.9);
    }

    #[test]
    fn ppv_ref_variants_agree() {
        let ppv = sample_ppv(&[(1, 0.5), (4, 0.25), (9, 0.125)]);
        let ids: Vec<NodeId> = ppv.entries.entries().iter().map(|&(v, _)| v).collect();
        let scores: Vec<f64> = ppv.entries.entries().iter().map(|&(_, s)| s).collect();
        let views = [
            PpvRef::Soa {
                ids: &ids,
                scores: &scores,
            },
            PpvRef::Aos(ppv.entries.entries()),
            PpvRef::Owned(Arc::new(ppv.clone())),
        ];
        for view in &views {
            assert_eq!(view.len(), 3);
            assert_eq!(view.to_prime_ppv(), ppv);
            assert_eq!(view.score_at(1), 0.25);
            assert!((view.l1_norm() - 0.875).abs() < 1e-15);
            let mut collected = Vec::new();
            view.for_each(|v, s| collected.push((v, s)));
            assert_eq!(collected, ppv.entries.entries());
        }
    }

    #[test]
    fn flat_index_matches_memory_index() {
        let mut idx = MemoryIndex::new(10);
        idx.insert(3, sample_ppv(&[(1, 0.5), (2, 0.25), (7, 0.1)]));
        idx.insert(7, sample_ppv(&[(0, 0.1), (3, 0.2)]));
        idx.insert(5, sample_ppv(&[]));
        let hubs = HubSet::from_ids(10, vec![3, 5, 7]);
        let flat = FlatIndex::from_memory(&idx, &hubs);
        assert_eq!(flat.hub_count(), 3);
        assert_eq!(flat.total_entries(), 5);
        assert_eq!(flat.storage_bytes(), flat.file_bytes());
        assert!(flat.resident_bytes() > 0);
        assert_eq!(flat.mapped_bytes(), 0, "built arena is heap-resident");
        for h in [3u32, 5, 7] {
            assert!(flat.contains(h));
            assert_eq!(flat.load(h).unwrap(), *idx.get(h).unwrap(), "hub {h}");
        }
        assert!(!flat.contains(4));
        assert!(flat.view(4).is_none());
    }

    #[test]
    fn flat_index_border_sublist_points_at_hub_entries() {
        let mut idx = MemoryIndex::new(10);
        idx.insert(2, sample_ppv(&[(1, 0.5), (4, 0.3), (6, 0.2), (9, 0.1)]));
        idx.insert(4, sample_ppv(&[(2, 0.7)]));
        let hubs = HubSet::from_ids(10, vec![2, 4, 9]);
        let flat = FlatIndex::from_memory(&idx, &hubs);
        let (bids, bpos) = flat.border_sublist(2).unwrap();
        assert_eq!(bids, &[4, 9]);
        let view = flat.view(2).unwrap();
        let borders: Vec<(NodeId, f64)> = bids
            .iter()
            .zip(bpos)
            .map(|(&id, &p)| (id, view.score_at(p as usize)))
            .collect();
        let expected: Vec<(NodeId, f64)> = idx.get(2).unwrap().border_hubs(&hubs).collect();
        assert_eq!(borders, expected);
        // Non-hub-entry segments have empty sublists.
        let (bids4, _) = flat.border_sublist(4).unwrap();
        assert_eq!(bids4, &[2]);
    }

    #[test]
    fn flat_replace_tombstones_then_compacts() {
        let mut idx = MemoryIndex::new(10);
        idx.insert(1, sample_ppv(&[(2, 0.5), (3, 0.25)]));
        idx.insert(2, sample_ppv(&[(1, 0.5)]));
        let hubs = HubSet::from_ids(10, vec![1, 2]);
        let mut flat = FlatIndex::from_memory(&idx, &hubs);
        assert_eq!(flat.dead_entries(), 0);
        flat.replace(1, &sample_ppv(&[(2, 0.9), (5, 0.05)]), &hubs);
        // 2 of 5 arena entries are dead (40% > 30%): compaction fired.
        assert_eq!(flat.dead_entries(), 0, "threshold crossed, compacted");
        assert_eq!(flat.total_entries(), 3);
        assert_eq!(
            flat.load(1).unwrap().entries.entries(),
            &[(2, 0.9), (5, 0.05)]
        );
        assert_eq!(flat.load(2).unwrap().entries.entries(), &[(1, 0.5)]);
        // Border sublists survive the patch + compaction.
        let (bids, _) = flat.border_sublist(1).unwrap();
        assert_eq!(bids, &[2]);
    }

    #[test]
    fn flat_replace_below_threshold_keeps_tombstones() {
        let mut idx = MemoryIndex::new(20);
        let big: Vec<(NodeId, f64)> = (0..15).map(|v| (v, 0.01)).collect();
        idx.insert(1, sample_ppv(&big));
        idx.insert(2, sample_ppv(&[(3, 0.5)]));
        let hubs = HubSet::from_ids(20, vec![1, 2]);
        let mut flat = FlatIndex::from_memory(&idx, &hubs);
        flat.replace(2, &sample_ppv(&[(4, 0.25)]), &hubs);
        // 1 dead of 17 total: below the 30% threshold, tombstone retained.
        assert_eq!(flat.dead_entries(), 1);
        assert_eq!(flat.total_entries(), 16);
        assert_eq!(flat.load(2).unwrap().entries.entries(), &[(4, 0.25)]);
        flat.compact();
        assert_eq!(flat.dead_entries(), 0);
        assert_eq!(flat.load(2).unwrap().entries.entries(), &[(4, 0.25)]);
    }

    #[test]
    fn flat_insert_appends_new_hub() {
        let hubs = HubSet::from_ids(10, vec![1, 6]);
        let mut flat = FlatIndex::new(10);
        flat.insert(1, &sample_ppv(&[(0, 0.5), (6, 0.1)]), &hubs);
        flat.insert(6, &sample_ppv(&[(1, 0.3)]), &hubs);
        assert_eq!(flat.hub_count(), 2);
        assert_eq!(flat.border_sublist(1).unwrap().0, &[6]);
        assert_eq!(flat.load(6).unwrap().entries.entries(), &[(1, 0.3)]);
    }

    #[test]
    fn arena_file_round_trips_bit_exact() {
        let mut idx = MemoryIndex::new(100);
        idx.insert(42, sample_ppv(&[(0, 0.125), (42, 0.5), (99, 0.0625)]));
        idx.insert(7, sample_ppv(&[(7, 1.0)]));
        idx.insert(9, sample_ppv(&[]));
        let hubs = HubSet::from_ids(100, vec![7, 9, 42]);
        let mut flat = FlatIndex::from_memory(&idx, &hubs);
        flat.set_budget_spent(42, 0.0042);
        let path = temp_path("arena.fppv");
        flat.write_to_file(&path).unwrap();
        assert_eq!(
            std::fs::metadata(&path).unwrap().len() as usize,
            flat.file_bytes(),
            "file_bytes must predict the serialized size exactly"
        );
        let opened = FlatIndex::open(&path).unwrap();
        assert_eq!(opened.hub_count(), 3);
        assert_eq!(opened.capacity(), 100);
        assert_eq!(opened.total_entries(), flat.total_entries());
        for h in [7u32, 9, 42] {
            // Bit-exact: scores are stored as raw f64, never quantized.
            assert_eq!(
                opened.load(h).unwrap().entries.entries(),
                flat.load(h).unwrap().entries.entries(),
                "hub {h}"
            );
            assert_eq!(opened.border_sublist(h), flat.border_sublist(h));
            assert_eq!(opened.budget_spent(h), flat.budget_spent(h));
        }
        assert_eq!(opened.budget_spent(42), 0.0042, "spend survives reopen");
        assert!(!opened.contains(8));
        // The reopened arena is file-backed: mapped (or, if mmap was
        // unavailable, heap-fallback) rather than deep-copied.
        assert!(opened.resident_bytes() + opened.mapped_bytes() > 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn arena_writer_is_independent_of_tombstone_state() {
        let hubs = HubSet::from_ids(50, vec![1, 2, 3]);
        let mut a = FlatIndex::new(50);
        a.insert(1, &sample_ppv(&[(2, 0.5), (9, 0.1)]), &hubs);
        a.insert(2, &sample_ppv(&[(1, 0.25)]), &hubs);
        a.insert(3, &sample_ppv(&[(4, 0.125)]), &hubs);
        let mut b = a.clone();
        // Dirty b's chunk layout: replace forces a tombstone + fresh chunk.
        b.replace(2, &sample_ppv(&[(1, 0.25)]), &hubs);
        let (pa, pb) = (temp_path("ser-a.fppv"), temp_path("ser-b.fppv"));
        a.write_to_file(&pa).unwrap();
        b.write_to_file(&pb).unwrap();
        assert_eq!(
            std::fs::read(&pa).unwrap(),
            std::fs::read(&pb).unwrap(),
            "equal logical content must serialize byte-identically"
        );
        std::fs::remove_file(&pa).unwrap();
        std::fs::remove_file(&pb).unwrap();
    }

    #[test]
    fn flat_from_store_round_trips_disk() {
        let mut idx = MemoryIndex::new(50);
        idx.insert(10, sample_ppv(&[(1, 0.5), (20, 0.25)]));
        idx.insert(20, sample_ppv(&[(10, 0.125)]));
        let path = temp_path("fromstore.idx");
        idx.write_to_file(&path).unwrap();
        let disk = DiskIndex::open(&path, 4).unwrap();
        let hubs = HubSet::from_ids(50, disk.hub_ids());
        let flat = FlatIndex::from_store(50, &disk, &disk.hub_ids(), &hubs);
        assert_eq!(flat.hub_count(), 2);
        for h in [10u32, 20] {
            assert_eq!(flat.load(h).unwrap(), *disk.get(h).unwrap(), "hub {h}");
        }
        assert_eq!(flat.border_sublist(10).unwrap().0, &[20]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn disk_round_trip() {
        let mut idx = MemoryIndex::new(100);
        idx.insert(42, sample_ppv(&[(0, 0.125), (42, 0.5), (99, 0.0625)]));
        idx.insert(7, sample_ppv(&[(7, 1.0)]));
        idx.insert(0, sample_ppv(&[]));
        let path = temp_path("roundtrip.idx");
        idx.write_to_file(&path).unwrap();
        let disk = DiskIndex::open(&path, 8).unwrap();
        assert_eq!(disk.hub_count(), 3);
        assert_eq!(disk.total_entries(), 4);
        for h in [0u32, 7, 42] {
            let mem = idx.get(h).unwrap();
            let dsk = disk.get(h).unwrap();
            assert_eq!(mem.len(), dsk.len());
            for (&(a, sa), &(b, sb)) in mem.entries.entries().iter().zip(dsk.entries.entries()) {
                assert_eq!(a, b);
                assert!((sa - sb).abs() < 1e-7); // f32 quantization
            }
        }
        assert!(disk.get(1).is_none());
        assert!(disk.view(1).is_none());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn disk_cache_avoids_rereads() {
        let mut idx = MemoryIndex::new(10);
        idx.insert(1, sample_ppv(&[(1, 0.5)]));
        idx.insert(2, sample_ppv(&[(2, 0.5)]));
        let path = temp_path("cache.idx");
        idx.write_to_file(&path).unwrap();
        let disk = DiskIndex::open(&path, 1).unwrap();
        disk.get(1).unwrap();
        disk.get(1).unwrap();
        assert_eq!(disk.disk_reads(), 1, "second get must hit the cache");
        disk.get(2).unwrap(); // evicts 1 (capacity 1)
        disk.get(1).unwrap();
        assert_eq!(disk.disk_reads(), 3);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn open_rejects_garbage() {
        let path = temp_path("garbage.idx");
        std::fs::write(&path, b"definitely not an index file").unwrap();
        let err = match DiskIndex::open(&path, 1) {
            Ok(_) => panic!("garbage accepted"),
            Err(e) => e,
        };
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn open_rejects_truncated_file() {
        let mut idx = MemoryIndex::new(10);
        idx.insert(1, sample_ppv(&[(1, 0.5), (3, 0.25)]));
        idx.insert(2, sample_ppv(&[(0, 0.125)]));
        let path = temp_path("truncated.idx");
        idx.write_to_file(&path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        // Cut the file mid-blob: the directory then points past EOF.
        std::fs::write(&path, &bytes[..bytes.len() - 6]).unwrap();
        let err = match DiskIndex::open(&path, 1) {
            Ok(_) => panic!("truncated file accepted"),
            Err(e) => e,
        };
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn open_rejects_absurd_hub_count() {
        // A header claiming 2^40 hubs must not allocate terabytes.
        let path = temp_path("absurd.idx");
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&VERSION.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        bytes.extend_from_slice(&(1u64 << 40).to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        let err = match DiskIndex::open(&path, 1) {
            Ok(_) => panic!("absurd header accepted"),
            Err(e) => e,
        };
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn storage_bytes_matches_file_size() {
        let mut idx = MemoryIndex::new(10);
        idx.insert(1, sample_ppv(&[(1, 0.5), (3, 0.1)]));
        idx.insert(5, sample_ppv(&[(0, 0.2)]));
        let path = temp_path("size.idx");
        idx.write_to_file(&path).unwrap();
        let file_len = std::fs::metadata(&path).unwrap().len() as usize;
        assert_eq!(idx.storage_bytes(), file_len);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn border_hubs_filters_by_hub_set() {
        let ppv = sample_ppv(&[(1, 0.5), (2, 0.3), (4, 0.1)]);
        let hubs = HubSet::from_ids(5, vec![2, 4]);
        let borders: Vec<_> = ppv.border_hubs(&hubs).collect();
        assert_eq!(borders, vec![(2, 0.3), (4, 0.1)]);
    }

    #[test]
    fn disk_round_trips_budget_spend() {
        let mut idx = MemoryIndex::new(10);
        idx.insert(1, sample_ppv(&[(1, 0.5)]));
        idx.insert(2, sample_ppv(&[(2, 0.5)]));
        idx.set_budget_spent(1, 0.007);
        let path = temp_path("spend.idx");
        idx.write_to_file(&path).unwrap();
        let disk = DiskIndex::open(&path, 2).unwrap();
        assert_eq!(disk.budget_spent(1), 0.007);
        assert_eq!(disk.budget_spent(2), 0.0);
        assert_eq!(disk.budget_spent(9), 0.0, "unindexed hub");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn disk_open_rejects_version_1_with_hint() {
        let path = temp_path("v1.idx");
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        bytes.extend_from_slice(&0u64.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        let err = match DiskIndex::open(&path, 1) {
            Ok(_) => panic!("v1 header accepted"),
            Err(e) => e,
        };
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(
            err.to_string().contains("rebuild"),
            "v1 rejection must tell the operator what to do: {err}"
        );
        std::fs::remove_file(&path).unwrap();
    }

    /// A small arena used by the FPPVIDX3 failure-mode tests.
    fn sample_arena() -> (FlatIndex, HubSet) {
        let mut idx = MemoryIndex::new(30);
        idx.insert(3, sample_ppv(&[(1, 0.5), (5, 0.25), (20, 0.125)]));
        idx.insert(5, sample_ppv(&[(3, 0.3)]));
        idx.insert(20, sample_ppv(&[(2, 0.1), (5, 0.05)]));
        let hubs = HubSet::from_ids(30, vec![3, 5, 20]);
        (FlatIndex::from_memory(&idx, &hubs), hubs)
    }

    fn write_arena_bytes(name: &str, mutate: impl FnOnce(&mut Vec<u8>)) -> std::path::PathBuf {
        let (flat, _) = sample_arena();
        let path = temp_path(name);
        flat.write_to_file(&path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        mutate(&mut bytes);
        std::fs::write(&path, &bytes).unwrap();
        path
    }

    fn expect_format_error(path: &std::path::Path, what: &str) {
        match FlatIndex::open(path) {
            Ok(_) => panic!("{what}: corrupt arena accepted"),
            Err(OpenError::Format(_)) => {}
            Err(OpenError::Io(e)) => panic!("{what}: expected Format error, got Io({e})"),
        }
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn arena_open_rejects_bad_magic() {
        let path = write_arena_bytes("bad-magic.fppv", |b| b[..8].copy_from_slice(b"NOTANIDX"));
        expect_format_error(&path, "bad magic");
    }

    #[test]
    fn arena_open_rejects_bad_version() {
        let path = write_arena_bytes("bad-version.fppv", |b| {
            b[8..12].copy_from_slice(&9u32.to_le_bytes())
        });
        expect_format_error(&path, "bad version");
    }

    #[test]
    fn arena_open_rejects_truncation() {
        let path = write_arena_bytes("truncated.fppv", |b| b.truncate(b.len() - 9));
        expect_format_error(&path, "truncated body");
        let path = write_arena_bytes("beheaded.fppv", |b| b.truncate(40));
        expect_format_error(&path, "truncated header");
    }

    #[test]
    fn arena_open_rejects_offset_tampering() {
        // Shift the scores section offset: sections would overlap.
        let path = write_arena_bytes("overlap.fppv", |b| {
            let off = 16 + 7 * 8; // scores_off header word
            let v = u64::from_le_bytes(b[off..off + 8].try_into().unwrap());
            b[off..off + 8].copy_from_slice(&(v - 8).to_le_bytes());
        });
        expect_format_error(&path, "overlapping sections");
    }

    #[test]
    fn arena_open_rejects_absurd_node_count() {
        let path = write_arena_bytes("absurd-nodes.fppv", |b| {
            b[16..24].copy_from_slice(&(1u64 << 40).to_le_bytes());
        });
        expect_format_error(&path, "absurd node count");
    }

    #[test]
    fn arena_open_rejects_unsorted_directory() {
        let path = write_arena_bytes("unsorted-dir.fppv", |b| {
            // Swap the hub ids of the first two directory records.
            let d0 = FLAT_HEADER_LEN;
            let d1 = FLAT_HEADER_LEN + FLAT_DIR_RECORD_LEN;
            let (h0, h1) = (
                u32::from_le_bytes(b[d0..d0 + 4].try_into().unwrap()),
                u32::from_le_bytes(b[d1..d1 + 4].try_into().unwrap()),
            );
            b[d0..d0 + 4].copy_from_slice(&h1.to_le_bytes());
            b[d1..d1 + 4].copy_from_slice(&h0.to_le_bytes());
        });
        expect_format_error(&path, "unsorted directory");
    }

    #[test]
    fn arena_open_rejects_loose_packing() {
        let path = write_arena_bytes("loose-dir.fppv", |b| {
            // Bump the second record's entry_start so segments overlap.
            let off = FLAT_HEADER_LEN + FLAT_DIR_RECORD_LEN + 16;
            let v = u64::from_le_bytes(b[off..off + 8].try_into().unwrap());
            b[off..off + 8].copy_from_slice(&(v + 1).to_le_bytes());
        });
        expect_format_error(&path, "loose packing");
    }

    #[test]
    fn arena_open_rejects_out_of_range_border_pos() {
        let (flat, _) = sample_arena();
        let layout_border_pos_off = {
            // Recompute the layout the same way the writer does.
            let num_border: u64 = (0..flat.hub_count())
                .map(|s| flat.segs[s].border_len as u64)
                .sum();
            ArenaLayout::compute(30, 3, flat.total_entries() as u64, num_border)
                .unwrap()
                .border_pos_off as usize
        };
        let path = write_arena_bytes("bad-bpos.fppv", |b| {
            b[layout_border_pos_off..layout_border_pos_off + 4]
                .copy_from_slice(&1000u32.to_le_bytes());
        });
        expect_format_error(&path, "border position out of range");
    }

    #[test]
    fn arena_clone_is_shallow_and_isolated() {
        let (flat, hubs) = sample_arena();
        let mut next = flat.clone();
        assert_eq!(
            next.shared_chunk_count(&flat),
            flat.chunk_count(),
            "clone shares every chunk"
        );
        let before: Vec<_> = flat.load(5).unwrap().entries.entries().to_vec();
        next.replace(5, &sample_ppv(&[(9, 0.9)]), &hubs);
        assert_eq!(
            flat.load(5).unwrap().entries.entries(),
            &before[..],
            "mutating the clone must not write through shared chunks"
        );
        assert_eq!(next.load(5).unwrap().entries.entries(), &[(9, 0.9)]);
        assert_eq!(
            flat.bytes_cloned(),
            0,
            "tombstone patches never deep-copy chunks"
        );
    }

    #[test]
    fn multi_chunk_arena_round_trips_and_compacts() {
        let n = FlatIndex::CHUNK_ENTRIES / 2;
        let mut idx = MemoryIndex::new(200_000);
        let hub_list: Vec<NodeId> = (0..6).map(|i| i * 30_000).collect();
        for &h in &hub_list {
            let entries: Vec<(NodeId, f64)> = (0..n)
                .map(|i| (h + i as NodeId + 1, 1.0 / (i + 2) as f64))
                .collect();
            idx.insert(h, sample_ppv(&entries));
        }
        let hubs = HubSet::from_ids(200_000, hub_list.clone());
        let flat = FlatIndex::from_memory(&idx, &hubs);
        assert!(
            flat.chunk_count() >= 2,
            "6×{n} entries must span multiple chunks (got {})",
            flat.chunk_count()
        );
        let path = temp_path("multichunk.fppv");
        flat.write_to_file(&path).unwrap();
        let opened = FlatIndex::open(&path).unwrap();
        assert!(opened.chunk_count() >= 2);
        for &h in &hub_list {
            assert_eq!(
                opened.load(h).unwrap().entries.entries(),
                flat.load(h).unwrap().entries.entries(),
                "hub {h}"
            );
        }
        // Replacing a segment of the mapped arena seals, never mutates the
        // mapping; compaction then pulls everything back onto the heap.
        let mut patched = opened.clone();
        patched.replace(0, &sample_ppv(&[(1, 0.5)]), &hubs);
        assert_eq!(opened.load(0).unwrap().len(), n);
        patched.compact();
        assert_eq!(patched.mapped_bytes(), 0, "compaction releases the file");
        assert!(patched.bytes_cloned() > 0, "compaction is metered");
        assert_eq!(patched.load(3 * 30_000).unwrap().len(), n);
        std::fs::remove_file(&path).unwrap();
    }
}
