//! The PPV index: precomputed prime PPVs of hub nodes (paper §5.1).
//!
//! Three interchangeable stores implement [`PpvStore`]:
//!
//! * [`FlatIndex`] — one contiguous structure-of-arrays arena (`ids` /
//!   `scores` slices per hub plus a precomputed border-hub sublist), the
//!   zero-copy hot path of the online engine;
//! * [`MemoryIndex`] — a slot map of per-hub [`PrimePpv`]s, the mutable
//!   build-time representation (convert with [`FlatIndex::from_memory`]);
//! * [`DiskIndex`] — a file-backed store with a per-hub directory for O(1)
//!   random access and a small FIFO read cache, used by the disk-resident
//!   experiments (§5.3 / §6.4.2).
//!
//! ## The zero-copy store contract
//!
//! Reads go through [`PpvStore::view`], which returns a borrowed
//! [`PpvRef`] — no `Arc` refcount traffic, no cloning, no allocation on the
//! in-memory paths. Stores that must materialize on a miss (the disk
//! stores) return the [`PpvRef::Owned`] fallback, which carries an `Arc`
//! from their read cache. Code that genuinely needs an owned copy calls
//! [`PpvStore::load`].
//!
//! The on-disk format (`FPPVIDX1`) is a hand-rolled little-endian layout:
//!
//! ```text
//! magic "FPPVIDX1" | u32 version | u32 flags | u64 num_hubs
//! directory: num_hubs × { u32 hub_id, u64 offset, u32 num_entries }
//! data:      per hub { num_entries × (u32 node, f32 score) }
//! ```
//!
//! Scores are stored as `f32`: entries are clipped at 1e-4 anyway (§6), so
//! the ~1e-7 relative quantization error is far below the approximation
//! error budget.

use std::collections::HashMap;
use std::fs::File;
use std::io::{self, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use fastppv_graph::{NodeId, SparseVector};

use crate::hubs::HubSet;

/// A stored prime PPV: the trivial-tour-excluded reachabilities `r̊⁰_v`
/// (see [`crate::prime`] for why the empty tour is excluded).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PrimePpv {
    /// Sparse reachability entries, sorted by node id.
    pub entries: SparseVector,
}

impl PrimePpv {
    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether there are no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The hub entries (expansion candidates of the next iteration).
    pub fn border_hubs<'a>(&'a self, hubs: &'a HubSet) -> impl Iterator<Item = (NodeId, f64)> + 'a {
        self.entries
            .entries()
            .iter()
            .copied()
            .filter(move |&(v, _)| hubs.is_hub(v))
    }
}

/// A borrowed view of one stored prime PPV — the unit of the zero-copy
/// store contract (see the module docs).
///
/// The borrowed variants alias the store's own memory; the `Owned` variant
/// exists for stores that materialize on a miss (disk-backed reads).
#[derive(Clone, Debug)]
pub enum PpvRef<'a> {
    /// Structure-of-arrays slices into a [`FlatIndex`] arena.
    Soa {
        /// Entry node ids, ascending.
        ids: &'a [NodeId],
        /// Scores, parallel to `ids`.
        scores: &'a [f64],
    },
    /// Array-of-structs entries borrowed from a [`MemoryIndex`] slot.
    Aos(&'a [(NodeId, f64)]),
    /// Materialized fallback (disk stores): shared with the read cache.
    Owned(Arc<PrimePpv>),
}

impl PpvRef<'_> {
    /// Number of entries.
    pub fn len(&self) -> usize {
        match self {
            PpvRef::Soa { ids, .. } => ids.len(),
            PpvRef::Aos(entries) => entries.len(),
            PpvRef::Owned(ppv) => ppv.len(),
        }
    }

    /// Whether there are no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Calls `f(node, score)` for every entry, in ascending node-id order.
    #[inline]
    pub fn for_each(&self, mut f: impl FnMut(NodeId, f64)) {
        match self {
            PpvRef::Soa { ids, scores } => {
                for (&id, &s) in ids.iter().zip(scores.iter()) {
                    f(id, s);
                }
            }
            PpvRef::Aos(entries) => {
                for &(id, s) in *entries {
                    f(id, s);
                }
            }
            PpvRef::Owned(ppv) => {
                for &(id, s) in ppv.entries.entries() {
                    f(id, s);
                }
            }
        }
    }

    /// The score at entry position `pos` (used with the border-hub
    /// sublists of [`PpvStore::border_sublist`], whose positions index
    /// into this view).
    #[inline]
    pub fn score_at(&self, pos: usize) -> f64 {
        match self {
            PpvRef::Soa { scores, .. } => scores[pos],
            PpvRef::Aos(entries) => entries[pos].1,
            PpvRef::Owned(ppv) => ppv.entries.entries()[pos].1,
        }
    }

    /// Sum of all scores.
    pub fn l1_norm(&self) -> f64 {
        let mut sum = 0.0;
        self.for_each(|_, s| sum += s);
        sum
    }

    /// Score of node `id`, or `None` if it has no entry. Binary search —
    /// the point lookup the delta-update path uses to read a changed
    /// tail's settled mass out of a stored PPV.
    pub fn score_of(&self, id: NodeId) -> Option<f64> {
        match self {
            PpvRef::Soa { ids, scores } => ids.binary_search(&id).ok().map(|pos| scores[pos]),
            PpvRef::Aos(entries) => entries
                .binary_search_by_key(&id, |&(v, _)| v)
                .ok()
                .map(|pos| entries[pos].1),
            PpvRef::Owned(ppv) => {
                let entries = ppv.entries.entries();
                entries
                    .binary_search_by_key(&id, |&(v, _)| v)
                    .ok()
                    .map(|pos| entries[pos].1)
            }
        }
    }

    /// Materializes an owned copy.
    pub fn to_prime_ppv(&self) -> PrimePpv {
        match self {
            PpvRef::Soa { ids, scores } => PrimePpv {
                entries: SparseVector::from_sorted(
                    ids.iter().copied().zip(scores.iter().copied()).collect(),
                ),
            },
            PpvRef::Aos(entries) => PrimePpv {
                entries: SparseVector::from_sorted(entries.to_vec()),
            },
            PpvRef::Owned(ppv) => PrimePpv::clone(ppv),
        }
    }
}

/// Read access to precomputed prime PPVs.
///
/// The primary read is [`PpvStore::view`] — a borrowed, clone-free
/// [`PpvRef`]. Per-query `Arc` bumps and deep copies are reserved for
/// stores that must materialize (disk reads) and for callers that opt into
/// [`PpvStore::load`].
pub trait PpvStore {
    /// A borrowed view of `hub`'s prime PPV, or `None` if not indexed.
    fn view(&self, hub: NodeId) -> Option<PpvRef<'_>>;

    /// Whether `hub` is indexed.
    fn contains(&self, hub: NodeId) -> bool;

    /// Number of indexed hubs.
    fn hub_count(&self) -> usize;

    /// Total stored entries across hubs.
    fn total_entries(&self) -> usize;

    /// The precomputed border-hub sublist of `hub`'s PPV, if this store
    /// maintains one: the hub-entry node ids plus their positions within
    /// the PPV's entry list (so `view.score_at(pos)` is the hub's score).
    /// Stores without sublists return `None` and the query engine falls
    /// back to filtering every entry through [`HubSet::is_hub`].
    fn border_sublist(&self, _hub: NodeId) -> Option<(&[NodeId], &[u32])> {
        None
    }

    /// Materializes an owned copy of `hub`'s prime PPV (convenience; not
    /// the hot path).
    fn load(&self, hub: NodeId) -> Option<PrimePpv> {
        self.view(hub).map(|v| v.to_prime_ppv())
    }

    /// Index size in bytes (on-disk layout equivalent).
    fn storage_bytes(&self) -> usize {
        HEADER_LEN + self.hub_count() * DIR_RECORD_LEN + self.total_entries() * ENTRY_LEN
    }
}

impl<S: PpvStore> PpvStore for &S {
    fn view(&self, hub: NodeId) -> Option<PpvRef<'_>> {
        (**self).view(hub)
    }
    fn contains(&self, hub: NodeId) -> bool {
        (**self).contains(hub)
    }
    fn hub_count(&self) -> usize {
        (**self).hub_count()
    }
    fn total_entries(&self) -> usize {
        (**self).total_entries()
    }
    fn border_sublist(&self, hub: NodeId) -> Option<(&[NodeId], &[u32])> {
        (**self).border_sublist(hub)
    }
}

const MAGIC: &[u8; 8] = b"FPPVIDX1";
const VERSION: u32 = 1;
const HEADER_LEN: usize = 8 + 4 + 4 + 8;
const DIR_RECORD_LEN: usize = 4 + 8 + 4;
const ENTRY_LEN: usize = 8;

/// Writes the `FPPVIDX1` layout given sorted hub ids and a per-hub entry
/// lookup. Shared by [`MemoryIndex::write_to_file`] and
/// [`FlatIndex::write_to_file`] so both serialize byte-identically.
fn write_index_file<'a, P, F>(path: P, sorted_hubs: &[NodeId], mut entries_of: F) -> io::Result<()>
where
    P: AsRef<Path>,
    F: FnMut(NodeId) -> PpvRef<'a>,
{
    let mut w = BufWriter::new(File::create(path)?);
    w.write_all(MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    w.write_all(&0u32.to_le_bytes())?;
    w.write_all(&(sorted_hubs.len() as u64).to_le_bytes())?;
    // Directory.
    let mut offset = (HEADER_LEN + sorted_hubs.len() * DIR_RECORD_LEN) as u64;
    for &h in sorted_hubs {
        let view = entries_of(h);
        w.write_all(&h.to_le_bytes())?;
        w.write_all(&offset.to_le_bytes())?;
        w.write_all(&(view.len() as u32).to_le_bytes())?;
        offset += (view.len() * ENTRY_LEN) as u64;
    }
    // Data blobs.
    for &h in sorted_hubs {
        let mut err = None;
        entries_of(h).for_each(|id, s| {
            if err.is_none() {
                err = w
                    .write_all(&id.to_le_bytes())
                    .and_then(|()| w.write_all(&(s as f32).to_le_bytes()))
                    .err();
            }
        });
        if let Some(e) = err {
            return Err(e);
        }
    }
    w.flush()
}

/// In-memory PPV index: the mutable build-time store.
#[derive(Clone, Debug, Default)]
pub struct MemoryIndex {
    slots: Vec<Option<Arc<PrimePpv>>>,
    hub_ids: Vec<NodeId>,
    total_entries: usize,
    /// Per-hub accumulated score-L1 error bound of the stored PPV relative
    /// to an exact recompute — runtime state of the delta-update path
    /// ([`crate::dynamic`]), not serialized. 0 for freshly computed PPVs.
    spent: Vec<f64>,
}

impl MemoryIndex {
    /// An empty index for graphs of `n` nodes.
    pub fn new(n: usize) -> Self {
        MemoryIndex {
            slots: vec![None; n],
            hub_ids: Vec::new(),
            total_entries: 0,
            spent: vec![0.0; n],
        }
    }

    /// Number of node slots (the graph size the index was created for).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Inserts (or replaces) the prime PPV of `hub`.
    pub fn insert(&mut self, hub: NodeId, ppv: PrimePpv) {
        self.insert_shared(hub, Arc::new(ppv));
    }

    /// Inserts (or replaces) an already-shared prime PPV without copying
    /// its entries — the sharing path of [`crate::dynamic::refresh_index`].
    pub fn insert_shared(&mut self, hub: NodeId, ppv: Arc<PrimePpv>) {
        let slot = &mut self.slots[hub as usize];
        match slot {
            Some(old) => self.total_entries -= old.len(),
            None => self.hub_ids.push(hub),
        }
        self.total_entries += ppv.len();
        *slot = Some(ppv);
        // An inserted PPV is presumed exact; the delta refresh path
        // re-applies a carried-over budget via `set_budget_spent`.
        self.spent[hub as usize] = 0.0;
    }

    /// Accumulated error-budget spend of `hub`'s stored PPV (score-L1
    /// bound vs an exact recompute; see [`crate::dynamic`]).
    pub fn budget_spent(&self, hub: NodeId) -> f64 {
        self.spent.get(hub as usize).copied().unwrap_or(0.0)
    }

    /// Sets `hub`'s accumulated error-budget spend (delta refresh only).
    pub fn set_budget_spent(&mut self, hub: NodeId, spent: f64) {
        self.spent[hub as usize] = spent;
    }

    /// Largest per-hub budget spend in the index — the watermark reported
    /// by [`crate::dynamic::RefreshStats`].
    pub fn budget_watermark(&self) -> f64 {
        self.hub_ids
            .iter()
            .map(|&h| self.spent[h as usize])
            .fold(0.0, f64::max)
    }

    /// The stored prime PPV of `hub`, borrowed (no refcount traffic).
    pub fn get(&self, hub: NodeId) -> Option<&PrimePpv> {
        self.slots.get(hub as usize).and_then(|s| s.as_deref())
    }

    /// The stored prime PPV of `hub` as a shared handle (for callers that
    /// retain it past the index borrow, e.g. index refresh reuse).
    pub fn get_shared(&self, hub: NodeId) -> Option<Arc<PrimePpv>> {
        self.slots.get(hub as usize).and_then(|s| s.clone())
    }

    /// Indexed hub ids, in insertion order.
    pub fn hub_ids(&self) -> &[NodeId] {
        &self.hub_ids
    }

    /// Serializes the index to the `FPPVIDX1` format.
    pub fn write_to_file<P: AsRef<Path>>(&self, path: P) -> io::Result<()> {
        let mut sorted_hubs = self.hub_ids.clone();
        sorted_hubs.sort_unstable();
        write_index_file(path, &sorted_hubs, |h| {
            PpvRef::Aos(
                self.slots[h as usize]
                    .as_ref()
                    .expect("indexed hub")
                    .entries
                    .entries(),
            )
        })
    }
}

impl PpvStore for MemoryIndex {
    fn view(&self, hub: NodeId) -> Option<PpvRef<'_>> {
        self.slots
            .get(hub as usize)
            .and_then(|s| s.as_deref())
            .map(|ppv| PpvRef::Aos(ppv.entries.entries()))
    }

    fn contains(&self, hub: NodeId) -> bool {
        self.slots.get(hub as usize).is_some_and(|s| s.is_some())
    }

    fn hub_count(&self) -> usize {
        self.hub_ids.len()
    }

    fn total_entries(&self) -> usize {
        self.total_entries
    }
}

/// Sentinel for "node is not an indexed hub" in [`FlatIndex::slot_of`].
const NO_SLOT: u32 = u32::MAX;

/// The flat structure-of-arrays PPV index — the online hot path.
///
/// All entries live in one contiguous arena (`ids` / `scores`, parallel
/// arrays); a per-hub directory (`starts` / `lens`) carves it into
/// segments, and a second arena holds each segment's precomputed
/// *border-hub sublist*: the positions of the entries that are themselves
/// hubs, so the query engine's `step()` walks only the expansion
/// candidates instead of filtering every entry through a hub mask.
///
/// Reads are zero-copy: [`PpvStore::view`] returns slices into the arena.
///
/// ## Dynamic updates
///
/// [`FlatIndex::replace`] patches a segment by tombstoning the old one and
/// appending the new entries at the arena tail (so readers holding other
/// segments see stable memory and the patch is O(new segment)). When dead
/// entries exceed [`FlatIndex::COMPACTION_THRESHOLD`] of the arena the
/// whole arena is compacted in one pass.
#[derive(Clone, Debug)]
pub struct FlatIndex {
    /// node id → directory slot (or [`NO_SLOT`]).
    slot_of: Vec<u32>,
    /// slot → hub id.
    hub_ids: Vec<NodeId>,
    /// slot → arena start of the hub's segment.
    starts: Vec<u64>,
    /// slot → segment length (entries).
    lens: Vec<u32>,
    /// Entry node ids, all segments concatenated.
    ids: Vec<NodeId>,
    /// Entry scores, parallel to `ids`.
    scores: Vec<f64>,
    /// slot → start into the border arena.
    border_starts: Vec<u64>,
    /// slot → border sublist length.
    border_lens: Vec<u32>,
    /// Border-hub node ids.
    border_ids: Vec<NodeId>,
    /// Border-hub positions *within the owning segment* (indexes into the
    /// segment's `ids`/`scores` slices).
    border_pos: Vec<u32>,
    /// Live (non-tombstoned) arena entries.
    live_entries: usize,
    /// Tombstoned arena entries awaiting compaction.
    dead_entries: usize,
    /// Compactions performed over the arena's lifetime.
    compactions: u64,
    /// slot → accumulated score-L1 error bound of the segment relative to
    /// an exact recompute — runtime state of the delta-update path
    /// ([`crate::dynamic`]), not serialized. 0 for freshly built segments.
    spent: Vec<f64>,
}

impl FlatIndex {
    /// Dead-entry fraction of the arena that triggers compaction on the
    /// next [`FlatIndex::replace`].
    pub const COMPACTION_THRESHOLD: f64 = 0.3;

    /// An empty arena for graphs of `n` nodes.
    pub fn new(n: usize) -> Self {
        FlatIndex {
            slot_of: vec![NO_SLOT; n],
            hub_ids: Vec::new(),
            starts: Vec::new(),
            lens: Vec::new(),
            ids: Vec::new(),
            scores: Vec::new(),
            border_starts: Vec::new(),
            border_lens: Vec::new(),
            border_ids: Vec::new(),
            border_pos: Vec::new(),
            live_entries: 0,
            dead_entries: 0,
            compactions: 0,
            spent: Vec::new(),
        }
    }

    /// Builds the arena from a [`MemoryIndex`] (hubs laid out in ascending
    /// hub-id order, so two builds from equal inputs are byte-identical).
    pub fn from_memory(index: &MemoryIndex, hubs: &HubSet) -> Self {
        let mut sorted: Vec<NodeId> = index.hub_ids().to_vec();
        sorted.sort_unstable();
        let mut flat = FlatIndex::new(index.capacity());
        flat.ids.reserve_exact(index.total_entries());
        flat.scores.reserve_exact(index.total_entries());
        for h in sorted {
            let ppv = index.get(h).expect("indexed hub");
            flat.append_segment(h, &PpvRef::Aos(ppv.entries.entries()), hubs);
        }
        flat
    }

    /// Builds the arena from any store (e.g. a [`DiskIndex`], to pull a
    /// file-resident index into the zero-copy layout). Hubs are laid out
    /// in the order given.
    pub fn from_store<S: PpvStore>(n: usize, store: &S, hub_ids: &[NodeId], hubs: &HubSet) -> Self {
        let mut flat = FlatIndex::new(n);
        flat.ids.reserve_exact(store.total_entries());
        flat.scores.reserve_exact(store.total_entries());
        for &h in hub_ids {
            let view = store.view(h).expect("hub listed but not stored");
            flat.append_segment(h, &view, hubs);
        }
        flat
    }

    /// Appends a brand-new segment for `hub` (which must not be indexed
    /// yet — use [`FlatIndex::replace`] to patch an existing hub).
    pub fn insert(&mut self, hub: NodeId, ppv: &PrimePpv, hubs: &HubSet) {
        assert!(
            self.slot_of[hub as usize] == NO_SLOT,
            "hub {hub} already indexed (use replace)"
        );
        self.append_segment(hub, &PpvRef::Aos(ppv.entries.entries()), hubs);
    }

    /// Replaces `hub`'s prime PPV: tombstone-and-append, then compaction
    /// once the dead fraction crosses [`FlatIndex::COMPACTION_THRESHOLD`].
    pub fn replace(&mut self, hub: NodeId, ppv: &PrimePpv, hubs: &HubSet) {
        self.replace_entries(hub, ppv.entries.entries(), hubs);
    }

    /// [`FlatIndex::replace`] over a raw sorted entry slice — the
    /// delta-update path patches segments from its merge scratch without
    /// materializing a [`PrimePpv`]. Resets the slot's budget spend to 0;
    /// delta patches re-apply theirs via [`FlatIndex::set_budget_spent`].
    pub fn replace_entries(&mut self, hub: NodeId, entries: &[(NodeId, f64)], hubs: &HubSet) {
        let view = PpvRef::Aos(entries);
        let slot = self.slot_of[hub as usize];
        if slot == NO_SLOT {
            self.append_segment(hub, &view, hubs);
            return;
        }
        let slot = slot as usize;
        // Tombstone the old segment (its arena range is simply abandoned).
        let old_len = self.lens[slot] as usize;
        self.live_entries -= old_len;
        self.dead_entries += old_len;
        // Append the new segment and point the directory at it.
        let (start, border_start, n_border) = self.push_segment_data(&view, hubs);
        self.starts[slot] = start;
        self.lens[slot] = view.len() as u32;
        self.border_starts[slot] = border_start;
        self.border_lens[slot] = n_border;
        self.spent[slot] = 0.0;
        if (self.dead_entries as f64)
            > Self::COMPACTION_THRESHOLD * (self.live_entries + self.dead_entries) as f64
        {
            self.compact();
        }
    }

    /// Rewrites the arena without tombstoned segments (ascending hub-id
    /// order, the same layout a fresh [`FlatIndex::from_memory`] build
    /// produces).
    pub fn compact(&mut self) {
        let mut sorted: Vec<NodeId> = self.hub_ids.clone();
        sorted.sort_unstable();
        let mut ids = Vec::with_capacity(self.live_entries);
        let mut scores = Vec::with_capacity(self.live_entries);
        let mut border_ids = Vec::with_capacity(self.border_ids.len());
        let mut border_pos = Vec::with_capacity(self.border_pos.len());
        let mut starts = vec![0u64; self.starts.len()];
        let mut border_starts = vec![0u64; self.border_starts.len()];
        for &h in &sorted {
            let slot = self.slot_of[h as usize] as usize;
            let (s, l) = (self.starts[slot] as usize, self.lens[slot] as usize);
            starts[slot] = ids.len() as u64;
            ids.extend_from_slice(&self.ids[s..s + l]);
            scores.extend_from_slice(&self.scores[s..s + l]);
            let (bs, bl) = (
                self.border_starts[slot] as usize,
                self.border_lens[slot] as usize,
            );
            border_starts[slot] = border_ids.len() as u64;
            border_ids.extend_from_slice(&self.border_ids[bs..bs + bl]);
            border_pos.extend_from_slice(&self.border_pos[bs..bs + bl]);
        }
        self.ids = ids;
        self.scores = scores;
        self.border_ids = border_ids;
        self.border_pos = border_pos;
        self.starts = starts;
        self.border_starts = border_starts;
        self.dead_entries = 0;
        self.compactions += 1;
    }

    /// Appends a fresh directory slot for `hub` backed by a new arena
    /// segment.
    fn append_segment(&mut self, hub: NodeId, view: &PpvRef<'_>, hubs: &HubSet) {
        let slot = self.hub_ids.len() as u32;
        self.slot_of[hub as usize] = slot;
        self.hub_ids.push(hub);
        let (start, border_start, n_border) = self.push_segment_data(view, hubs);
        self.starts.push(start);
        self.lens.push(view.len() as u32);
        self.border_starts.push(border_start);
        self.border_lens.push(n_border);
        self.spent.push(0.0);
    }

    /// Copies one segment's entries (and its border-hub sublist) to the
    /// arena tail — the single place the segment encoding is written.
    /// Returns `(start, border_start, n_border)` for the directory.
    fn push_segment_data(&mut self, view: &PpvRef<'_>, hubs: &HubSet) -> (u64, u64, u32) {
        let start = self.ids.len() as u64;
        let border_start = self.border_ids.len() as u64;
        let mut n_border = 0u32;
        view.for_each(|id, s| {
            if hubs.is_hub(id) {
                self.border_ids.push(id);
                self.border_pos.push((self.ids.len() as u64 - start) as u32);
                n_border += 1;
            }
            self.ids.push(id);
            self.scores.push(s);
        });
        self.live_entries += view.len();
        (start, border_start, n_border)
    }

    /// Indexed hub ids, in slot order (insertion order).
    pub fn hub_ids(&self) -> &[NodeId] {
        &self.hub_ids
    }

    /// Number of node slots (the graph size the arena was created for).
    pub fn capacity(&self) -> usize {
        self.slot_of.len()
    }

    /// Tombstoned arena entries currently awaiting compaction.
    pub fn dead_entries(&self) -> usize {
        self.dead_entries
    }

    /// Compactions performed over the arena's lifetime.
    pub fn compactions(&self) -> u64 {
        self.compactions
    }

    /// Accumulated error-budget spend of `hub`'s segment (score-L1 bound
    /// vs an exact recompute; see [`crate::dynamic`]).
    pub fn budget_spent(&self, hub: NodeId) -> f64 {
        match self.slot_of.get(hub as usize) {
            Some(&slot) if slot != NO_SLOT => self.spent[slot as usize],
            _ => 0.0,
        }
    }

    /// Sets `hub`'s accumulated error-budget spend (delta refresh only).
    pub fn set_budget_spent(&mut self, hub: NodeId, spent: f64) {
        let slot = self.slot_of[hub as usize];
        assert!(slot != NO_SLOT, "hub {hub} not indexed");
        self.spent[slot as usize] = spent;
    }

    /// Largest per-hub budget spend in the arena — the watermark reported
    /// by [`crate::dynamic::RefreshStats`].
    pub fn budget_watermark(&self) -> f64 {
        self.spent.iter().copied().fold(0.0, f64::max)
    }

    /// Bytes resident in the arena arrays (including tombstoned segments
    /// and the border sublists) — the in-RAM figure, as opposed to the
    /// on-disk-equivalent [`PpvStore::storage_bytes`].
    pub fn arena_bytes(&self) -> usize {
        self.ids.len() * std::mem::size_of::<NodeId>()
            + self.scores.len() * std::mem::size_of::<f64>()
            + self.border_ids.len() * std::mem::size_of::<NodeId>()
            + self.border_pos.len() * std::mem::size_of::<u32>()
            + self.starts.len() * (8 + 4 + 8 + 4)
            + self.slot_of.len() * 4
    }

    /// Serializes to the `FPPVIDX1` format (byte-identical to a
    /// [`MemoryIndex`] holding the same PPVs).
    pub fn write_to_file<P: AsRef<Path>>(&self, path: P) -> io::Result<()> {
        let mut sorted = self.hub_ids.clone();
        sorted.sort_unstable();
        write_index_file(path, &sorted, |h| self.view(h).expect("indexed hub"))
    }
}

impl PpvStore for FlatIndex {
    #[inline]
    fn view(&self, hub: NodeId) -> Option<PpvRef<'_>> {
        let slot = *self.slot_of.get(hub as usize)?;
        if slot == NO_SLOT {
            return None;
        }
        let slot = slot as usize;
        let (start, len) = (self.starts[slot] as usize, self.lens[slot] as usize);
        Some(PpvRef::Soa {
            ids: &self.ids[start..start + len],
            scores: &self.scores[start..start + len],
        })
    }

    fn contains(&self, hub: NodeId) -> bool {
        self.slot_of
            .get(hub as usize)
            .is_some_and(|&s| s != NO_SLOT)
    }

    fn hub_count(&self) -> usize {
        self.hub_ids.len()
    }

    fn total_entries(&self) -> usize {
        self.live_entries
    }

    #[inline]
    fn border_sublist(&self, hub: NodeId) -> Option<(&[NodeId], &[u32])> {
        let slot = *self.slot_of.get(hub as usize)?;
        if slot == NO_SLOT {
            return None;
        }
        let slot = slot as usize;
        let (start, len) = (
            self.border_starts[slot] as usize,
            self.border_lens[slot] as usize,
        );
        Some((
            &self.border_ids[start..start + len],
            &self.border_pos[start..start + len],
        ))
    }
}

/// A bounded FIFO read cache (approximates LRU without per-hit bookkeeping).
struct FifoCache {
    map: HashMap<NodeId, Arc<PrimePpv>>,
    order: std::collections::VecDeque<NodeId>,
    capacity: usize,
}

impl FifoCache {
    fn new(capacity: usize) -> Self {
        FifoCache {
            map: HashMap::with_capacity(capacity),
            order: std::collections::VecDeque::with_capacity(capacity),
            capacity,
        }
    }

    fn get(&self, hub: NodeId) -> Option<Arc<PrimePpv>> {
        self.map.get(&hub).cloned()
    }

    fn put(&mut self, hub: NodeId, ppv: Arc<PrimePpv>) {
        if self.capacity == 0 || self.map.contains_key(&hub) {
            return;
        }
        if self.map.len() >= self.capacity {
            if let Some(old) = self.order.pop_front() {
                self.map.remove(&old);
            }
        }
        self.map.insert(hub, ppv);
        self.order.push_back(hub);
    }
}

/// File-backed PPV index with a per-hub directory and a FIFO read cache.
pub struct DiskIndex {
    file: Mutex<File>,
    directory: HashMap<NodeId, (u64, u32)>,
    total_entries: usize,
    cache: Mutex<FifoCache>,
    reads: AtomicU64,
}

impl DiskIndex {
    /// Opens an index written by [`MemoryIndex::write_to_file`].
    ///
    /// `cache_capacity` bounds the number of prime PPVs kept in memory.
    pub fn open<P: AsRef<Path>>(path: P, cache_capacity: usize) -> io::Result<Self> {
        let mut file = File::open(path)?;
        let mut header = [0u8; HEADER_LEN];
        file.read_exact(&mut header)?;
        if &header[..8] != MAGIC {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "not a FastPPV index (bad magic)",
            ));
        }
        let version = u32::from_le_bytes(header[8..12].try_into().unwrap());
        if version != VERSION {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unsupported index version {version}"),
            ));
        }
        let num_hubs = u64::from_le_bytes(header[16..24].try_into().unwrap()) as usize;
        let file_len = file.metadata()?.len();
        let dir_len = (num_hubs as u64).checked_mul(DIR_RECORD_LEN as u64);
        if dir_len.is_none_or(|d| HEADER_LEN as u64 + d > file_len) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "index directory exceeds file size (corrupt header)",
            ));
        }
        let mut dir_bytes = vec![0u8; num_hubs * DIR_RECORD_LEN];
        file.read_exact(&mut dir_bytes)?;
        let mut directory = HashMap::with_capacity(num_hubs);
        let mut total_entries = 0usize;
        for rec in dir_bytes.chunks_exact(DIR_RECORD_LEN) {
            let hub = NodeId::from_le_bytes(rec[0..4].try_into().unwrap());
            let offset = u64::from_le_bytes(rec[4..12].try_into().unwrap());
            let count = u32::from_le_bytes(rec[12..16].try_into().unwrap());
            // Every blob must lie within the file; a corrupt directory must
            // fail at open, not panic (or over-allocate) at query time.
            let end = offset
                .checked_add(count as u64 * ENTRY_LEN as u64)
                .filter(|&e| e <= file_len);
            if end.is_none() {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("hub {hub} blob out of bounds (corrupt directory)"),
                ));
            }
            if directory.insert(hub, (offset, count)).is_some() {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("hub {hub} appears twice in the directory"),
                ));
            }
            total_entries += count as usize;
        }
        Ok(DiskIndex {
            file: Mutex::new(file),
            directory,
            total_entries,
            cache: Mutex::new(FifoCache::new(cache_capacity)),
            reads: AtomicU64::new(0),
        })
    }

    /// Number of disk reads performed so far (cache misses).
    pub fn disk_reads(&self) -> u64 {
        self.reads.load(Ordering::Relaxed)
    }

    /// Indexed hub ids, sorted ascending. The hub set is implicit in the
    /// index file, so a deployment can reconstruct its
    /// [`crate::hubs::HubSet`] from the index alone.
    pub fn hub_ids(&self) -> Vec<NodeId> {
        let mut ids: Vec<NodeId> = self.directory.keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// The stored prime PPV of `hub`, served from the read cache when
    /// possible. The cache lock is taken exactly once and held across the
    /// (already file-lock serialized) miss read — deliberately trading
    /// concurrent hits during a cold miss (they wait one disk read) for a
    /// single lock acquisition per `get`; a hot multi-reader deployment
    /// should serve from a [`FlatIndex`] instead.
    pub fn get(&self, hub: NodeId) -> Option<Arc<PrimePpv>> {
        let &(offset, count) = self.directory.get(&hub)?;
        let mut cache = self.cache.lock();
        if let Some(hit) = cache.get(hub) {
            return Some(hit);
        }
        let ppv = Arc::new(
            self.read_ppv(offset, count)
                .expect("index file truncated or corrupt"),
        );
        cache.put(hub, Arc::clone(&ppv));
        Some(ppv)
    }

    fn read_ppv(&self, offset: u64, count: u32) -> io::Result<PrimePpv> {
        let mut buf = vec![0u8; count as usize * ENTRY_LEN];
        {
            let mut file = self.file.lock();
            file.seek(SeekFrom::Start(offset))?;
            file.read_exact(&mut buf)?;
            self.reads.fetch_add(1, Ordering::Relaxed);
        }
        let mut entries = Vec::with_capacity(count as usize);
        for rec in buf.chunks_exact(ENTRY_LEN) {
            let id = NodeId::from_le_bytes(rec[0..4].try_into().unwrap());
            let s = f32::from_le_bytes(rec[4..8].try_into().unwrap());
            entries.push((id, s as f64));
        }
        Ok(PrimePpv {
            entries: SparseVector::from_sorted(entries),
        })
    }
}

impl PpvStore for DiskIndex {
    fn view(&self, hub: NodeId) -> Option<PpvRef<'_>> {
        self.get(hub).map(PpvRef::Owned)
    }

    fn contains(&self, hub: NodeId) -> bool {
        self.directory.contains_key(&hub)
    }

    fn hub_count(&self) -> usize {
        self.directory.len()
    }

    fn total_entries(&self) -> usize {
        self.total_entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_ppv(ids: &[(NodeId, f64)]) -> PrimePpv {
        PrimePpv {
            entries: SparseVector::from_unsorted(ids.to_vec()),
        }
    }

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "fastppv-test-{}-{}-{name}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        p
    }

    #[test]
    fn memory_index_insert_and_get() {
        let mut idx = MemoryIndex::new(10);
        idx.insert(3, sample_ppv(&[(1, 0.5), (2, 0.25)]));
        idx.insert(7, sample_ppv(&[(0, 0.1)]));
        assert_eq!(idx.hub_count(), 2);
        assert_eq!(idx.total_entries(), 3);
        assert!(idx.contains(3) && !idx.contains(4));
        assert_eq!(idx.get(3).unwrap().entries.get(2), 0.25);
        assert!(idx.get(4).is_none());
        assert!(idx.view(4).is_none());
        assert_eq!(idx.load(3).unwrap().entries.get(1), 0.5);
    }

    #[test]
    fn memory_index_replace_updates_totals() {
        let mut idx = MemoryIndex::new(10);
        idx.insert(3, sample_ppv(&[(1, 0.5), (2, 0.25)]));
        idx.insert(3, sample_ppv(&[(1, 0.9)]));
        assert_eq!(idx.hub_count(), 1);
        assert_eq!(idx.total_entries(), 1);
        assert_eq!(idx.get(3).unwrap().entries.get(1), 0.9);
    }

    #[test]
    fn ppv_ref_variants_agree() {
        let ppv = sample_ppv(&[(1, 0.5), (4, 0.25), (9, 0.125)]);
        let ids: Vec<NodeId> = ppv.entries.entries().iter().map(|&(v, _)| v).collect();
        let scores: Vec<f64> = ppv.entries.entries().iter().map(|&(_, s)| s).collect();
        let views = [
            PpvRef::Soa {
                ids: &ids,
                scores: &scores,
            },
            PpvRef::Aos(ppv.entries.entries()),
            PpvRef::Owned(Arc::new(ppv.clone())),
        ];
        for view in &views {
            assert_eq!(view.len(), 3);
            assert_eq!(view.to_prime_ppv(), ppv);
            assert_eq!(view.score_at(1), 0.25);
            assert!((view.l1_norm() - 0.875).abs() < 1e-15);
            let mut collected = Vec::new();
            view.for_each(|v, s| collected.push((v, s)));
            assert_eq!(collected, ppv.entries.entries());
        }
    }

    #[test]
    fn flat_index_matches_memory_index() {
        let mut idx = MemoryIndex::new(10);
        idx.insert(3, sample_ppv(&[(1, 0.5), (2, 0.25), (7, 0.1)]));
        idx.insert(7, sample_ppv(&[(0, 0.1), (3, 0.2)]));
        idx.insert(5, sample_ppv(&[]));
        let hubs = HubSet::from_ids(10, vec![3, 5, 7]);
        let flat = FlatIndex::from_memory(&idx, &hubs);
        assert_eq!(flat.hub_count(), 3);
        assert_eq!(flat.total_entries(), 5);
        assert_eq!(flat.storage_bytes(), idx.storage_bytes());
        for h in [3u32, 5, 7] {
            assert!(flat.contains(h));
            assert_eq!(flat.load(h).unwrap(), *idx.get(h).unwrap(), "hub {h}");
        }
        assert!(!flat.contains(4));
        assert!(flat.view(4).is_none());
    }

    #[test]
    fn flat_index_border_sublist_points_at_hub_entries() {
        let mut idx = MemoryIndex::new(10);
        idx.insert(2, sample_ppv(&[(1, 0.5), (4, 0.3), (6, 0.2), (9, 0.1)]));
        idx.insert(4, sample_ppv(&[(2, 0.7)]));
        let hubs = HubSet::from_ids(10, vec![2, 4, 9]);
        let flat = FlatIndex::from_memory(&idx, &hubs);
        let (bids, bpos) = flat.border_sublist(2).unwrap();
        assert_eq!(bids, &[4, 9]);
        let view = flat.view(2).unwrap();
        let borders: Vec<(NodeId, f64)> = bids
            .iter()
            .zip(bpos)
            .map(|(&id, &p)| (id, view.score_at(p as usize)))
            .collect();
        let expected: Vec<(NodeId, f64)> = idx.get(2).unwrap().border_hubs(&hubs).collect();
        assert_eq!(borders, expected);
        // Non-hub-entry segments have empty sublists.
        let (bids4, _) = flat.border_sublist(4).unwrap();
        assert_eq!(bids4, &[2]);
    }

    #[test]
    fn flat_replace_tombstones_then_compacts() {
        let mut idx = MemoryIndex::new(10);
        idx.insert(1, sample_ppv(&[(2, 0.5), (3, 0.25)]));
        idx.insert(2, sample_ppv(&[(1, 0.5)]));
        let hubs = HubSet::from_ids(10, vec![1, 2]);
        let mut flat = FlatIndex::from_memory(&idx, &hubs);
        assert_eq!(flat.dead_entries(), 0);
        flat.replace(1, &sample_ppv(&[(2, 0.9), (5, 0.05)]), &hubs);
        // 2 of 5 arena entries are dead (40% > 30%): compaction fired.
        assert_eq!(flat.dead_entries(), 0, "threshold crossed, compacted");
        assert_eq!(flat.total_entries(), 3);
        assert_eq!(
            flat.load(1).unwrap().entries.entries(),
            &[(2, 0.9), (5, 0.05)]
        );
        assert_eq!(flat.load(2).unwrap().entries.entries(), &[(1, 0.5)]);
        // Border sublists survive the patch + compaction.
        let (bids, _) = flat.border_sublist(1).unwrap();
        assert_eq!(bids, &[2]);
    }

    #[test]
    fn flat_replace_below_threshold_keeps_tombstones() {
        let mut idx = MemoryIndex::new(20);
        let big: Vec<(NodeId, f64)> = (0..15).map(|v| (v, 0.01)).collect();
        idx.insert(1, sample_ppv(&big));
        idx.insert(2, sample_ppv(&[(3, 0.5)]));
        let hubs = HubSet::from_ids(20, vec![1, 2]);
        let mut flat = FlatIndex::from_memory(&idx, &hubs);
        flat.replace(2, &sample_ppv(&[(4, 0.25)]), &hubs);
        // 1 dead of 17 total: below the 30% threshold, tombstone retained.
        assert_eq!(flat.dead_entries(), 1);
        assert_eq!(flat.total_entries(), 16);
        assert_eq!(flat.load(2).unwrap().entries.entries(), &[(4, 0.25)]);
        flat.compact();
        assert_eq!(flat.dead_entries(), 0);
        assert_eq!(flat.load(2).unwrap().entries.entries(), &[(4, 0.25)]);
    }

    #[test]
    fn flat_insert_appends_new_hub() {
        let hubs = HubSet::from_ids(10, vec![1, 6]);
        let mut flat = FlatIndex::new(10);
        flat.insert(1, &sample_ppv(&[(0, 0.5), (6, 0.1)]), &hubs);
        flat.insert(6, &sample_ppv(&[(1, 0.3)]), &hubs);
        assert_eq!(flat.hub_count(), 2);
        assert_eq!(flat.border_sublist(1).unwrap().0, &[6]);
        assert_eq!(flat.load(6).unwrap().entries.entries(), &[(1, 0.3)]);
    }

    #[test]
    fn flat_write_matches_memory_write() {
        let mut idx = MemoryIndex::new(100);
        idx.insert(42, sample_ppv(&[(0, 0.125), (42, 0.5), (99, 0.0625)]));
        idx.insert(7, sample_ppv(&[(7, 1.0)]));
        let hubs = HubSet::from_ids(100, vec![7, 42]);
        let flat = FlatIndex::from_memory(&idx, &hubs);
        let pm = temp_path("mem.idx");
        let pf = temp_path("flat.idx");
        idx.write_to_file(&pm).unwrap();
        flat.write_to_file(&pf).unwrap();
        assert_eq!(
            std::fs::read(&pm).unwrap(),
            std::fs::read(&pf).unwrap(),
            "flat and memory serialization must be byte-identical"
        );
        std::fs::remove_file(&pm).unwrap();
        std::fs::remove_file(&pf).unwrap();
    }

    #[test]
    fn flat_from_store_round_trips_disk() {
        let mut idx = MemoryIndex::new(50);
        idx.insert(10, sample_ppv(&[(1, 0.5), (20, 0.25)]));
        idx.insert(20, sample_ppv(&[(10, 0.125)]));
        let path = temp_path("fromstore.idx");
        idx.write_to_file(&path).unwrap();
        let disk = DiskIndex::open(&path, 4).unwrap();
        let hubs = HubSet::from_ids(50, disk.hub_ids());
        let flat = FlatIndex::from_store(50, &disk, &disk.hub_ids(), &hubs);
        assert_eq!(flat.hub_count(), 2);
        for h in [10u32, 20] {
            assert_eq!(flat.load(h).unwrap(), *disk.get(h).unwrap(), "hub {h}");
        }
        assert_eq!(flat.border_sublist(10).unwrap().0, &[20]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn disk_round_trip() {
        let mut idx = MemoryIndex::new(100);
        idx.insert(42, sample_ppv(&[(0, 0.125), (42, 0.5), (99, 0.0625)]));
        idx.insert(7, sample_ppv(&[(7, 1.0)]));
        idx.insert(0, sample_ppv(&[]));
        let path = temp_path("roundtrip.idx");
        idx.write_to_file(&path).unwrap();
        let disk = DiskIndex::open(&path, 8).unwrap();
        assert_eq!(disk.hub_count(), 3);
        assert_eq!(disk.total_entries(), 4);
        for h in [0u32, 7, 42] {
            let mem = idx.get(h).unwrap();
            let dsk = disk.get(h).unwrap();
            assert_eq!(mem.len(), dsk.len());
            for (&(a, sa), &(b, sb)) in mem.entries.entries().iter().zip(dsk.entries.entries()) {
                assert_eq!(a, b);
                assert!((sa - sb).abs() < 1e-7); // f32 quantization
            }
        }
        assert!(disk.get(1).is_none());
        assert!(disk.view(1).is_none());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn disk_cache_avoids_rereads() {
        let mut idx = MemoryIndex::new(10);
        idx.insert(1, sample_ppv(&[(1, 0.5)]));
        idx.insert(2, sample_ppv(&[(2, 0.5)]));
        let path = temp_path("cache.idx");
        idx.write_to_file(&path).unwrap();
        let disk = DiskIndex::open(&path, 1).unwrap();
        disk.get(1).unwrap();
        disk.get(1).unwrap();
        assert_eq!(disk.disk_reads(), 1, "second get must hit the cache");
        disk.get(2).unwrap(); // evicts 1 (capacity 1)
        disk.get(1).unwrap();
        assert_eq!(disk.disk_reads(), 3);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn open_rejects_garbage() {
        let path = temp_path("garbage.idx");
        std::fs::write(&path, b"definitely not an index file").unwrap();
        let err = match DiskIndex::open(&path, 1) {
            Ok(_) => panic!("garbage accepted"),
            Err(e) => e,
        };
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn open_rejects_truncated_file() {
        let mut idx = MemoryIndex::new(10);
        idx.insert(1, sample_ppv(&[(1, 0.5), (3, 0.25)]));
        idx.insert(2, sample_ppv(&[(0, 0.125)]));
        let path = temp_path("truncated.idx");
        idx.write_to_file(&path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        // Cut the file mid-blob: the directory then points past EOF.
        std::fs::write(&path, &bytes[..bytes.len() - 6]).unwrap();
        let err = match DiskIndex::open(&path, 1) {
            Ok(_) => panic!("truncated file accepted"),
            Err(e) => e,
        };
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn open_rejects_absurd_hub_count() {
        // A header claiming 2^40 hubs must not allocate terabytes.
        let path = temp_path("absurd.idx");
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&VERSION.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        bytes.extend_from_slice(&(1u64 << 40).to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        let err = match DiskIndex::open(&path, 1) {
            Ok(_) => panic!("absurd header accepted"),
            Err(e) => e,
        };
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn storage_bytes_matches_file_size() {
        let mut idx = MemoryIndex::new(10);
        idx.insert(1, sample_ppv(&[(1, 0.5), (3, 0.1)]));
        idx.insert(5, sample_ppv(&[(0, 0.2)]));
        let path = temp_path("size.idx");
        idx.write_to_file(&path).unwrap();
        let file_len = std::fs::metadata(&path).unwrap().len() as usize;
        assert_eq!(idx.storage_bytes(), file_len);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn border_hubs_filters_by_hub_set() {
        let ppv = sample_ppv(&[(1, 0.5), (2, 0.3), (4, 0.1)]);
        let hubs = HubSet::from_ids(5, vec![2, 4]);
        let borders: Vec<_> = ppv.border_hubs(&hubs).collect();
        assert_eq!(borders, vec![(2, 0.3), (4, 0.1)]);
    }
}
