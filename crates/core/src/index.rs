//! The PPV index: precomputed prime PPVs of hub nodes (paper §5.1).
//!
//! Two interchangeable stores implement [`PpvStore`]:
//!
//! * [`MemoryIndex`] — a slot map of `Arc<PrimePpv>`, used when the index
//!   fits in RAM (the paper's default setting);
//! * [`DiskIndex`] — a file-backed store with a per-hub directory for O(1)
//!   random access and a small FIFO read cache, used by the disk-resident
//!   experiments (§5.3 / §6.4.2).
//!
//! The on-disk format (`FPPVIDX1`) is a hand-rolled little-endian layout:
//!
//! ```text
//! magic "FPPVIDX1" | u32 version | u32 flags | u64 num_hubs
//! directory: num_hubs × { u32 hub_id, u64 offset, u32 num_entries }
//! data:      per hub { num_entries × (u32 node, f32 score) }
//! ```
//!
//! Scores are stored as `f32`: entries are clipped at 1e-4 anyway (§6), so
//! the ~1e-7 relative quantization error is far below the approximation
//! error budget.

use std::collections::HashMap;
use std::fs::File;
use std::io::{self, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::Arc;

use parking_lot::Mutex;

use fastppv_graph::{NodeId, SparseVector};

use crate::hubs::HubSet;

/// A stored prime PPV: the trivial-tour-excluded reachabilities `r̊⁰_v`
/// (see [`crate::prime`] for why the empty tour is excluded).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PrimePpv {
    /// Sparse reachability entries, sorted by node id.
    pub entries: SparseVector,
}

impl PrimePpv {
    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether there are no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The hub entries (expansion candidates of the next iteration).
    pub fn border_hubs<'a>(&'a self, hubs: &'a HubSet) -> impl Iterator<Item = (NodeId, f64)> + 'a {
        self.entries
            .entries()
            .iter()
            .copied()
            .filter(move |&(v, _)| hubs.is_hub(v))
    }
}

/// Read access to precomputed prime PPVs.
pub trait PpvStore {
    /// The prime PPV of `hub`, or `None` if not indexed.
    fn get(&self, hub: NodeId) -> Option<Arc<PrimePpv>>;

    /// Whether `hub` is indexed.
    fn contains(&self, hub: NodeId) -> bool;

    /// Number of indexed hubs.
    fn hub_count(&self) -> usize;

    /// Total stored entries across hubs.
    fn total_entries(&self) -> usize;

    /// Index size in bytes (on-disk layout equivalent).
    fn storage_bytes(&self) -> usize {
        HEADER_LEN + self.hub_count() * DIR_RECORD_LEN + self.total_entries() * ENTRY_LEN
    }
}

impl<S: PpvStore> PpvStore for &S {
    fn get(&self, hub: NodeId) -> Option<Arc<PrimePpv>> {
        (**self).get(hub)
    }
    fn contains(&self, hub: NodeId) -> bool {
        (**self).contains(hub)
    }
    fn hub_count(&self) -> usize {
        (**self).hub_count()
    }
    fn total_entries(&self) -> usize {
        (**self).total_entries()
    }
}

const MAGIC: &[u8; 8] = b"FPPVIDX1";
const VERSION: u32 = 1;
const HEADER_LEN: usize = 8 + 4 + 4 + 8;
const DIR_RECORD_LEN: usize = 4 + 8 + 4;
const ENTRY_LEN: usize = 8;

/// In-memory PPV index.
#[derive(Clone, Debug, Default)]
pub struct MemoryIndex {
    slots: Vec<Option<Arc<PrimePpv>>>,
    hub_ids: Vec<NodeId>,
    total_entries: usize,
}

impl MemoryIndex {
    /// An empty index for graphs of `n` nodes.
    pub fn new(n: usize) -> Self {
        MemoryIndex {
            slots: vec![None; n],
            hub_ids: Vec::new(),
            total_entries: 0,
        }
    }

    /// Inserts (or replaces) the prime PPV of `hub`.
    pub fn insert(&mut self, hub: NodeId, ppv: PrimePpv) {
        let slot = &mut self.slots[hub as usize];
        match slot {
            Some(old) => self.total_entries -= old.len(),
            None => self.hub_ids.push(hub),
        }
        self.total_entries += ppv.len();
        *slot = Some(Arc::new(ppv));
    }

    /// Indexed hub ids, in insertion order.
    pub fn hub_ids(&self) -> &[NodeId] {
        &self.hub_ids
    }

    /// Serializes the index to the `FPPVIDX1` format.
    pub fn write_to_file<P: AsRef<Path>>(&self, path: P) -> io::Result<()> {
        let mut w = BufWriter::new(File::create(path)?);
        w.write_all(MAGIC)?;
        w.write_all(&VERSION.to_le_bytes())?;
        w.write_all(&0u32.to_le_bytes())?;
        w.write_all(&(self.hub_ids.len() as u64).to_le_bytes())?;
        // Directory.
        let mut offset = (HEADER_LEN + self.hub_ids.len() * DIR_RECORD_LEN) as u64;
        let mut sorted_hubs = self.hub_ids.clone();
        sorted_hubs.sort_unstable();
        for &h in &sorted_hubs {
            let ppv = self.slots[h as usize].as_ref().expect("indexed hub");
            w.write_all(&h.to_le_bytes())?;
            w.write_all(&offset.to_le_bytes())?;
            w.write_all(&(ppv.len() as u32).to_le_bytes())?;
            offset += (ppv.len() * ENTRY_LEN) as u64;
        }
        // Data blobs.
        for &h in &sorted_hubs {
            let ppv = self.slots[h as usize].as_ref().expect("indexed hub");
            for &(id, s) in ppv.entries.entries() {
                w.write_all(&id.to_le_bytes())?;
                w.write_all(&(s as f32).to_le_bytes())?;
            }
        }
        w.flush()
    }
}

impl PpvStore for MemoryIndex {
    fn get(&self, hub: NodeId) -> Option<Arc<PrimePpv>> {
        self.slots.get(hub as usize).and_then(|s| s.clone())
    }

    fn contains(&self, hub: NodeId) -> bool {
        self.slots.get(hub as usize).is_some_and(|s| s.is_some())
    }

    fn hub_count(&self) -> usize {
        self.hub_ids.len()
    }

    fn total_entries(&self) -> usize {
        self.total_entries
    }
}

/// A bounded FIFO read cache (approximates LRU without per-hit bookkeeping).
struct FifoCache {
    map: HashMap<NodeId, Arc<PrimePpv>>,
    order: std::collections::VecDeque<NodeId>,
    capacity: usize,
}

impl FifoCache {
    fn new(capacity: usize) -> Self {
        FifoCache {
            map: HashMap::with_capacity(capacity),
            order: std::collections::VecDeque::with_capacity(capacity),
            capacity,
        }
    }

    fn get(&self, hub: NodeId) -> Option<Arc<PrimePpv>> {
        self.map.get(&hub).cloned()
    }

    fn put(&mut self, hub: NodeId, ppv: Arc<PrimePpv>) {
        if self.capacity == 0 || self.map.contains_key(&hub) {
            return;
        }
        if self.map.len() >= self.capacity {
            if let Some(old) = self.order.pop_front() {
                self.map.remove(&old);
            }
        }
        self.map.insert(hub, ppv);
        self.order.push_back(hub);
    }
}

/// File-backed PPV index with a per-hub directory and a FIFO read cache.
pub struct DiskIndex {
    file: Mutex<File>,
    directory: HashMap<NodeId, (u64, u32)>,
    total_entries: usize,
    cache: Mutex<FifoCache>,
    reads: Mutex<u64>,
}

impl DiskIndex {
    /// Opens an index written by [`MemoryIndex::write_to_file`].
    ///
    /// `cache_capacity` bounds the number of prime PPVs kept in memory.
    pub fn open<P: AsRef<Path>>(path: P, cache_capacity: usize) -> io::Result<Self> {
        let mut file = File::open(path)?;
        let mut header = [0u8; HEADER_LEN];
        file.read_exact(&mut header)?;
        if &header[..8] != MAGIC {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "not a FastPPV index (bad magic)",
            ));
        }
        let version = u32::from_le_bytes(header[8..12].try_into().unwrap());
        if version != VERSION {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unsupported index version {version}"),
            ));
        }
        let num_hubs = u64::from_le_bytes(header[16..24].try_into().unwrap()) as usize;
        let file_len = file.metadata()?.len();
        let dir_len = (num_hubs as u64).checked_mul(DIR_RECORD_LEN as u64);
        if dir_len.is_none_or(|d| HEADER_LEN as u64 + d > file_len) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "index directory exceeds file size (corrupt header)",
            ));
        }
        let mut dir_bytes = vec![0u8; num_hubs * DIR_RECORD_LEN];
        file.read_exact(&mut dir_bytes)?;
        let mut directory = HashMap::with_capacity(num_hubs);
        let mut total_entries = 0usize;
        for rec in dir_bytes.chunks_exact(DIR_RECORD_LEN) {
            let hub = NodeId::from_le_bytes(rec[0..4].try_into().unwrap());
            let offset = u64::from_le_bytes(rec[4..12].try_into().unwrap());
            let count = u32::from_le_bytes(rec[12..16].try_into().unwrap());
            // Every blob must lie within the file; a corrupt directory must
            // fail at open, not panic (or over-allocate) at query time.
            let end = offset
                .checked_add(count as u64 * ENTRY_LEN as u64)
                .filter(|&e| e <= file_len);
            if end.is_none() {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("hub {hub} blob out of bounds (corrupt directory)"),
                ));
            }
            if directory.insert(hub, (offset, count)).is_some() {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("hub {hub} appears twice in the directory"),
                ));
            }
            total_entries += count as usize;
        }
        Ok(DiskIndex {
            file: Mutex::new(file),
            directory,
            total_entries,
            cache: Mutex::new(FifoCache::new(cache_capacity)),
            reads: Mutex::new(0),
        })
    }

    /// Number of disk reads performed so far (cache misses).
    pub fn disk_reads(&self) -> u64 {
        *self.reads.lock()
    }

    /// Indexed hub ids, sorted ascending. The hub set is implicit in the
    /// index file, so a deployment can reconstruct its
    /// [`crate::hubs::HubSet`] from the index alone.
    pub fn hub_ids(&self) -> Vec<NodeId> {
        let mut ids: Vec<NodeId> = self.directory.keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    fn read_ppv(&self, offset: u64, count: u32) -> io::Result<PrimePpv> {
        let mut buf = vec![0u8; count as usize * ENTRY_LEN];
        {
            let mut file = self.file.lock();
            file.seek(SeekFrom::Start(offset))?;
            file.read_exact(&mut buf)?;
            *self.reads.lock() += 1;
        }
        let mut entries = Vec::with_capacity(count as usize);
        for rec in buf.chunks_exact(ENTRY_LEN) {
            let id = NodeId::from_le_bytes(rec[0..4].try_into().unwrap());
            let s = f32::from_le_bytes(rec[4..8].try_into().unwrap());
            entries.push((id, s as f64));
        }
        Ok(PrimePpv {
            entries: SparseVector::from_sorted(entries),
        })
    }
}

impl PpvStore for DiskIndex {
    fn get(&self, hub: NodeId) -> Option<Arc<PrimePpv>> {
        if let Some(hit) = self.cache.lock().get(hub) {
            return Some(hit);
        }
        let &(offset, count) = self.directory.get(&hub)?;
        let ppv = Arc::new(
            self.read_ppv(offset, count)
                .expect("index file truncated or corrupt"),
        );
        self.cache.lock().put(hub, Arc::clone(&ppv));
        Some(ppv)
    }

    fn contains(&self, hub: NodeId) -> bool {
        self.directory.contains_key(&hub)
    }

    fn hub_count(&self) -> usize {
        self.directory.len()
    }

    fn total_entries(&self) -> usize {
        self.total_entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_ppv(ids: &[(NodeId, f64)]) -> PrimePpv {
        PrimePpv {
            entries: SparseVector::from_unsorted(ids.to_vec()),
        }
    }

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "fastppv-test-{}-{}-{name}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        p
    }

    #[test]
    fn memory_index_insert_and_get() {
        let mut idx = MemoryIndex::new(10);
        idx.insert(3, sample_ppv(&[(1, 0.5), (2, 0.25)]));
        idx.insert(7, sample_ppv(&[(0, 0.1)]));
        assert_eq!(idx.hub_count(), 2);
        assert_eq!(idx.total_entries(), 3);
        assert!(idx.contains(3) && !idx.contains(4));
        assert_eq!(idx.get(3).unwrap().entries.get(2), 0.25);
        assert!(idx.get(4).is_none());
    }

    #[test]
    fn memory_index_replace_updates_totals() {
        let mut idx = MemoryIndex::new(10);
        idx.insert(3, sample_ppv(&[(1, 0.5), (2, 0.25)]));
        idx.insert(3, sample_ppv(&[(1, 0.9)]));
        assert_eq!(idx.hub_count(), 1);
        assert_eq!(idx.total_entries(), 1);
        assert_eq!(idx.get(3).unwrap().entries.get(1), 0.9);
    }

    #[test]
    fn disk_round_trip() {
        let mut idx = MemoryIndex::new(100);
        idx.insert(42, sample_ppv(&[(0, 0.125), (42, 0.5), (99, 0.0625)]));
        idx.insert(7, sample_ppv(&[(7, 1.0)]));
        idx.insert(0, sample_ppv(&[]));
        let path = temp_path("roundtrip.idx");
        idx.write_to_file(&path).unwrap();
        let disk = DiskIndex::open(&path, 8).unwrap();
        assert_eq!(disk.hub_count(), 3);
        assert_eq!(disk.total_entries(), 4);
        for h in [0u32, 7, 42] {
            let mem = idx.get(h).unwrap();
            let dsk = disk.get(h).unwrap();
            assert_eq!(mem.len(), dsk.len());
            for (&(a, sa), &(b, sb)) in mem.entries.entries().iter().zip(dsk.entries.entries()) {
                assert_eq!(a, b);
                assert!((sa - sb).abs() < 1e-7); // f32 quantization
            }
        }
        assert!(disk.get(1).is_none());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn disk_cache_avoids_rereads() {
        let mut idx = MemoryIndex::new(10);
        idx.insert(1, sample_ppv(&[(1, 0.5)]));
        idx.insert(2, sample_ppv(&[(2, 0.5)]));
        let path = temp_path("cache.idx");
        idx.write_to_file(&path).unwrap();
        let disk = DiskIndex::open(&path, 1).unwrap();
        disk.get(1).unwrap();
        disk.get(1).unwrap();
        assert_eq!(disk.disk_reads(), 1, "second get must hit the cache");
        disk.get(2).unwrap(); // evicts 1 (capacity 1)
        disk.get(1).unwrap();
        assert_eq!(disk.disk_reads(), 3);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn open_rejects_garbage() {
        let path = temp_path("garbage.idx");
        std::fs::write(&path, b"definitely not an index file").unwrap();
        let err = match DiskIndex::open(&path, 1) {
            Ok(_) => panic!("garbage accepted"),
            Err(e) => e,
        };
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn open_rejects_truncated_file() {
        let mut idx = MemoryIndex::new(10);
        idx.insert(1, sample_ppv(&[(1, 0.5), (3, 0.25)]));
        idx.insert(2, sample_ppv(&[(0, 0.125)]));
        let path = temp_path("truncated.idx");
        idx.write_to_file(&path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        // Cut the file mid-blob: the directory then points past EOF.
        std::fs::write(&path, &bytes[..bytes.len() - 6]).unwrap();
        let err = match DiskIndex::open(&path, 1) {
            Ok(_) => panic!("truncated file accepted"),
            Err(e) => e,
        };
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn open_rejects_absurd_hub_count() {
        // A header claiming 2^40 hubs must not allocate terabytes.
        let path = temp_path("absurd.idx");
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&VERSION.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        bytes.extend_from_slice(&(1u64 << 40).to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        let err = match DiskIndex::open(&path, 1) {
            Ok(_) => panic!("absurd header accepted"),
            Err(e) => e,
        };
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn storage_bytes_matches_file_size() {
        let mut idx = MemoryIndex::new(10);
        idx.insert(1, sample_ppv(&[(1, 0.5), (3, 0.1)]));
        idx.insert(5, sample_ppv(&[(0, 0.2)]));
        let path = temp_path("size.idx");
        idx.write_to_file(&path).unwrap();
        let file_len = std::fs::metadata(&path).unwrap().len() as usize;
        assert_eq!(idx.storage_bytes(), file_len);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn border_hubs_filters_by_hub_set() {
        let ppv = sample_ppv(&[(1, 0.5), (2, 0.3), (4, 0.1)]);
        let hubs = HubSet::from_ids(5, vec![2, 4]);
        let borders: Vec<_> = ppv.border_hubs(&hubs).collect();
        assert_eq!(borders, vec![(2, 0.3), (4, 0.1)]);
    }
}
