//! Incremental index maintenance under graph updates.
//!
//! The paper's future work (§7) sketches the idea: "a simple idea to process
//! graph updates is to only re-compute the affected prime PPVs, without
//! touching the unaffected ones". This module implements it.
//!
//! A hub `h`'s prime PPV depends only on its prime subgraph `G'(h)`, and an
//! edge change at tail `u` can alter `G'(h)` only if `u` is an *expanded*
//! (propagating) node of `G'(h)` — i.e. there is a hub-free walk `h ⇝ u`
//! with probability ≥ ε and `u` is not itself a hub (hubs absorb; nothing
//! beyond them is explored, and entries *at* `u` only depend on the
//! out-degrees of nodes strictly before `u`). [`affected_hubs`] finds that
//! set with a reverse max-probability search; [`refresh_index`] recomputes
//! exactly those PPVs and shares the rest (`Arc` clones).
//!
//! For deletions, walks that existed only in the old graph matter too; call
//! [`affected_hubs`] on both graphs and union, or use [`refresh_index`]
//! which takes the changed edge tails and both graphs.

use fastppv_graph::{Graph, NodeId};

use crate::config::Config;
use crate::hubs::HubSet;
use crate::index::{FlatIndex, MemoryIndex, PpvStore};
use crate::prime::{BucketQueue, PrimeComputer};

/// Hubs whose prime PPV depends on the out-edges of `u` in `graph`:
/// `{h ∈ H : u is an expanded node of G'(h)}`, found by a reverse
/// max-probability search from `u` over hub-free interiors — driven by the
/// same monotone [`BucketQueue`] as the forward extraction kernel, so the
/// set is exact and pop-order independent (see [`crate::prime`]).
pub fn affected_hubs(
    graph: &Graph,
    hubs: &HubSet,
    u: NodeId,
    epsilon: f64,
    alpha: f64,
) -> Vec<NodeId> {
    assert!((u as usize) < graph.num_nodes());
    // A hub's own subgraph always expands its source.
    if hubs.is_hub(u) {
        return vec![u];
    }

    // best[x] = max probability of a walk x ⇝ u whose interior (nodes
    // strictly between x and u) is hub-free. Relaxing x's in-neighbors is
    // only sound when x itself may be interior, i.e. x is not a hub; the
    // reached set {x : best(x) ≥ ε} is a fixed point of max-relaxation, so
    // it does not depend on the (quantized) pop order.
    let n = graph.num_nodes();
    let mut best = vec![0.0f64; n];
    let mut reached: Vec<NodeId> = Vec::new();
    let mut queue = BucketQueue::new();
    queue.configure(alpha);
    best[u as usize] = 1.0;
    reached.push(u);
    queue.push(1.0, u);
    while let Some((p, x)) = queue.pop() {
        if p != best[x as usize] {
            continue; // stale entry
        }
        if hubs.is_hub(x) {
            continue; // x would be interior for any longer walk: stop here
        }
        for &y in graph.in_neighbors(x) {
            let d = graph.out_degree(y);
            if d == 0 {
                continue;
            }
            let w = p * (1.0 - alpha) / d as f64;
            if w >= epsilon && w > best[y as usize] {
                if best[y as usize] == 0.0 {
                    reached.push(y);
                }
                best[y as usize] = w;
                queue.push(w, y);
            }
        }
    }
    let mut affected: Vec<NodeId> = reached.into_iter().filter(|&x| hubs.is_hub(x)).collect();
    affected.sort_unstable();
    affected
}

/// Statistics from an index refresh.
#[derive(Clone, Copy, Debug, Default)]
pub struct RefreshStats {
    /// Hubs whose prime PPVs were recomputed.
    pub recomputed: usize,
    /// Hubs reused unchanged.
    pub reused: usize,
    /// Wall-clock time of the refresh.
    pub elapsed: std::time::Duration,
}

/// The per-node dirty mask of an edge batch: true for every hub whose
/// prime PPV may have changed. `old_graph` is consulted so that deletions
/// (walks that existed only before the change) also invalidate their
/// dependents.
fn dirty_hubs(
    old_graph: &Graph,
    new_graph: &Graph,
    hubs: &HubSet,
    changed_tails: &[NodeId],
    config: &Config,
) -> Vec<bool> {
    let mut dirty = vec![false; new_graph.num_nodes()];
    for &u in changed_tails {
        for h in affected_hubs(new_graph, hubs, u, config.epsilon, config.alpha) {
            dirty[h as usize] = true;
        }
        if (u as usize) < old_graph.num_nodes() {
            for h in affected_hubs(old_graph, hubs, u, config.epsilon, config.alpha) {
                dirty[h as usize] = true;
            }
        }
    }
    dirty
}

/// Refreshes `old_index` after edge updates, recomputing only affected hubs.
///
/// `changed_tails` are the source nodes of every inserted or deleted edge.
/// `old_graph` is consulted so that deletions (walks that existed only
/// before the change) also invalidate their dependents; pass the same graph
/// twice for pure insertions. Unaffected PPVs are shared with the old
/// index (`Arc` handles, no entry copies).
pub fn refresh_index(
    old_index: &MemoryIndex,
    old_graph: &Graph,
    new_graph: &Graph,
    hubs: &HubSet,
    changed_tails: &[NodeId],
    config: &Config,
) -> (MemoryIndex, RefreshStats) {
    config.validate();
    let start = std::time::Instant::now();
    let dirty = dirty_hubs(old_graph, new_graph, hubs, changed_tails, config);
    let mut index = MemoryIndex::new(new_graph.num_nodes());
    let mut pc = PrimeComputer::new(new_graph.num_nodes());
    let mut recomputed = 0usize;
    let mut reused = 0usize;
    for &h in hubs.ids() {
        if dirty[h as usize] || !old_index.contains(h) {
            let (ppv, _) = pc.prime_ppv(new_graph, hubs, h, config, config.clip);
            index.insert(h, ppv);
            recomputed += 1;
        } else {
            let ppv = old_index.get_shared(h).expect("checked contains");
            index.insert_shared(h, ppv);
            reused += 1;
        }
    }
    (
        index,
        RefreshStats {
            recomputed,
            reused,
            elapsed: start.elapsed(),
        },
    )
}

/// Refreshes a [`FlatIndex`] arena in place after edge updates: affected
/// hubs are recomputed and patched via [`FlatIndex::replace`]
/// (tombstone-and-append; the arena compacts itself once dead entries
/// cross [`FlatIndex::COMPACTION_THRESHOLD`]). Unaffected segments are
/// untouched — no entry is copied for them.
///
/// `changed_tails` as in [`refresh_index`]. The arena must cover
/// `new_graph` (node additions require a rebuild via
/// [`crate::offline::build_flat_index`]).
pub fn refresh_flat_index(
    index: &mut FlatIndex,
    old_graph: &Graph,
    new_graph: &Graph,
    hubs: &HubSet,
    changed_tails: &[NodeId],
    config: &Config,
) -> RefreshStats {
    config.validate();
    assert!(
        index.capacity() >= new_graph.num_nodes(),
        "arena sized for {} nodes, graph has {} (rebuild instead)",
        index.capacity(),
        new_graph.num_nodes()
    );
    let start = std::time::Instant::now();
    let dirty = dirty_hubs(old_graph, new_graph, hubs, changed_tails, config);
    let mut pc = PrimeComputer::new(new_graph.num_nodes());
    let mut recomputed = 0usize;
    let mut reused = 0usize;
    for &h in hubs.ids() {
        if dirty[h as usize] || !index.contains(h) {
            let (ppv, _) = pc.prime_ppv(new_graph, hubs, h, config, config.clip);
            index.replace(h, &ppv, hubs);
            recomputed += 1;
        } else {
            reused += 1;
        }
    }
    RefreshStats {
        recomputed,
        reused,
        elapsed: start.elapsed(),
    }
}

/// Snapshot-style counterpart of [`refresh_flat_index`]: leaves `old`
/// untouched and returns a freshly patched arena. This is the entry point
/// an epoch-snapshot service wants — readers pinning the old arena (behind
/// an `Arc` swap cell) keep seeing it undisturbed while the clone is
/// patched and published as the next epoch's store.
///
/// The clone is always a deep copy: under concurrent serving somebody is
/// holding the old arena by definition, so there is no in-place fast path
/// worth special-casing.
pub fn refresh_flat_index_snapshot(
    old: &FlatIndex,
    old_graph: &Graph,
    new_graph: &Graph,
    hubs: &HubSet,
    changed_tails: &[NodeId],
    config: &Config,
) -> (FlatIndex, RefreshStats) {
    let mut next = old.clone();
    let stats = refresh_flat_index(&mut next, old_graph, new_graph, hubs, changed_tails, config);
    (next, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hubs::{select_hubs, HubPolicy};
    use crate::offline::build_index;
    use fastppv_graph::gen::barabasi_albert;
    use fastppv_graph::{Graph, GraphBuilder};

    fn add_edge(graph: &Graph, u: NodeId, v: NodeId) -> Graph {
        let mut b = GraphBuilder::new(graph.num_nodes());
        for (s, t) in graph.edges() {
            // Drop the dangling-fix self-loop if the node gains a real edge.
            if s == t && s == u {
                continue;
            }
            b.add_edge(s, t);
        }
        b.add_edge(u, v);
        b.build()
    }

    #[test]
    fn hub_tail_affects_only_itself() {
        let g = barabasi_albert(200, 3, 1);
        let hubs = select_hubs(&g, HubPolicy::ExpectedUtility, 20, 0);
        let h = hubs.ids()[0];
        let affected = affected_hubs(&g, &hubs, h, 1e-8, 0.15);
        assert_eq!(affected, vec![h]);
    }

    #[test]
    fn affected_set_contains_upstream_hubs_only() {
        let g = barabasi_albert(300, 3, 2);
        let hubs = select_hubs(&g, HubPolicy::ExpectedUtility, 30, 0);
        // Pick a non-hub node.
        let u = (0..300u32).find(|&v| !hubs.is_hub(v)).unwrap();
        let affected = affected_hubs(&g, &hubs, u, 1e-8, 0.15);
        for &h in &affected {
            assert!(hubs.is_hub(h));
        }
        // Larger epsilon shrinks (or keeps) the affected set.
        let smaller = affected_hubs(&g, &hubs, u, 1e-3, 0.15);
        assert!(smaller.len() <= affected.len());
    }

    #[test]
    fn refresh_matches_full_rebuild() {
        let g = barabasi_albert(250, 3, 7);
        let hubs = select_hubs(&g, HubPolicy::ExpectedUtility, 25, 0);
        let config = Config::default();
        let (old_index, _) = build_index(&g, &hubs, &config);
        // Insert an edge from a non-hub node.
        let u = (0..250u32).find(|&v| !hubs.is_hub(v)).unwrap();
        let v = (u + 17) % 250;
        let g2 = add_edge(&g, u, v);
        let (refreshed, stats) = refresh_index(&old_index, &g, &g2, &hubs, &[u], &config);
        let (rebuilt, _) = build_index(&g2, &hubs, &config);
        assert_eq!(refreshed.hub_count(), rebuilt.hub_count());
        for &h in hubs.ids() {
            assert_eq!(
                refreshed.get(h).unwrap().entries,
                rebuilt.get(h).unwrap().entries,
                "hub {h}"
            );
        }
        assert!(stats.recomputed > 0);
        // (Locality — reused > 0 — is asserted in
        // refresh_is_much_cheaper_than_rebuild on a larger graph; at 250
        // nodes with ε = 1e-8 every hub can legitimately be upstream.)
    }

    #[test]
    fn flat_refresh_matches_full_rebuild() {
        let g = barabasi_albert(250, 3, 7);
        let hubs = select_hubs(&g, HubPolicy::ExpectedUtility, 25, 0);
        let config = Config::default();
        let (mut flat, _) = crate::offline::build_flat_index(&g, &hubs, &config, 1);
        let u = (0..250u32).find(|&v| !hubs.is_hub(v)).unwrap();
        let g2 = add_edge(&g, u, (u + 17) % 250);
        let stats = refresh_flat_index(&mut flat, &g, &g2, &hubs, &[u], &config);
        let (rebuilt, _) = crate::offline::build_flat_index(&g2, &hubs, &config, 1);
        assert_eq!(flat.hub_count(), rebuilt.hub_count());
        for &h in hubs.ids() {
            assert_eq!(flat.load(h).unwrap(), rebuilt.load(h).unwrap(), "hub {h}");
            assert_eq!(
                flat.border_sublist(h).unwrap().0,
                rebuilt.border_sublist(h).unwrap().0,
                "hub {h} border sublist"
            );
        }
        assert!(stats.recomputed > 0);
    }

    #[test]
    fn snapshot_refresh_leaves_old_arena_untouched() {
        let g = barabasi_albert(250, 3, 7);
        let hubs = select_hubs(&g, HubPolicy::ExpectedUtility, 25, 0);
        let config = Config::default();
        let (flat, _) = crate::offline::build_flat_index(&g, &hubs, &config, 1);
        let before: Vec<_> = hubs.ids().iter().map(|&h| flat.load(h).unwrap()).collect();
        let u = (0..250u32).find(|&v| !hubs.is_hub(v)).unwrap();
        let g2 = add_edge(&g, u, (u + 17) % 250);
        let (next, stats) = refresh_flat_index_snapshot(&flat, &g, &g2, &hubs, &[u], &config);
        assert!(stats.recomputed > 0);
        // The old arena still answers exactly as before the update…
        for (&h, old) in hubs.ids().iter().zip(&before) {
            assert_eq!(flat.load(h).unwrap(), *old, "hub {h} must be untouched");
        }
        // …and the new one matches a from-scratch build of the new graph.
        let (rebuilt, _) = crate::offline::build_flat_index(&g2, &hubs, &config, 1);
        for &h in hubs.ids() {
            assert_eq!(next.load(h).unwrap(), rebuilt.load(h).unwrap(), "hub {h}");
        }
    }

    #[test]
    fn refresh_handles_deletion_via_old_graph() {
        let g = barabasi_albert(200, 3, 11);
        let hubs = select_hubs(&g, HubPolicy::ExpectedUtility, 20, 0);
        let config = Config::default();
        let u = (0..200u32).find(|&v| !hubs.is_hub(v)).unwrap();
        let v = g.out_neighbors(u)[0];
        // Delete edge (u, v).
        let mut b = GraphBuilder::new(200);
        let mut removed = false;
        for (s, t) in g.edges() {
            if !removed && s == u && t == v {
                removed = true;
                continue;
            }
            b.add_edge(s, t);
        }
        let g2 = b.build();
        let (old_index, _) = build_index(&g, &hubs, &config);
        let (refreshed, _) = refresh_index(&old_index, &g, &g2, &hubs, &[u], &config);
        let (rebuilt, _) = build_index(&g2, &hubs, &config);
        for &h in hubs.ids() {
            assert_eq!(
                refreshed.get(h).unwrap().entries,
                rebuilt.get(h).unwrap().entries,
                "hub {h}"
            );
        }
    }

    #[test]
    fn refresh_is_much_cheaper_than_rebuild() {
        let g = barabasi_albert(400, 3, 3);
        let hubs = select_hubs(&g, HubPolicy::ExpectedUtility, 60, 0);
        // ε must match the graph's scale for refresh locality: at 1e-8 a
        // 14-step hub-free reverse walk still counts as a dependency, which
        // on a 400-node small-world graph reaches every hub (correctly —
        // refresh_matches_full_rebuild pins the semantics). At 1e-4 the
        // dependence sets are genuinely local (~18 of 60 hubs here).
        let config = Config::default().with_epsilon(1e-4);
        let (old_index, _) = build_index(&g, &hubs, &config);
        let u = (0..400u32).find(|&v| !hubs.is_hub(v)).unwrap();
        let g2 = add_edge(&g, u, (u + 31) % 400);
        let (_, stats) = refresh_index(&old_index, &g, &g2, &hubs, &[u], &config);
        assert!(
            stats.recomputed < hubs.len() / 2,
            "recomputed {} of {} hubs",
            stats.recomputed,
            hubs.len()
        );
    }
}
