//! Incremental index maintenance under graph updates.
//!
//! The paper's future work (§7) sketches the idea: "a simple idea to process
//! graph updates is to only re-compute the affected prime PPVs, without
//! touching the unaffected ones". This module implements it — twice.
//!
//! **Invalidation.** A hub `h`'s prime PPV depends only on its prime
//! subgraph `G'(h)`, and an edge change at tail `u` can alter `G'(h)` only
//! if `u` is an *expanded* (propagating) node of `G'(h)` — i.e. there is a
//! hub-free walk `h ⇝ u` with probability ≥ ε and `u` is not itself a hub
//! (hubs absorb; nothing beyond them is explored, and entries *at* `u` only
//! depend on the out-degrees of nodes strictly before `u`).
//! [`affected_hubs`] finds that set with a reverse max-probability search;
//! [`ReverseScratch`] seeds one such search with a whole batch of tails at
//! once (the fixed point of max-relaxation from all seeds is exactly the
//! union of the per-seed fixed points), so a k-event batch costs one pass
//! and zero per-event allocation. For deletions, walks that existed only in
//! the old graph matter too, so invalidation runs on both graphs.
//!
//! **Exact refresh.** [`refresh_index`] / [`refresh_flat_index`] recompute
//! every dirty hub's prime PPV from scratch and share (memory) or keep
//! (flat arena) the rest. Correct, but a single edge event near a
//! well-connected node dirties many hubs and costs a full extract + solve
//! for each — the streaming-update throughput blocker.
//!
//! **Delta refresh.** [`refresh_index_delta`] and friends instead *patch*
//! each dirty hub's stored PPV. The stored vector `S` is read as settled
//! mass `m̂ = S/α` of a forward push whose invariant is
//! `ρ = e_σ + (1-α)·Pᵀm̂ − m̂` (the virtual start node `σ` carries the
//! source hub's out-row with unit mass; hubs — the source included — never
//! re-propagate). An edge change at tail `u` alters only `u`'s row of `P`,
//! so the invariant is restored *exactly* by injecting
//! `m̂(u)·(1-α)·(new_row − old_row)` as signed residual and pushing it
//! forward through the full graph with hub absorption
//! ([`DeltaPush`]). Tails with no stored entry inject nothing (the
//! maintained state has no mass there), so most dirty hubs turn out to be
//! no-op patches.
//!
//! **Error budget.** The patch is inexact in two places, both charged to a
//! per-hub accumulated budget stored alongside the index entry
//! ([`MemoryIndex::budget_spent`] / [`FlatIndex::budget_spent`]):
//!
//! * push **leftover** — Σ|residual| never settled (sub-threshold crumbs,
//!   or the settle safety valve). One unit of residual mass yields at most
//!   one unit of score L1 (`α·Σ(1-α)^i = 1`), so the mass-unit leftover
//!   bounds the score-L1 error directly;
//! * **clamp loss** — a patched entry that would go negative (possible
//!   because stored entries were clipped) is clamped to absent; storing `0`
//!   instead of `v < 0` perturbs `m̂` by `|v|/α`, and a point perturbation
//!   `δ` of `m̂` moves the invariant by at most `2δ` in mass units —
//!   charged as `2|v|/α`.
//!
//! When a hub's accumulated spend would exceed [`DeltaConfig::budget`], it
//! falls back to an exact recompute, which resets its spend to zero. Every
//! served PPV therefore stays within `budget` (score L1) of an exact
//! recompute, on top of the baseline approximation the index already
//! carries (clip/ε/solve-tolerance crumbs — which the query layer's φ
//! accounting absorbs as unretained mass). `budget = 0` disables the delta
//! path entirely: [`DeltaConfig::exact`] makes the `_delta` entry points
//! bit-identical to the exact refreshers, which are thin wrappers over
//! them.

use std::time::{Duration, Instant};

use fastppv_graph::{Graph, NodeId, SparseVector};

use crate::config::Config;
use crate::hubs::HubSet;
use crate::index::{FlatIndex, MemoryIndex, PpvRef, PpvStore, PrimePpv};
use crate::prime::{BucketQueue, DeltaPush, PrimeComputer};

/// Hubs whose prime PPV depends on the out-edges of `u` in `graph`:
/// `{h ∈ H : u is an expanded node of G'(h)}`, found by a reverse
/// max-probability search from `u` over hub-free interiors — driven by the
/// same monotone [`BucketQueue`] as the forward extraction kernel, so the
/// set is exact and pop-order independent (see [`crate::prime`]).
///
/// One-shot convenience over [`ReverseScratch`]; batch callers should hold
/// a scratch and seed all tails at once.
pub fn affected_hubs(
    graph: &Graph,
    hubs: &HubSet,
    u: NodeId,
    epsilon: f64,
    alpha: f64,
) -> Vec<NodeId> {
    assert!((u as usize) < graph.num_nodes());
    let mut scratch = ReverseScratch::new(graph.num_nodes());
    let mut dirty = vec![false; graph.num_nodes()];
    scratch.mark_affected(graph, hubs, &[u], epsilon, alpha, &mut dirty);
    let mut affected: Vec<NodeId> = hubs
        .ids()
        .iter()
        .copied()
        .filter(|&h| dirty[h as usize])
        .collect();
    affected.sort_unstable();
    affected
}

/// Reusable scratch for the reverse dependence search: one graph-sized
/// `best` array, one reached list, one [`BucketQueue`] — shared by every
/// tail of a batch and across batches, so invalidating a k-event batch is
/// one multi-source pass instead of k searches with k fresh `O(n)`
/// allocations.
pub struct ReverseScratch {
    best: Vec<f64>,
    reached: Vec<NodeId>,
    queue: BucketQueue,
}

impl ReverseScratch {
    /// A scratch for graphs of up to `n` nodes.
    pub fn new(n: usize) -> Self {
        ReverseScratch {
            best: vec![0.0; n],
            reached: Vec::new(),
            queue: BucketQueue::new(),
        }
    }

    /// Number of node slots.
    pub fn capacity(&self) -> usize {
        self.best.len()
    }

    /// Sets `dirty[h] = true` for every hub whose prime PPV depends on the
    /// out-row of any tail in `tails` (out-of-range tails are skipped —
    /// the old-graph pass of a node-growing update). All tails seed one
    /// search: `best` converges to the max over seeds of the best hub-free
    /// walk probability, whose ≥ ε sublevel set is exactly the union of
    /// the per-seed reached sets, since per-step thresholding and
    /// end-to-end thresholding agree for monotonically decaying walk
    /// probabilities. Hub tails are their own sole dependents and are
    /// marked directly, never seeded.
    pub fn mark_affected(
        &mut self,
        graph: &Graph,
        hubs: &HubSet,
        tails: &[NodeId],
        epsilon: f64,
        alpha: f64,
        dirty: &mut [bool],
    ) {
        debug_assert!(self.best.len() >= graph.num_nodes());
        self.queue.configure(alpha);
        for &u in tails {
            if (u as usize) >= graph.num_nodes() {
                continue;
            }
            if hubs.is_hub(u) {
                dirty[u as usize] = true;
                continue;
            }
            if self.best[u as usize] == 0.0 {
                self.reached.push(u);
            }
            self.best[u as usize] = 1.0;
            self.queue.push(1.0, u);
        }
        // best[x] = max probability of a walk x ⇝ some seed whose interior
        // (nodes strictly between x and the seed) is hub-free. Relaxing
        // x's in-neighbors is only sound when x itself may be interior,
        // i.e. x is not a hub; the reached set {x : best(x) ≥ ε} is a
        // fixed point of max-relaxation, so it does not depend on the
        // (quantized) pop order.
        while let Some((p, x)) = self.queue.pop() {
            if p != self.best[x as usize] {
                continue; // stale entry
            }
            if hubs.is_hub(x) {
                continue; // x would be interior for any longer walk: stop
            }
            for &y in graph.in_neighbors(x) {
                let d = graph.out_degree(y);
                if d == 0 {
                    continue;
                }
                let w = p * (1.0 - alpha) / d as f64;
                if w >= epsilon && w > self.best[y as usize] {
                    if self.best[y as usize] == 0.0 {
                        self.reached.push(y);
                    }
                    self.best[y as usize] = w;
                    self.queue.push(w, y);
                }
            }
        }
        for &x in &self.reached {
            if hubs.is_hub(x) {
                dirty[x as usize] = true;
            }
            self.best[x as usize] = 0.0;
        }
        self.reached.clear();
    }
}

/// Tuning of the delta-propagation patch path.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DeltaConfig {
    /// Per-hub accumulated error budget, in score-L1 units: the maximum
    /// certified distance between a served (patched) prime PPV and an
    /// exact recompute. Exceeding it triggers an exact recompute for that
    /// hub (resetting its spend). `0` disables the delta path — every
    /// dirty hub recomputes, exactly like [`refresh_index`].
    pub budget: f64,
    /// Residual magnitude (mass units) below which [`DeltaPush`] does not
    /// propagate; sub-threshold crumbs are charged to the budget instead.
    pub push_threshold: f64,
    /// Safety cap on push settles per patch; a truncated push falls back
    /// to exact recompute.
    pub max_settles: usize,
}

impl Default for DeltaConfig {
    fn default() -> Self {
        DeltaConfig {
            budget: 0.01,
            push_threshold: 1e-9,
            max_settles: 1_000_000,
        }
    }
}

impl DeltaConfig {
    /// A configuration with the delta path disabled: every dirty hub is
    /// recomputed exactly. The exact refreshers are wrappers over this.
    pub fn exact() -> Self {
        DeltaConfig {
            budget: 0.0,
            ..DeltaConfig::default()
        }
    }

    /// Sets the per-hub error budget.
    pub fn with_budget(mut self, budget: f64) -> Self {
        self.budget = budget;
        self
    }

    /// Panics if any parameter is out of its valid range.
    pub fn validate(&self) {
        assert!(
            self.budget >= 0.0 && self.budget.is_finite(),
            "delta budget must be finite and ≥ 0, got {}",
            self.budget
        );
        assert!(
            self.push_threshold > 0.0,
            "push_threshold must be > 0, got {}",
            self.push_threshold
        );
        assert!(self.max_settles > 0, "max_settles must be > 0");
    }
}

/// Statistics from an index refresh.
#[derive(Clone, Copy, Debug, Default)]
pub struct RefreshStats {
    /// Hubs whose prime PPVs were recomputed exactly (dirty hubs the delta
    /// path declined — budget exhausted, push truncated, or delta
    /// disabled — plus hubs missing from the old index).
    pub recomputed: usize,
    /// Dirty hubs resolved by the delta patch path (includes
    /// [`RefreshStats::delta_noop`]).
    pub delta_patched: usize,
    /// Delta-patched hubs whose patch turned out empty — the perturbation
    /// never touched their stored mass, so the segment was not rewritten
    /// (the common case for far-away events).
    pub delta_noop: usize,
    /// Hubs reused unchanged (not dirty).
    pub reused: usize,
    /// Largest per-hub accumulated budget spend in the refreshed index —
    /// ≤ [`DeltaConfig::budget`] by construction (exceeding it forces a
    /// recompute, which resets the hub's spend to zero).
    pub budget_watermark: f64,
    /// Snapshot-clone time (zero for in-place refreshes). The clone is
    /// shallow — chunks are `Arc`-shared and only the per-hub directory is
    /// copied — so this is microseconds even on arenas where the old deep
    /// copy took tens of seconds. Included in `elapsed`; reported
    /// separately so a regression back to deep copying is visible.
    pub clone_elapsed: Duration,
    /// Wall-clock time of the whole refresh, clone included.
    pub elapsed: Duration,
    /// Chunk bytes deep-copied during this refresh (compaction rewrites;
    /// tombstone patches and shallow clones contribute zero). Only the
    /// flat-arena refresh paths fill this; [`MemoryIndex`]-based refreshes
    /// leave it 0.
    pub cloned_bytes: u64,
    /// [`FlatIndex::resident_bytes`] of the refreshed arena (0 for
    /// [`MemoryIndex`]-based refreshes).
    pub resident_bytes: usize,
    /// [`FlatIndex::mapped_bytes`] of the refreshed arena (0 for
    /// [`MemoryIndex`]-based refreshes).
    pub mapped_bytes: usize,
}

impl RefreshStats {
    /// Hubs invalidated by the batch: `recomputed + delta_patched`.
    pub fn dirty(&self) -> usize {
        self.recomputed + self.delta_patched
    }
}

/// Whether `old` and `new` agree on node count, edge count, and the
/// out-rows of every changed tail. Under the update contract (all edge
/// changes have their tails listed in `changed_tails`) this means the
/// batch was vacuous — the serving layer uses it to skip publishing an
/// epoch (and evicting the warm cache) for no-op batches.
pub fn same_adjacency(old: &Graph, new: &Graph, changed_tails: &[NodeId]) -> bool {
    old.num_nodes() == new.num_nodes()
        && old.num_edges() == new.num_edges()
        && changed_tails.iter().all(|&u| {
            (u as usize) < old.num_nodes() && old.out_neighbors(u) == new.out_neighbors(u)
        })
}

/// The per-node dirty mask of an edge batch: true for every hub whose
/// prime PPV may have changed. `old_graph` is consulted so that deletions
/// (walks that existed only before the change) also invalidate their
/// dependents.
fn dirty_hubs(
    scratch: &mut ReverseScratch,
    old_graph: &Graph,
    new_graph: &Graph,
    hubs: &HubSet,
    changed_tails: &[NodeId],
    config: &Config,
) -> Vec<bool> {
    let mut dirty = vec![false; new_graph.num_nodes()];
    scratch.mark_affected(
        new_graph,
        hubs,
        changed_tails,
        config.epsilon,
        config.alpha,
        &mut dirty,
    );
    scratch.mark_affected(
        old_graph,
        hubs,
        changed_tails,
        config.epsilon,
        config.alpha,
        &mut dirty,
    );
    dirty
}

/// Sorted, deduplicated copy of an event batch's tails. Dedup is
/// load-bearing for the delta path: each tail's row swap must be injected
/// exactly once per hub.
fn dedup_tails(changed_tails: &[NodeId]) -> Vec<NodeId> {
    let mut tails = changed_tails.to_vec();
    tails.sort_unstable();
    tails.dedup();
    tails
}

/// How a dirty hub was resolved.
enum Patch {
    /// Delta declined; recompute the prime PPV exactly.
    Recompute,
    /// The perturbation never reached the stored mass: keep the stored
    /// PPV, carry the (leftover-charged) spend.
    Unchanged { spent: f64 },
    /// Merged entries are in the scratch; store them with this spend.
    Patched { spent: f64 },
}

/// Mutable state of the delta patch path, reused across hubs and batches.
struct DeltaScratch {
    push: DeltaPush,
    deposits: Vec<(NodeId, f64)>,
    merged: Vec<(NodeId, f64)>,
}

impl DeltaScratch {
    fn new(n: usize) -> Self {
        DeltaScratch {
            push: DeltaPush::new(n),
            deposits: Vec::new(),
            merged: Vec::new(),
        }
    }
}

#[inline]
fn view_entry(view: &PpvRef<'_>, i: usize) -> (NodeId, f64) {
    match view {
        PpvRef::Soa { ids, scores } => (ids[i], scores[i]),
        PpvRef::Aos(entries) => entries[i],
        PpvRef::Owned(ppv) => ppv.entries.entries()[i],
    }
}

/// Injects `scale / row.len()` at every target of `row` (parallel edges
/// contribute once per occurrence, matching the solver's degree counting).
fn inject_row(push: &mut DeltaPush, row: &[NodeId], scale: f64) {
    if row.is_empty() {
        return; // dangling rows absorb: no transition mass to perturb
    }
    let share = scale / row.len() as f64;
    for &t in row {
        push.inject(t, share);
    }
}

#[inline]
fn merge_entry(out: &mut Vec<(NodeId, f64)>, clamp_loss: &mut f64, id: NodeId, s: f64) {
    if s > 0.0 {
        out.push((id, s));
    } else if s < 0.0 {
        *clamp_loss += -s;
    }
    // s == 0.0 exactly: absent and value zero are the same state — free.
}

/// Merges sorted score deltas into a stored view: `out = view + deposits`,
/// ascending, entries clamped at zero. Returns the total clamped magnitude
/// in score units (the caller charges `2·loss/α` to the budget).
fn merge_patch(view: &PpvRef<'_>, deposits: &[(NodeId, f64)], out: &mut Vec<(NodeId, f64)>) -> f64 {
    out.clear();
    out.reserve(view.len() + deposits.len());
    let mut clamp_loss = 0.0f64;
    let (mut i, mut j) = (0usize, 0usize);
    let n_view = view.len();
    while i < n_view && j < deposits.len() {
        let (vid, vs) = view_entry(view, i);
        let (did, ds) = deposits[j];
        if vid < did {
            out.push((vid, vs));
            i += 1;
        } else if did < vid {
            merge_entry(out, &mut clamp_loss, did, ds);
            j += 1;
        } else {
            merge_entry(out, &mut clamp_loss, vid, vs + ds);
            i += 1;
            j += 1;
        }
    }
    while i < n_view {
        out.push(view_entry(view, i));
        i += 1;
    }
    while j < deposits.len() {
        let (did, ds) = deposits[j];
        merge_entry(out, &mut clamp_loss, did, ds);
        j += 1;
    }
    clamp_loss
}

/// Attempts to patch one dirty hub's stored PPV in place of an exact
/// recompute. `tails` must be deduplicated. On [`Patch::Patched`] the
/// merged entries are left in `scratch.merged`.
#[allow(clippy::too_many_arguments)]
fn try_delta_patch(
    view: &PpvRef<'_>,
    spent_old: f64,
    hub: NodeId,
    old_graph: &Graph,
    new_graph: &Graph,
    hubs: &HubSet,
    tails: &[NodeId],
    config: &Config,
    delta: &DeltaConfig,
    scratch: &mut DeltaScratch,
) -> Patch {
    let alpha = config.alpha;
    for &u in tails {
        if hubs.is_hub(u) && u != hub {
            continue; // another hub's row never propagates inside G'(hub)
        }
        // Settled mass sitting on u's row in the maintained state. The
        // source hub is the virtual start node: its row carries unit mass
        // (its stored returns absorb and add nothing).
        let m = if u == hub {
            1.0
        } else {
            match view.score_of(u) {
                Some(s) if s != 0.0 => s / alpha,
                // No stored mass at u: the row swap is exactly invisible
                // to this hub's maintained state.
                _ => continue,
            }
        };
        let old_row = if (u as usize) < old_graph.num_nodes() {
            old_graph.out_neighbors(u)
        } else {
            &[][..]
        };
        let new_row = if (u as usize) < new_graph.num_nodes() {
            new_graph.out_neighbors(u)
        } else {
            &[][..]
        };
        if old_row == new_row {
            continue;
        }
        inject_row(&mut scratch.push, old_row, -m * (1.0 - alpha));
        inject_row(&mut scratch.push, new_row, m * (1.0 - alpha));
    }
    let outcome = scratch.push.run(
        new_graph,
        hubs,
        alpha,
        delta.push_threshold,
        delta.max_settles,
    );
    let mut spent = spent_old + outcome.leftover;
    if outcome.truncated || spent > delta.budget {
        scratch.push.reset();
        return Patch::Recompute;
    }
    scratch.push.drain_deposits(&mut scratch.deposits);
    if scratch.deposits.is_empty() {
        return Patch::Unchanged { spent };
    }
    let clamp_loss = merge_patch(view, &scratch.deposits, &mut scratch.merged);
    spent += 2.0 * clamp_loss / alpha;
    if spent > delta.budget {
        return Patch::Recompute;
    }
    Patch::Patched { spent }
}

/// Refreshes `old_index` after edge updates, recomputing only affected hubs.
///
/// `changed_tails` are the source nodes of every inserted or deleted edge.
/// `old_graph` is consulted so that deletions (walks that existed only
/// before the change) also invalidate their dependents; pass the same graph
/// twice for pure insertions. Unaffected PPVs are shared with the old
/// index (`Arc` handles, no entry copies).
///
/// Every dirty hub is recomputed exactly; this is
/// [`refresh_index_delta`] with [`DeltaConfig::exact`].
pub fn refresh_index(
    old_index: &MemoryIndex,
    old_graph: &Graph,
    new_graph: &Graph,
    hubs: &HubSet,
    changed_tails: &[NodeId],
    config: &Config,
) -> (MemoryIndex, RefreshStats) {
    refresh_index_delta(
        old_index,
        old_graph,
        new_graph,
        hubs,
        changed_tails,
        config,
        &DeltaConfig::exact(),
    )
}

/// [`refresh_index`] with the delta patch path: dirty hubs whose
/// perturbation can be pushed within the per-hub error budget are patched
/// (or kept untouched when the patch is empty) instead of recomputed. See
/// the module docs for the accounting.
pub fn refresh_index_delta(
    old_index: &MemoryIndex,
    old_graph: &Graph,
    new_graph: &Graph,
    hubs: &HubSet,
    changed_tails: &[NodeId],
    config: &Config,
    delta: &DeltaConfig,
) -> (MemoryIndex, RefreshStats) {
    refresh_index_delta_subset(
        old_index,
        old_graph,
        new_graph,
        hubs,
        hubs.ids(),
        changed_tails,
        config,
        delta,
    )
}

/// [`refresh_index_delta`] restricted to `subset`: only the listed hubs
/// are carried into (and, when dirty, recomputed for) the refreshed index.
/// This is the shard-side refresh — a shard's store holds only the hubs it
/// owns, and a full-hub-set refresh would recompute every *missing* hub
/// and balloon the partial store back to a full copy. `hubs` must still be
/// the **full** hub set (it defines prime-PPV semantics: which nodes stop
/// tours); `subset` picks which of them this store materializes. Every
/// subset member must be a hub.
#[allow(clippy::too_many_arguments)]
pub fn refresh_index_delta_subset(
    old_index: &MemoryIndex,
    old_graph: &Graph,
    new_graph: &Graph,
    hubs: &HubSet,
    subset: &[NodeId],
    changed_tails: &[NodeId],
    config: &Config,
    delta: &DeltaConfig,
) -> (MemoryIndex, RefreshStats) {
    config.validate();
    delta.validate();
    let start = Instant::now();
    let n = new_graph.num_nodes();
    let tails = dedup_tails(changed_tails);
    let mut reverse = ReverseScratch::new(n.max(old_graph.num_nodes()));
    let dirty = dirty_hubs(&mut reverse, old_graph, new_graph, hubs, &tails, config);
    // The push scratch is sized for (and runs on) the new graph; a node
    // count change would let old-row injections land out of range.
    let delta_enabled = delta.budget > 0.0 && old_graph.num_nodes() == n;
    let mut index = MemoryIndex::new(n);
    let mut pc: Option<PrimeComputer> = None;
    let mut ds: Option<DeltaScratch> = None;
    let mut stats = RefreshStats::default();
    for &h in subset {
        assert!(hubs.is_hub(h), "subset member {h} is not a hub");
        let present = old_index.contains(h);
        if present && !dirty[h as usize] {
            index.insert_shared(h, old_index.get_shared(h).expect("checked contains"));
            index.set_budget_spent(h, old_index.budget_spent(h));
            stats.reused += 1;
            continue;
        }
        let patch = if present && delta_enabled {
            let scratch = ds.get_or_insert_with(|| DeltaScratch::new(n));
            let view = old_index.view(h).expect("checked contains");
            try_delta_patch(
                &view,
                old_index.budget_spent(h),
                h,
                old_graph,
                new_graph,
                hubs,
                &tails,
                config,
                delta,
                scratch,
            )
        } else {
            Patch::Recompute
        };
        match patch {
            Patch::Recompute => {
                let pc = pc.get_or_insert_with(|| PrimeComputer::new(n));
                let (ppv, _) = pc.prime_ppv(new_graph, hubs, h, config, config.clip);
                index.insert(h, ppv);
                stats.recomputed += 1;
            }
            Patch::Unchanged { spent } => {
                index.insert_shared(h, old_index.get_shared(h).expect("checked contains"));
                index.set_budget_spent(h, spent);
                stats.delta_patched += 1;
                stats.delta_noop += 1;
            }
            Patch::Patched { spent } => {
                let scratch = ds.as_mut().expect("patched implies scratch");
                let entries = std::mem::take(&mut scratch.merged);
                index.insert(
                    h,
                    PrimePpv {
                        entries: SparseVector::from_sorted(entries),
                    },
                );
                index.set_budget_spent(h, spent);
                stats.delta_patched += 1;
            }
        }
    }
    stats.budget_watermark = index.budget_watermark();
    stats.elapsed = start.elapsed();
    (index, stats)
}

/// Refreshes a [`FlatIndex`] arena in place after edge updates: affected
/// hubs are recomputed and patched via [`FlatIndex::replace`]
/// (tombstone-and-append; the arena compacts itself once dead entries
/// cross [`FlatIndex::COMPACTION_THRESHOLD`]). Unaffected segments are
/// untouched — no entry is copied for them.
///
/// `changed_tails` as in [`refresh_index`]. The arena must cover
/// `new_graph` (node additions require a rebuild via
/// [`crate::offline::build_flat_index`]).
///
/// Every dirty hub is recomputed exactly; this is
/// [`refresh_flat_index_delta`] with [`DeltaConfig::exact`].
pub fn refresh_flat_index(
    index: &mut FlatIndex,
    old_graph: &Graph,
    new_graph: &Graph,
    hubs: &HubSet,
    changed_tails: &[NodeId],
    config: &Config,
) -> RefreshStats {
    refresh_flat_index_delta(
        index,
        old_graph,
        new_graph,
        hubs,
        changed_tails,
        config,
        &DeltaConfig::exact(),
    )
}

/// [`refresh_flat_index`] with the delta patch path. Patched segments go
/// through [`FlatIndex::replace_entries`] straight from the merge scratch;
/// empty patches leave the segment untouched entirely (no tombstone, no
/// arena growth) and only bump the slot's budget spend.
#[allow(clippy::too_many_arguments)]
pub fn refresh_flat_index_delta(
    index: &mut FlatIndex,
    old_graph: &Graph,
    new_graph: &Graph,
    hubs: &HubSet,
    changed_tails: &[NodeId],
    config: &Config,
    delta: &DeltaConfig,
) -> RefreshStats {
    config.validate();
    delta.validate();
    assert!(
        index.capacity() >= new_graph.num_nodes(),
        "arena sized for {} nodes, graph has {} (rebuild instead)",
        index.capacity(),
        new_graph.num_nodes()
    );
    let start = Instant::now();
    let cloned_before = index.bytes_cloned();
    let n = new_graph.num_nodes();
    let tails = dedup_tails(changed_tails);
    let mut reverse = ReverseScratch::new(n.max(old_graph.num_nodes()));
    let dirty = dirty_hubs(&mut reverse, old_graph, new_graph, hubs, &tails, config);
    let delta_enabled = delta.budget > 0.0 && old_graph.num_nodes() == n;
    let mut pc: Option<PrimeComputer> = None;
    let mut ds: Option<DeltaScratch> = None;
    let mut stats = RefreshStats::default();
    for &h in hubs.ids() {
        let present = index.contains(h);
        if present && !dirty[h as usize] {
            stats.reused += 1;
            continue;
        }
        let patch = if present && delta_enabled {
            let scratch = ds.get_or_insert_with(|| DeltaScratch::new(n));
            let view = index.view(h).expect("checked contains");
            try_delta_patch(
                &view,
                index.budget_spent(h),
                h,
                old_graph,
                new_graph,
                hubs,
                &tails,
                config,
                delta,
                scratch,
            )
        } else {
            Patch::Recompute
        };
        match patch {
            Patch::Recompute => {
                let pc = pc.get_or_insert_with(|| PrimeComputer::new(n));
                let (ppv, _) = pc.prime_ppv(new_graph, hubs, h, config, config.clip);
                index.replace(h, &ppv, hubs);
                stats.recomputed += 1;
            }
            Patch::Unchanged { spent } => {
                index.set_budget_spent(h, spent);
                stats.delta_patched += 1;
                stats.delta_noop += 1;
            }
            Patch::Patched { spent } => {
                let scratch = ds.as_ref().expect("patched implies scratch");
                index.replace_entries(h, &scratch.merged, hubs);
                index.set_budget_spent(h, spent);
                stats.delta_patched += 1;
            }
        }
    }
    stats.budget_watermark = index.budget_watermark();
    stats.cloned_bytes = index.bytes_cloned() - cloned_before;
    stats.resident_bytes = index.resident_bytes();
    stats.mapped_bytes = index.mapped_bytes();
    stats.elapsed = start.elapsed();
    stats
}

/// Snapshot-style counterpart of [`refresh_flat_index`]: leaves `old`
/// untouched and returns a freshly patched arena. This is the entry point
/// an epoch-snapshot service wants — readers pinning the old arena (behind
/// an `Arc` swap cell) keep seeing it undisturbed while the clone is
/// patched and published as the next epoch's store.
///
/// The clone is *shallow*: the arena chunks are `Arc`-shared with the old
/// snapshot and only the per-hub directory is copied, so publishing costs
/// microseconds regardless of arena size. Patches seal shared chunks and
/// append to fresh ones (copy-on-write at chunk granularity) — readers
/// pinning the old arena keep seeing every byte of it undisturbed. Clone
/// cost is included in [`RefreshStats::elapsed`] and broken out in
/// [`RefreshStats::clone_elapsed`]; bulk bytes copied by compactions show
/// up in [`RefreshStats::cloned_bytes`].
pub fn refresh_flat_index_snapshot(
    old: &FlatIndex,
    old_graph: &Graph,
    new_graph: &Graph,
    hubs: &HubSet,
    changed_tails: &[NodeId],
    config: &Config,
) -> (FlatIndex, RefreshStats) {
    refresh_flat_index_snapshot_delta(
        old,
        old_graph,
        new_graph,
        hubs,
        changed_tails,
        config,
        &DeltaConfig::exact(),
    )
}

/// [`refresh_flat_index_snapshot`] with the delta patch path.
#[allow(clippy::too_many_arguments)]
pub fn refresh_flat_index_snapshot_delta(
    old: &FlatIndex,
    old_graph: &Graph,
    new_graph: &Graph,
    hubs: &HubSet,
    changed_tails: &[NodeId],
    config: &Config,
    delta: &DeltaConfig,
) -> (FlatIndex, RefreshStats) {
    let clone_start = Instant::now();
    let mut next = old.clone();
    let clone_elapsed = clone_start.elapsed();
    let mut stats = refresh_flat_index_delta(
        &mut next,
        old_graph,
        new_graph,
        hubs,
        changed_tails,
        config,
        delta,
    );
    stats.clone_elapsed = clone_elapsed;
    stats.elapsed += clone_elapsed;
    (next, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hubs::{select_hubs, HubPolicy};
    use crate::offline::build_index;
    use fastppv_graph::gen::barabasi_albert;
    use fastppv_graph::{Graph, GraphBuilder};

    fn add_edge(graph: &Graph, u: NodeId, v: NodeId) -> Graph {
        let mut b = GraphBuilder::new(graph.num_nodes());
        for (s, t) in graph.edges() {
            // Drop the dangling-fix self-loop if the node gains a real edge.
            if s == t && s == u {
                continue;
            }
            b.add_edge(s, t);
        }
        b.add_edge(u, v);
        b.build()
    }

    fn remove_edge(graph: &Graph, u: NodeId, v: NodeId) -> Graph {
        let mut b = GraphBuilder::new(graph.num_nodes());
        let mut removed = false;
        let mut remaining = 0usize;
        for (s, t) in graph.edges() {
            if s == u {
                if !removed && t == v {
                    removed = true;
                    continue;
                }
                remaining += 1;
            }
            b.add_edge(s, t);
        }
        assert!(removed, "edge ({u}, {v}) not present");
        if remaining == 0 {
            b.add_edge(u, u); // keep the dangling-fix invariant
        }
        b.build()
    }

    /// L1 distance between two sorted sparse entry lists.
    fn entries_l1(a: &[(NodeId, f64)], b: &[(NodeId, f64)]) -> f64 {
        let mut d = 0.0;
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            if a[i].0 < b[j].0 {
                d += a[i].1.abs();
                i += 1;
            } else if b[j].0 < a[i].0 {
                d += b[j].1.abs();
                j += 1;
            } else {
                d += (a[i].1 - b[j].1).abs();
                i += 1;
                j += 1;
            }
        }
        d += a[i..].iter().map(|&(_, s)| s.abs()).sum::<f64>();
        d += b[j..].iter().map(|&(_, s)| s.abs()).sum::<f64>();
        d
    }

    #[test]
    fn hub_tail_affects_only_itself() {
        let g = barabasi_albert(200, 3, 1);
        let hubs = select_hubs(&g, HubPolicy::ExpectedUtility, 20, 0);
        let h = hubs.ids()[0];
        let affected = affected_hubs(&g, &hubs, h, 1e-8, 0.15);
        assert_eq!(affected, vec![h]);
    }

    #[test]
    fn affected_set_contains_upstream_hubs_only() {
        let g = barabasi_albert(300, 3, 2);
        let hubs = select_hubs(&g, HubPolicy::ExpectedUtility, 30, 0);
        // Pick a non-hub node.
        let u = (0..300u32).find(|&v| !hubs.is_hub(v)).unwrap();
        let affected = affected_hubs(&g, &hubs, u, 1e-8, 0.15);
        for &h in &affected {
            assert!(hubs.is_hub(h));
        }
        // Larger epsilon shrinks (or keeps) the affected set.
        let smaller = affected_hubs(&g, &hubs, u, 1e-3, 0.15);
        assert!(smaller.len() <= affected.len());
    }

    #[test]
    fn multi_source_search_equals_union_of_single_sources() {
        let g = barabasi_albert(300, 3, 5);
        let hubs = select_hubs(&g, HubPolicy::ExpectedUtility, 30, 0);
        let tails: Vec<NodeId> = vec![4, 17, 17, 42, hubs.ids()[3], 201];
        for epsilon in [1e-3, 1e-5, 1e-8] {
            let mut union = vec![false; 300];
            for &u in &tails {
                for h in affected_hubs(&g, &hubs, u, epsilon, 0.15) {
                    union[h as usize] = true;
                }
            }
            let mut scratch = ReverseScratch::new(300);
            let mut multi = vec![false; 300];
            scratch.mark_affected(&g, &hubs, &tails, epsilon, 0.15, &mut multi);
            assert_eq!(multi, union, "epsilon {epsilon}");
            // The scratch resets itself: a second batch sees clean state.
            let mut again = vec![false; 300];
            scratch.mark_affected(&g, &hubs, &tails, epsilon, 0.15, &mut again);
            assert_eq!(again, union, "epsilon {epsilon} (scratch reuse)");
        }
    }

    #[test]
    fn refresh_matches_full_rebuild() {
        let g = barabasi_albert(250, 3, 7);
        let hubs = select_hubs(&g, HubPolicy::ExpectedUtility, 25, 0);
        let config = Config::default();
        let (old_index, _) = build_index(&g, &hubs, &config);
        // Insert an edge from a non-hub node.
        let u = (0..250u32).find(|&v| !hubs.is_hub(v)).unwrap();
        let v = (u + 17) % 250;
        let g2 = add_edge(&g, u, v);
        let (refreshed, stats) = refresh_index(&old_index, &g, &g2, &hubs, &[u], &config);
        let (rebuilt, _) = build_index(&g2, &hubs, &config);
        assert_eq!(refreshed.hub_count(), rebuilt.hub_count());
        for &h in hubs.ids() {
            assert_eq!(
                refreshed.get(h).unwrap().entries,
                rebuilt.get(h).unwrap().entries,
                "hub {h}"
            );
        }
        assert!(stats.recomputed > 0);
        assert_eq!(stats.delta_patched, 0, "exact refresh never patches");
        assert_eq!(stats.budget_watermark, 0.0);
        // (Locality — reused > 0 — is asserted in
        // refresh_is_much_cheaper_than_rebuild on a larger graph; at 250
        // nodes with ε = 1e-8 every hub can legitimately be upstream.)
    }

    #[test]
    fn flat_refresh_matches_full_rebuild() {
        let g = barabasi_albert(250, 3, 7);
        let hubs = select_hubs(&g, HubPolicy::ExpectedUtility, 25, 0);
        let config = Config::default();
        let (mut flat, _) = crate::offline::build_flat_index(&g, &hubs, &config, 1);
        let u = (0..250u32).find(|&v| !hubs.is_hub(v)).unwrap();
        let g2 = add_edge(&g, u, (u + 17) % 250);
        let stats = refresh_flat_index(&mut flat, &g, &g2, &hubs, &[u], &config);
        let (rebuilt, _) = crate::offline::build_flat_index(&g2, &hubs, &config, 1);
        assert_eq!(flat.hub_count(), rebuilt.hub_count());
        for &h in hubs.ids() {
            assert_eq!(flat.load(h).unwrap(), rebuilt.load(h).unwrap(), "hub {h}");
            assert_eq!(
                flat.border_sublist(h).unwrap().0,
                rebuilt.border_sublist(h).unwrap().0,
                "hub {h} border sublist"
            );
        }
        assert!(stats.recomputed > 0);
    }

    #[test]
    fn snapshot_refresh_leaves_old_arena_untouched() {
        let g = barabasi_albert(250, 3, 7);
        let hubs = select_hubs(&g, HubPolicy::ExpectedUtility, 25, 0);
        let config = Config::default();
        let (flat, _) = crate::offline::build_flat_index(&g, &hubs, &config, 1);
        let before: Vec<_> = hubs.ids().iter().map(|&h| flat.load(h).unwrap()).collect();
        let u = (0..250u32).find(|&v| !hubs.is_hub(v)).unwrap();
        let g2 = add_edge(&g, u, (u + 17) % 250);
        let (next, stats) = refresh_flat_index_snapshot(&flat, &g, &g2, &hubs, &[u], &config);
        assert!(stats.recomputed > 0);
        // The clone is timed, and inside the total.
        assert!(stats.elapsed >= stats.clone_elapsed);
        // The old arena still answers exactly as before the update…
        for (&h, old) in hubs.ids().iter().zip(&before) {
            assert_eq!(flat.load(h).unwrap(), *old, "hub {h} must be untouched");
        }
        // …and the new one matches a from-scratch build of the new graph.
        let (rebuilt, _) = crate::offline::build_flat_index(&g2, &hubs, &config, 1);
        for &h in hubs.ids() {
            assert_eq!(next.load(h).unwrap(), rebuilt.load(h).unwrap(), "hub {h}");
        }
    }

    #[test]
    fn refresh_handles_deletion_via_old_graph() {
        let g = barabasi_albert(200, 3, 11);
        let hubs = select_hubs(&g, HubPolicy::ExpectedUtility, 20, 0);
        let config = Config::default();
        let u = (0..200u32).find(|&v| !hubs.is_hub(v)).unwrap();
        let v = g.out_neighbors(u)[0];
        let g2 = remove_edge(&g, u, v);
        let (old_index, _) = build_index(&g, &hubs, &config);
        let (refreshed, _) = refresh_index(&old_index, &g, &g2, &hubs, &[u], &config);
        let (rebuilt, _) = build_index(&g2, &hubs, &config);
        for &h in hubs.ids() {
            assert_eq!(
                refreshed.get(h).unwrap().entries,
                rebuilt.get(h).unwrap().entries,
                "hub {h}"
            );
        }
    }

    #[test]
    fn refresh_is_much_cheaper_than_rebuild() {
        let g = barabasi_albert(400, 3, 3);
        let hubs = select_hubs(&g, HubPolicy::ExpectedUtility, 60, 0);
        // ε must match the graph's scale for refresh locality: at 1e-8 a
        // 14-step hub-free reverse walk still counts as a dependency, which
        // on a 400-node small-world graph reaches every hub (correctly —
        // refresh_matches_full_rebuild pins the semantics). At 1e-4 the
        // dependence sets are genuinely local (~18 of 60 hubs here).
        let config = Config::default().with_epsilon(1e-4);
        let (old_index, _) = build_index(&g, &hubs, &config);
        let u = (0..400u32).find(|&v| !hubs.is_hub(v)).unwrap();
        let g2 = add_edge(&g, u, (u + 31) % 400);
        let (_, stats) = refresh_index(&old_index, &g, &g2, &hubs, &[u], &config);
        assert!(
            stats.recomputed < hubs.len() / 2,
            "recomputed {} of {} hubs",
            stats.recomputed,
            hubs.len()
        );
    }

    /// A tight-tolerance config: clip 0 and tiny thresholds make the fresh
    /// build essentially exact, so the delta path's budget accounting can
    /// be checked sharply against a rebuild.
    fn tight_config() -> Config {
        let mut c = Config::default().with_epsilon(1e-10).with_clip(0.0);
        c.solve_tolerance = 1e-12;
        c
    }

    #[test]
    fn delta_refresh_stays_within_budget_of_rebuild() {
        let g0 = barabasi_albert(300, 3, 13);
        let hubs = select_hubs(&g0, HubPolicy::ExpectedUtility, 30, 0);
        let config = tight_config();
        let delta = DeltaConfig {
            budget: 0.05,
            push_threshold: 1e-13,
            ..DeltaConfig::default()
        };
        let (mut index, _) = build_index(&g0, &hubs, &config);
        let mut g = g0;
        let mut patched_total = 0usize;
        // A mixed insert/delete event stream through the delta path.
        for step in 0..8u32 {
            let u = (step * 37 + 5) % 300;
            let (g2, tail) = if step % 3 == 2 {
                let t = g.out_neighbors(u)[0];
                (remove_edge(&g, u, t), u)
            } else {
                (add_edge(&g, u, (u + 59 + step) % 300), u)
            };
            let (next, stats) =
                refresh_index_delta(&index, &g, &g2, &hubs, &[tail], &config, &delta);
            assert_eq!(
                stats.delta_patched + stats.recomputed + stats.reused,
                hubs.len()
            );
            assert!(
                stats.budget_watermark <= delta.budget,
                "watermark {} > budget {}",
                stats.budget_watermark,
                delta.budget
            );
            patched_total += stats.delta_patched;
            index = next;
            g = g2;
        }
        assert!(patched_total > 0, "delta path never engaged");
        // Each stored PPV is within its accounted spend (plus solver
        // crumbs) of an exact rebuild on the final graph.
        let (rebuilt, _) = build_index(&g, &hubs, &config);
        for &h in hubs.ids() {
            let l1 = entries_l1(
                index.get(h).unwrap().entries.entries(),
                rebuilt.get(h).unwrap().entries.entries(),
            );
            let allowed = index.budget_spent(h) + 1e-6;
            assert!(l1 <= allowed, "hub {h}: L1 {l1} > allowed {allowed}");
        }
    }

    #[test]
    fn budget_zero_delta_is_bit_identical_to_exact() {
        let g = barabasi_albert(250, 3, 19);
        let hubs = select_hubs(&g, HubPolicy::ExpectedUtility, 25, 0);
        let config = Config::default();
        let (old_index, _) = build_index(&g, &hubs, &config);
        let u = (0..250u32).find(|&v| !hubs.is_hub(v)).unwrap();
        let g2 = add_edge(&g, u, (u + 23) % 250);
        let (exact, es) = refresh_index(&old_index, &g, &g2, &hubs, &[u], &config);
        let (zero, zs) = refresh_index_delta(
            &old_index,
            &g,
            &g2,
            &hubs,
            &[u],
            &config,
            &DeltaConfig::exact(),
        );
        assert_eq!(es.recomputed, zs.recomputed);
        assert_eq!(zs.delta_patched, 0);
        for &h in hubs.ids() {
            assert_eq!(
                exact.get(h).unwrap().entries,
                zero.get(h).unwrap().entries,
                "hub {h}"
            );
        }
    }

    #[test]
    fn vacuous_batch_is_all_noop_patches() {
        let g = barabasi_albert(250, 3, 29);
        let hubs = select_hubs(&g, HubPolicy::ExpectedUtility, 25, 0);
        let config = Config::default();
        let delta = DeltaConfig::default();
        let (old_index, _) = build_index(&g, &hubs, &config);
        let u = (0..250u32).find(|&v| !hubs.is_hub(v)).unwrap();
        assert!(same_adjacency(&g, &g, &[u]));
        // Same graph on both sides: hubs are invalidated (the dependence
        // search cannot know the rows are equal) but every patch is empty.
        let (next, stats) = refresh_index_delta(&old_index, &g, &g, &hubs, &[u], &config, &delta);
        assert!(stats.dirty() > 0);
        assert_eq!(stats.recomputed, 0);
        assert_eq!(stats.delta_noop, stats.delta_patched);
        assert_eq!(stats.budget_watermark, 0.0);
        for &h in hubs.ids() {
            assert_eq!(
                next.get(h).unwrap().entries,
                old_index.get(h).unwrap().entries,
                "hub {h}"
            );
        }
        // A genuine change is *not* vacuous.
        let g2 = add_edge(&g, u, (u + 11) % 250);
        assert!(!same_adjacency(&g, &g2, &[u]));
    }

    #[test]
    fn flat_delta_matches_memory_delta() {
        let g0 = barabasi_albert(300, 3, 31);
        let hubs = select_hubs(&g0, HubPolicy::ExpectedUtility, 30, 0);
        let config = tight_config();
        let delta = DeltaConfig {
            budget: 0.05,
            push_threshold: 1e-13,
            ..DeltaConfig::default()
        };
        let (mut mem, _) = build_index(&g0, &hubs, &config);
        let (mut flat, _) = crate::offline::build_flat_index(&g0, &hubs, &config, 1);
        let mut g = g0;
        for step in 0..5u32 {
            let u = (step * 41 + 7) % 300;
            let g2 = add_edge(&g, u, (u + 83 + step) % 300);
            let (next, ms) = refresh_index_delta(&mem, &g, &g2, &hubs, &[u], &config, &delta);
            let fs = refresh_flat_index_delta(&mut flat, &g, &g2, &hubs, &[u], &config, &delta);
            assert_eq!(ms.recomputed, fs.recomputed, "step {step}");
            assert_eq!(ms.delta_patched, fs.delta_patched, "step {step}");
            assert_eq!(ms.delta_noop, fs.delta_noop, "step {step}");
            mem = next;
            g = g2;
        }
        for &h in hubs.ids() {
            assert_eq!(
                flat.load(h).unwrap().entries,
                mem.get(h).unwrap().entries,
                "hub {h}"
            );
            assert_eq!(
                flat.budget_spent(h),
                mem.budget_spent(h),
                "hub {h} budget spend"
            );
        }
    }
}
