//! Write-ahead log for dynamic edge updates, plus the checkpoint
//! manifest that makes WAL replay idempotent.
//!
//! The dynamic-update path ([`crate::dynamic`]) maintains the index under
//! a stream of [`EdgeEvent`]s. Each batch of events is **logged before it
//! is applied**: a crash at any point then recovers by loading the last
//! durably-published checkpoint (named by the [`Manifest`]) and replaying
//! the WAL records whose sequence numbers lie past it. After a refreshed
//! index is atomically published ([`crate::atomic_io`]) and the manifest
//! is advanced, the log is truncated.
//!
//! ## On-disk format (`FPPVWAL1`)
//!
//! ```text
//! header   magic "FPPVWAL1" | version u32 LE (=1) | reserved u32 (=0)
//! record   len u32 LE | crc32 u32 LE | payload (len bytes)
//! payload  seq u64 LE | count u32 LE | count × event
//! event    tail u32 LE | head u32 LE | insert u8 (0/1)
//! ```
//!
//! `crc32` (IEEE 802.3, the zlib polynomial) covers the payload. `seq` is
//! the stream offset of the batch's **first** event, so a batch covers
//! events `[seq, seq + count)` of the global update stream.
//!
//! ## Failure semantics
//!
//! A WAL's final record is allowed to be *torn* — a crash mid-append
//! leaves a truncated or checksum-failing tail, which replay drops (and
//! [`Wal::open`] physically truncates, so new appends land on a clean
//! record boundary). Anything else fails **closed** with the same
//! [`OpenError`] machinery the arena opener uses: a bad header, or a
//! corrupt record *followed by a valid one* (which cannot be explained by
//! a single interrupted append), means the log cannot be trusted and the
//! caller must not silently continue.

use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use fastppv_graph::gen::EdgeEvent;

use crate::index::OpenError;
use crate::protocol_consts::{MANIFEST_MAGIC, WAL_MAGIC, WAL_VERSION};

const WAL_HEADER_LEN: u64 = 16;
const RECORD_HEADER_LEN: usize = 8; // len + crc32
const EVENT_LEN: usize = 9; // tail u32 | head u32 | insert u8
const PAYLOAD_FIXED_LEN: usize = 12; // seq u64 | count u32
/// Records claiming a larger payload are rejected before allocation (a
/// corrupt length field must not OOM replay).
const MAX_RECORD_PAYLOAD: u32 = 64 << 20;

fn bad(detail: impl Into<String>) -> OpenError {
    OpenError::Format(detail.into())
}

/// Checked little-endian reads for the replay and manifest parsers:
/// `None` on short input instead of a slice-index panic, so corrupt
/// length fields can only produce a typed error.
fn le_u32(bytes: &[u8], at: usize) -> Option<u32> {
    Some(u32::from_le_bytes(bytes.get(at..at + 4)?.try_into().ok()?))
}

fn le_u64(bytes: &[u8], at: usize) -> Option<u64> {
    Some(u64::from_le_bytes(bytes.get(at..at + 8)?.try_into().ok()?))
}

// ---------------------------------------------------------------------------
// CRC32 (IEEE 802.3 / zlib polynomial), table-driven, no external crates.

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c; // fppv-lint: allow(panic-freedom) -- i < 256 by the loop bound; const-evaluated, a slip fails the build
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc32_table();

/// CRC32 (IEEE) of `bytes`, as produced by zlib's `crc32()`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = !0u32;
    for &b in bytes {
        // fppv-lint: allow(panic-freedom) -- index is masked to 0..=255 and the table has 256 entries
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

// ---------------------------------------------------------------------------
// WAL

/// One replayed WAL record: the events covering stream offsets
/// `[seq, seq + events.len())`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalBatch {
    pub seq: u64,
    pub events: Vec<EdgeEvent>,
}

impl WalBatch {
    /// Stream offset just past this batch's last event.
    pub fn end_seq(&self) -> u64 {
        self.seq + self.events.len() as u64
    }
}

/// An append-only edge-event log. See the module docs for the format.
#[derive(Debug)]
pub struct Wal {
    file: File,
    path: PathBuf,
}

impl Wal {
    /// Opens (creating if absent) the WAL at `path` and replays every
    /// intact record. A torn final record is dropped and physically
    /// truncated; corruption anywhere else fails closed.
    pub fn open<P: AsRef<Path>>(path: P) -> Result<(Wal, Vec<WalBatch>), OpenError> {
        let path = path.as_ref().to_path_buf();
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)?;
        let len = file.metadata()?.len();
        if len == 0 {
            let mut header = Vec::with_capacity(WAL_HEADER_LEN as usize);
            header.extend_from_slice(WAL_MAGIC);
            header.extend_from_slice(&WAL_VERSION.to_le_bytes());
            header.extend_from_slice(&0u32.to_le_bytes());
            file.write_all(&header)?;
            file.sync_all()?;
            return Ok((Wal { file, path }, Vec::new()));
        }
        let mut bytes = Vec::with_capacity(len as usize);
        file.seek(SeekFrom::Start(0))?;
        file.read_to_end(&mut bytes)?;
        let (batches, good_len) = replay(&bytes)?;
        if (good_len as u64) < len {
            // Drop the torn tail so the next append starts on a clean
            // record boundary.
            file.set_len(good_len as u64)?;
            file.sync_all()?;
        }
        file.seek(SeekFrom::End(0))?;
        Ok((Wal { file, path }, batches))
    }

    /// Appends one batch durably: the record (and its length) hit disk
    /// before this returns, so a subsequent apply step can never outrun
    /// the log.
    pub fn append(&mut self, seq: u64, events: &[EdgeEvent]) -> io::Result<()> {
        let payload_len = PAYLOAD_FIXED_LEN + events.len() * EVENT_LEN;
        if payload_len as u64 > MAX_RECORD_PAYLOAD as u64 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("WAL batch too large ({} events)", events.len()),
            ));
        }
        let mut payload = Vec::with_capacity(payload_len);
        payload.extend_from_slice(&seq.to_le_bytes());
        payload.extend_from_slice(&(events.len() as u32).to_le_bytes());
        for ev in events {
            payload.extend_from_slice(&ev.tail.to_le_bytes());
            payload.extend_from_slice(&ev.head.to_le_bytes());
            payload.push(ev.insert as u8);
        }
        let mut record = Vec::with_capacity(RECORD_HEADER_LEN + payload.len());
        record.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        record.extend_from_slice(&crc32(&payload).to_le_bytes());
        record.extend_from_slice(&payload);
        self.file.write_all(&record)?;
        self.file.sync_data()
    }

    /// Truncates the log back to its header. Call only after the state
    /// the logged events produced has been durably checkpointed (arena
    /// published + manifest advanced) — the records are unrecoverable
    /// afterwards.
    pub fn truncate(&mut self) -> io::Result<()> {
        self.file.set_len(WAL_HEADER_LEN)?;
        self.file.sync_all()?;
        self.file.seek(SeekFrom::End(0))?;
        Ok(())
    }

    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Parses `bytes` (a whole WAL file). Returns the intact batches and the
/// byte length of the intact prefix (header + complete records); a torn
/// tail past that point has been silently dropped. Fails closed on a bad
/// header or on corruption that a single interrupted append cannot
/// explain.
fn replay(bytes: &[u8]) -> Result<(Vec<WalBatch>, usize), OpenError> {
    if bytes.len() < WAL_HEADER_LEN as usize {
        return Err(bad(format!(
            "WAL header truncated: {} bytes, need {WAL_HEADER_LEN}",
            bytes.len()
        )));
    }
    if bytes.get(..8) != Some(WAL_MAGIC.as_slice()) {
        return Err(bad("WAL magic mismatch: not a FPPVWAL1 file"));
    }
    let version =
        le_u32(bytes, 8).ok_or_else(|| bad("WAL header truncated inside the version field"))?;
    if version != WAL_VERSION {
        return Err(bad(format!(
            "WAL version {version} unsupported (expected {WAL_VERSION})"
        )));
    }
    let mut batches = Vec::new();
    let mut offset = WAL_HEADER_LEN as usize;
    loop {
        match parse_record(bytes, offset) {
            Ok(None) => return Ok((batches, offset)), // clean end of log
            Ok(Some((batch, next))) => {
                if let Some(prev) = batches.last() {
                    let prev: &WalBatch = prev;
                    if batch.seq != prev.end_seq() {
                        return Err(bad(format!(
                            "WAL sequence gap at byte {offset}: batch starts at seq \
                             {} but previous record ended at {}",
                            batch.seq,
                            prev.end_seq()
                        )));
                    }
                }
                batches.push(batch);
                offset = next;
            }
            Err(torn) => {
                // A record failed here. If *any* complete, checksummed
                // record can be parsed past the claimed extent of this
                // one, the damage is in the middle of the log — a single
                // interrupted append cannot produce that, so fail closed.
                if let Some(skip) = torn.claimed_next {
                    if matches!(parse_record(bytes, skip), Ok(Some(_))) {
                        return Err(bad(format!(
                            "WAL corrupt at byte {offset} ({}) with valid records after it",
                            torn.reason
                        )));
                    }
                }
                // Otherwise: torn tail from a crash mid-append. Drop it.
                return Ok((batches, offset));
            }
        }
    }
}

struct TornRecord {
    reason: String,
    /// Where the next record would start if this record's length field
    /// were trusted — used to probe for valid data past the damage.
    claimed_next: Option<usize>,
}

/// Parses one record at `offset`. `Ok(None)` = clean end of data,
/// `Ok(Some((batch, next_offset)))` = intact record, `Err` = damaged
/// record (possibly a torn tail — the caller decides).
fn parse_record(bytes: &[u8], offset: usize) -> Result<Option<(WalBatch, usize)>, TornRecord> {
    let remaining = bytes.get(offset..).unwrap_or(&[]);
    if remaining.is_empty() {
        return Ok(None);
    }
    let (len, expect_crc) = match (le_u32(remaining, 0), le_u32(remaining, 4)) {
        (Some(len), Some(crc)) => (len, crc),
        _ => {
            return Err(TornRecord {
                reason: "truncated record header".into(),
                claimed_next: None,
            })
        }
    };
    if len > MAX_RECORD_PAYLOAD || (len as usize) < PAYLOAD_FIXED_LEN {
        return Err(TornRecord {
            reason: format!("implausible record length {len}"),
            claimed_next: None,
        });
    }
    let body = remaining.get(RECORD_HEADER_LEN..).unwrap_or(&[]);
    let Some(payload) = body.get(..len as usize) else {
        return Err(TornRecord {
            reason: format!("truncated record payload: {} of {len} bytes", body.len()),
            claimed_next: None,
        });
    };
    let claimed_next = offset + RECORD_HEADER_LEN + len as usize;
    if crc32(payload) != expect_crc {
        return Err(TornRecord {
            reason: "checksum mismatch".into(),
            claimed_next: Some(claimed_next),
        });
    }
    let (seq, count) = match (le_u64(payload, 0), le_u32(payload, 8)) {
        (Some(seq), Some(count)) => (seq, count as usize),
        _ => {
            return Err(TornRecord {
                reason: "record payload shorter than its fixed header".into(),
                claimed_next: Some(claimed_next),
            })
        }
    };
    if payload.len() != PAYLOAD_FIXED_LEN + count * EVENT_LEN {
        return Err(TornRecord {
            reason: format!(
                "record length {} inconsistent with event count {count}",
                payload.len()
            ),
            claimed_next: Some(claimed_next),
        });
    }
    let mut events = Vec::with_capacity(count);
    let mut p = PAYLOAD_FIXED_LEN;
    for _ in 0..count {
        let (tail, head, flag) = match (
            le_u32(payload, p),
            le_u32(payload, p + 4),
            payload.get(p + 8),
        ) {
            (Some(t), Some(h), Some(&f)) => (t, h, f),
            _ => {
                return Err(TornRecord {
                    reason: "record payload shorter than its event count".into(),
                    claimed_next: Some(claimed_next),
                })
            }
        };
        let insert = match flag {
            0 => false,
            1 => true,
            other => {
                return Err(TornRecord {
                    reason: format!("invalid event flag {other}"),
                    claimed_next: Some(claimed_next),
                })
            }
        };
        events.push(EdgeEvent { tail, head, insert });
        p += EVENT_LEN;
    }
    Ok(Some((WalBatch { seq, events }, claimed_next)))
}

// ---------------------------------------------------------------------------
// Manifest

/// The atomically-published checkpoint pointer: which generation-stamped
/// files hold the durable (graph, index) pair and how many events of the
/// update stream they already include. Written via
/// [`crate::atomic_io::write_atomic`], so advancing the checkpoint is a
/// single atomic commit point.
///
/// Format: `magic "FPPVMAN1" | crc32 u32 LE | seq u64 LE |
/// arena_name_len u32 LE | arena_name | graph_name_len u32 LE |
/// graph_name` — the checksum covers everything after itself.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// Events `[0, seq)` of the update stream are baked into the
    /// checkpoint files; replay starts at `seq`.
    pub seq: u64,
    /// File name (relative to the manifest's directory) of the published
    /// index arena for this generation.
    pub arena_name: String,
    /// File name of the published graph snapshot for this generation.
    pub graph_name: String,
}

impl Manifest {
    /// Atomically publishes this manifest at `path`.
    pub fn write<P: AsRef<Path>>(&self, path: P) -> io::Result<()> {
        let mut body = Vec::new();
        body.extend_from_slice(&self.seq.to_le_bytes());
        body.extend_from_slice(&(self.arena_name.len() as u32).to_le_bytes());
        body.extend_from_slice(self.arena_name.as_bytes());
        body.extend_from_slice(&(self.graph_name.len() as u32).to_le_bytes());
        body.extend_from_slice(self.graph_name.as_bytes());
        crate::atomic_io::write_atomic(path, |w| {
            w.write_all(MANIFEST_MAGIC)?;
            w.write_all(&crc32(&body).to_le_bytes())?;
            w.write_all(&body)
        })
    }

    /// Reads the manifest at `path`. `Ok(None)` if no manifest exists
    /// (first run); fails closed on any malformed or checksum-failing
    /// content — a half-trusted checkpoint pointer is worse than none.
    pub fn read<P: AsRef<Path>>(path: P) -> Result<Option<Manifest>, OpenError> {
        let mut bytes = Vec::new();
        match File::open(path.as_ref()) {
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(OpenError::Io(e)),
            Ok(mut f) => f.read_to_end(&mut bytes)?,
        };
        if bytes.len() < 12 {
            return Err(bad(format!("manifest truncated: {} bytes", bytes.len())));
        }
        if bytes.get(..8) != Some(MANIFEST_MAGIC.as_slice()) {
            return Err(bad("manifest magic mismatch: not a FPPVMAN1 file"));
        }
        let expect_crc =
            le_u32(&bytes, 8).ok_or_else(|| bad("manifest truncated inside the checksum"))?;
        let body = bytes.get(12..).unwrap_or(&[]);
        if crc32(body) != expect_crc {
            return Err(bad("manifest checksum mismatch"));
        }
        let take_str = |body: &[u8], at: usize| -> Result<(String, usize), OpenError> {
            let n = le_u32(body, at)
                .ok_or_else(|| bad("manifest truncated inside a name length"))?
                as usize;
            let raw = body
                .get(at + 4..at + 4 + n)
                .ok_or_else(|| bad("manifest truncated inside a name"))?;
            let s = std::str::from_utf8(raw).map_err(|_| bad("manifest name is not UTF-8"))?;
            Ok((s.to_string(), at + 4 + n))
        };
        let seq = le_u64(body, 0).ok_or_else(|| bad("manifest truncated before seq"))?;
        let (arena_name, at) = take_str(body, 8)?;
        let (graph_name, at) = take_str(body, at)?;
        if at != body.len() {
            return Err(bad("manifest has trailing bytes"));
        }
        Ok(Some(Manifest {
            seq,
            arena_name,
            graph_name,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    fn temp_dir(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("fastppv-wal-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&p);
        fs::create_dir_all(&p).unwrap();
        p
    }

    fn ev(tail: u32, head: u32, insert: bool) -> EdgeEvent {
        EdgeEvent { tail, head, insert }
    }

    fn sample_batches() -> Vec<WalBatch> {
        vec![
            WalBatch {
                seq: 0,
                events: vec![ev(1, 2, true), ev(3, 4, false), ev(5, 6, true)],
            },
            WalBatch {
                seq: 3,
                events: vec![ev(7, 8, true)],
            },
            WalBatch {
                seq: 4,
                events: vec![ev(9, 10, false), ev(11, 12, true)],
            },
        ]
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC32 check values (zlib-compatible).
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"hello world"), 0x0D4A_1185);
    }

    #[test]
    fn append_replay_roundtrip() {
        let dir = temp_dir("roundtrip");
        let path = dir.join("updates.wal");
        let (mut wal, replayed) = Wal::open(&path).unwrap();
        assert!(replayed.is_empty());
        for b in sample_batches() {
            wal.append(b.seq, &b.events).unwrap();
        }
        drop(wal);
        let (_wal, replayed) = Wal::open(&path).unwrap();
        assert_eq!(replayed, sample_batches());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncate_resets_log() {
        let dir = temp_dir("truncate");
        let path = dir.join("updates.wal");
        let (mut wal, _) = Wal::open(&path).unwrap();
        for b in sample_batches() {
            wal.append(b.seq, &b.events).unwrap();
        }
        wal.truncate().unwrap();
        wal.append(6, &[ev(100, 200, true)]).unwrap();
        drop(wal);
        let (_wal, replayed) = Wal::open(&path).unwrap();
        assert_eq!(
            replayed,
            vec![WalBatch {
                seq: 6,
                events: vec![ev(100, 200, true)]
            }]
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    /// The torn-tail contract: truncating the file at *every* byte offset
    /// inside the final record must replay the earlier records cleanly,
    /// and the re-opened log must accept new appends on a clean boundary.
    #[test]
    fn torn_tail_at_every_offset_recovers() {
        let dir = temp_dir("torn");
        let path = dir.join("updates.wal");
        let (mut wal, _) = Wal::open(&path).unwrap();
        let batches = sample_batches();
        for b in &batches[..2] {
            wal.append(b.seq, &b.events).unwrap();
        }
        let intact_len = fs::metadata(&path).unwrap().len();
        wal.append(batches[2].seq, &batches[2].events).unwrap();
        drop(wal);
        let full = fs::read(&path).unwrap();
        for cut in intact_len as usize..full.len() {
            fs::write(&path, &full[..cut]).unwrap();
            let (mut wal, replayed) = Wal::open(&path).unwrap();
            assert_eq!(replayed, batches[..2], "cut at {cut}");
            // The torn tail was truncated: a fresh append must replay.
            wal.append(batches[2].seq, &batches[2].events).unwrap();
            drop(wal);
            let (_wal, replayed) = Wal::open(&path).unwrap();
            assert_eq!(replayed, batches, "cut at {cut} after re-append");
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corruption_before_valid_records_fails_closed() {
        let dir = temp_dir("midcorrupt");
        let path = dir.join("updates.wal");
        let (mut wal, _) = Wal::open(&path).unwrap();
        for b in sample_batches() {
            wal.append(b.seq, &b.events).unwrap();
        }
        drop(wal);
        let mut bytes = fs::read(&path).unwrap();
        // Flip one payload byte of the FIRST record: valid records follow,
        // so this cannot be a torn append.
        let idx = WAL_HEADER_LEN as usize + RECORD_HEADER_LEN + 9;
        bytes[idx] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();
        let err = Wal::open(&path).unwrap_err();
        assert!(
            matches!(err, OpenError::Format(ref d) if d.contains("valid records after")),
            "unexpected error: {err}"
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bad_header_fails_closed() {
        let dir = temp_dir("badheader");
        let path = dir.join("updates.wal");
        fs::write(&path, b"NOTAWAL!\x01\x00\x00\x00\x00\x00\x00\x00").unwrap();
        let err = Wal::open(&path).unwrap_err();
        assert!(matches!(err, OpenError::Format(ref d) if d.contains("magic")));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sequence_gap_fails_closed() {
        let dir = temp_dir("gap");
        let path = dir.join("updates.wal");
        let (mut wal, _) = Wal::open(&path).unwrap();
        wal.append(0, &[ev(1, 2, true)]).unwrap();
        wal.append(5, &[ev(3, 4, true)]).unwrap(); // should be seq 1
        drop(wal);
        let err = Wal::open(&path).unwrap_err();
        assert!(matches!(err, OpenError::Format(ref d) if d.contains("sequence gap")));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn manifest_roundtrip_and_fail_closed() {
        let dir = temp_dir("manifest");
        let path = dir.join("MANIFEST");
        assert_eq!(Manifest::read(&path).unwrap(), None);
        let m = Manifest {
            seq: 1234,
            arena_name: "arena.gen-7".into(),
            graph_name: "graph.gen-7".into(),
        };
        m.write(&path).unwrap();
        assert_eq!(Manifest::read(&path).unwrap(), Some(m.clone()));
        // Overwrite is atomic and replaces cleanly.
        let m2 = Manifest {
            seq: 5678,
            arena_name: "arena.gen-8".into(),
            graph_name: "graph.gen-8".into(),
        };
        m2.write(&path).unwrap();
        assert_eq!(Manifest::read(&path).unwrap(), Some(m2));
        // Any bit flip fails closed.
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        fs::write(&path, &bytes).unwrap();
        assert!(matches!(Manifest::read(&path), Err(OpenError::Format(_))));
        fs::remove_dir_all(&dir).unwrap();
    }
}
