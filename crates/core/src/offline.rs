//! Offline precomputation (paper §5.1, Algorithm 1).
//!
//! For each hub, extract its prime subgraph and solve for its prime PPV;
//! store everything in a [`MemoryIndex`] (serialize with
//! [`MemoryIndex::write_to_file`] for the disk-based setting). Hub builds
//! are independent, so [`build_index_parallel`] shards them across scoped
//! threads — this changes wall-clock only, not results (builds are
//! deterministic and merged in hub order).

use std::time::{Duration, Instant};

use fastppv_graph::Graph;

use crate::config::Config;
use crate::hubs::HubSet;
use crate::index::{FlatIndex, MemoryIndex, PpvStore, PrimePpv};
use crate::prime::PrimeComputer;

/// Statistics from an offline build.
#[derive(Clone, Copy, Debug, Default)]
pub struct OfflineStats {
    /// Wall-clock build time.
    pub build_time: Duration,
    /// Number of hubs indexed.
    pub hubs: usize,
    /// Total entries stored (after clipping).
    pub total_entries: usize,
    /// Index size in bytes (on-disk layout equivalent).
    pub storage_bytes: usize,
    /// Mean prime-subgraph size (nodes, including absorbers).
    pub avg_subgraph_nodes: f64,
    /// Largest prime subgraph seen.
    pub max_subgraph_nodes: usize,
    /// Mean number of border-hub entries per prime PPV (the paper's |H̄|,
    /// which drives online complexity, §5.2).
    pub avg_border_hubs: f64,
}

/// Builds the PPV index single-threaded.
pub fn build_index(graph: &Graph, hubs: &HubSet, config: &Config) -> (MemoryIndex, OfflineStats) {
    build_index_parallel(graph, hubs, config, 1)
}

/// Builds the PPV index with `threads` worker threads.
pub fn build_index_parallel(
    graph: &Graph,
    hubs: &HubSet,
    config: &Config,
    threads: usize,
) -> (MemoryIndex, OfflineStats) {
    config.validate();
    let threads = threads.max(1);
    let start = Instant::now();
    let ids = hubs.ids();
    let chunk_size = ids.len().div_ceil(threads).max(1);

    struct Shard {
        ppvs: Vec<(fastppv_graph::NodeId, PrimePpv)>,
        subgraph_nodes: usize,
        max_subgraph: usize,
        border_hubs: usize,
    }

    let shards: Vec<Shard> = if ids.is_empty() {
        Vec::new()
    } else {
        std::thread::scope(|scope| {
            let handles: Vec<_> = ids
                .chunks(chunk_size)
                .map(|chunk| {
                    scope.spawn(move || {
                        let mut pc = PrimeComputer::new(graph.num_nodes());
                        let mut shard = Shard {
                            ppvs: Vec::with_capacity(chunk.len()),
                            subgraph_nodes: 0,
                            max_subgraph: 0,
                            border_hubs: 0,
                        };
                        for &h in chunk {
                            let (ppv, size) = pc.prime_ppv(graph, hubs, h, config, config.clip);
                            shard.subgraph_nodes += size;
                            shard.max_subgraph = shard.max_subgraph.max(size);
                            shard.border_hubs += ppv.border_hubs(hubs).count();
                            shard.ppvs.push((h, ppv));
                        }
                        shard
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        })
    };

    let mut index = MemoryIndex::new(graph.num_nodes());
    let mut subgraph_nodes = 0usize;
    let mut max_subgraph = 0usize;
    let mut border_hubs = 0usize;
    for shard in shards {
        subgraph_nodes += shard.subgraph_nodes;
        max_subgraph = max_subgraph.max(shard.max_subgraph);
        border_hubs += shard.border_hubs;
        for (h, ppv) in shard.ppvs {
            index.insert(h, ppv);
        }
    }
    let n_hubs = index.hub_count();
    let stats = OfflineStats {
        build_time: start.elapsed(),
        hubs: n_hubs,
        total_entries: index.total_entries(),
        storage_bytes: index.storage_bytes(),
        avg_subgraph_nodes: ratio(subgraph_nodes, n_hubs),
        max_subgraph_nodes: max_subgraph,
        avg_border_hubs: ratio(border_hubs, n_hubs),
    };
    (index, stats)
}

/// Builds the PPV index directly into the flat structure-of-arrays arena
/// (the online hot-path layout): a [`build_index_parallel`] build followed
/// by [`FlatIndex::from_memory`]. The conversion is one linear pass over
/// the entries and is included in the reported build time.
pub fn build_flat_index(
    graph: &Graph,
    hubs: &HubSet,
    config: &Config,
    threads: usize,
) -> (FlatIndex, OfflineStats) {
    let start = Instant::now();
    let (memory, mut stats) = build_index_parallel(graph, hubs, config, threads);
    let flat = FlatIndex::from_memory(&memory, hubs);
    stats.build_time = start.elapsed();
    (flat, stats)
}

fn ratio(total: usize, count: usize) -> f64 {
    if count == 0 {
        0.0
    } else {
        total as f64 / count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hubs::{select_hubs, HubPolicy};
    use fastppv_graph::gen::barabasi_albert;
    use fastppv_graph::toy;

    #[test]
    fn builds_every_hub() {
        let g = toy::graph();
        let hubs = crate::hubs::HubSet::from_ids(8, toy::PAPER_HUBS.to_vec());
        let (index, stats) = build_index(&g, &hubs, &Config::default());
        assert_eq!(index.hub_count(), 3);
        assert_eq!(stats.hubs, 3);
        for h in toy::PAPER_HUBS {
            assert!(index.contains(h));
        }
        assert!(stats.total_entries > 0);
        assert!(stats.avg_subgraph_nodes > 0.0);
        assert!(stats.max_subgraph_nodes >= 1);
    }

    #[test]
    fn parallel_build_matches_serial() {
        let g = barabasi_albert(600, 3, 21);
        let hubs = select_hubs(&g, HubPolicy::ExpectedUtility, 50, 0);
        let config = Config::default();
        let (serial, s_stats) = build_index(&g, &hubs, &config);
        let (parallel, p_stats) = build_index_parallel(&g, &hubs, &config, 4);
        assert_eq!(s_stats.total_entries, p_stats.total_entries);
        assert_eq!(serial.hub_count(), parallel.hub_count());
        for &h in hubs.ids() {
            assert_eq!(
                serial.get(h).unwrap().entries,
                parallel.get(h).unwrap().entries,
                "hub {h}"
            );
        }
    }

    #[test]
    fn flat_build_matches_memory_build() {
        let g = barabasi_albert(500, 3, 13);
        let hubs = select_hubs(&g, HubPolicy::ExpectedUtility, 40, 0);
        let config = Config::default();
        let (memory, m_stats) = build_index(&g, &hubs, &config);
        let (flat, f_stats) = build_flat_index(&g, &hubs, &config, 1);
        assert_eq!(m_stats.total_entries, f_stats.total_entries);
        assert_eq!(flat.hub_count(), memory.hub_count());
        for &h in hubs.ids() {
            assert_eq!(flat.load(h).unwrap(), *memory.get(h).unwrap(), "hub {h}");
        }
    }

    #[test]
    fn empty_hub_set_builds_empty_index() {
        let g = toy::graph();
        let hubs = crate::hubs::HubSet::empty(8);
        let (index, stats) = build_index(&g, &hubs, &Config::default());
        assert_eq!(index.hub_count(), 0);
        assert_eq!(stats.total_entries, 0);
        assert_eq!(stats.avg_subgraph_nodes, 0.0);
    }

    #[test]
    fn more_hubs_smaller_average_subgraph() {
        // §5.1: more hubs ⇒ exponentially smaller prime subgraphs.
        let g = barabasi_albert(2000, 4, 5);
        let config = Config::default();
        let few = select_hubs(&g, HubPolicy::ExpectedUtility, 20, 0);
        let many = select_hubs(&g, HubPolicy::ExpectedUtility, 200, 0);
        let (_, few_stats) = build_index(&g, &few, &config);
        let (_, many_stats) = build_index(&g, &many, &config);
        assert!(
            many_stats.avg_subgraph_nodes < few_stats.avg_subgraph_nodes,
            "{} !< {}",
            many_stats.avg_subgraph_nodes,
            few_stats.avg_subgraph_nodes
        );
    }

    #[test]
    fn clip_shrinks_storage() {
        let g = barabasi_albert(500, 3, 8);
        let hubs = select_hubs(&g, HubPolicy::ExpectedUtility, 30, 0);
        let (_, clipped) = build_index(&g, &hubs, &Config::default().with_clip(1e-3));
        let (_, full) = build_index(&g, &hubs, &Config::default().with_clip(0.0));
        assert!(clipped.total_entries < full.total_entries);
        assert!(clipped.storage_bytes < full.storage_bytes);
    }
}
