//! Offline precomputation (paper §5.1, Algorithm 1).
//!
//! For each hub, extract its prime subgraph and solve for its prime PPV;
//! store everything in a [`MemoryIndex`] (serialize with
//! [`MemoryIndex::write_to_file`] for the disk-based setting). Hub builds
//! are independent, so [`build_index_parallel`] shards them across scoped
//! threads pulling hubs off a shared atomic counter (work stealing):
//! prime-subgraph sizes follow the graph's power law, so any static
//! partition of the hub list leaves most threads idle behind whichever one
//! drew the giants. Stealing changes wall-clock only, not results — each
//! hub's PPV is deterministic, workers remember the list position of
//! everything they built, and the merge reassembles hub order, so the
//! output is byte-identical to a serial build regardless of thread count
//! or hub ordering.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use fastppv_graph::Graph;

use crate::config::Config;
use crate::hubs::HubSet;
use crate::index::{FlatIndex, MemoryIndex, PpvStore, PrimePpv};
use crate::prime::PrimeComputer;

/// Statistics from an offline build.
#[derive(Clone, Copy, Debug, Default)]
pub struct OfflineStats {
    /// Wall-clock build time.
    pub build_time: Duration,
    /// Number of hubs indexed.
    pub hubs: usize,
    /// Total entries stored (after clipping).
    pub total_entries: usize,
    /// Index size in bytes (on-disk layout equivalent).
    pub storage_bytes: usize,
    /// Mean prime-subgraph size (nodes, including absorbers).
    pub avg_subgraph_nodes: f64,
    /// Largest prime subgraph seen.
    pub max_subgraph_nodes: usize,
    /// Mean number of border-hub entries per prime PPV (the paper's |H̄|,
    /// which drives online complexity, §5.2).
    pub avg_border_hubs: f64,
}

/// Builds the PPV index single-threaded.
pub fn build_index(graph: &Graph, hubs: &HubSet, config: &Config) -> (MemoryIndex, OfflineStats) {
    build_index_parallel(graph, hubs, config, 1)
}

/// Builds the PPV index with `threads` worker threads (work-stealing over
/// the hub list; byte-identical output to [`build_index`]).
pub fn build_index_parallel(
    graph: &Graph,
    hubs: &HubSet,
    config: &Config,
    threads: usize,
) -> (MemoryIndex, OfflineStats) {
    build_index_in_order(graph, hubs, hubs.ids(), config, threads)
}

/// Like [`build_index_parallel`], building the hubs of `order` (each id
/// must be a hub, listed at most once) and inserting them into the index
/// in exactly that order. Output depends only on `order`, never on
/// `threads`: workers steal the next unbuilt hub off a shared counter, tag
/// each PPV with its list position, and the merge reassembles the list —
/// so even an adversarial order (largest prime subgraph first, the
/// worst case for static chunking) parallelizes without skew.
pub fn build_index_in_order(
    graph: &Graph,
    hubs: &HubSet,
    order: &[fastppv_graph::NodeId],
    config: &Config,
    threads: usize,
) -> (MemoryIndex, OfflineStats) {
    config.validate();
    let threads = threads.clamp(1, order.len().max(1));
    let start = Instant::now();

    struct Shard {
        // (position in `order`, built PPV, subgraph node count)
        ppvs: Vec<(usize, PrimePpv, usize)>,
        border_hubs: usize,
    }

    let next = AtomicUsize::new(0);
    let shards: Vec<Shard> = if order.is_empty() {
        Vec::new()
    } else {
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    scope.spawn(|| {
                        let mut pc = PrimeComputer::new(graph.num_nodes());
                        let mut shard = Shard {
                            ppvs: Vec::new(),
                            border_hubs: 0,
                        };
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            let Some(&h) = order.get(i) else { break };
                            let (ppv, size) = pc.prime_ppv(graph, hubs, h, config, config.clip);
                            shard.border_hubs += ppv.border_hubs(hubs).count();
                            shard.ppvs.push((i, ppv, size));
                        }
                        shard
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        })
    };

    // Reassemble `order`: stats are order-insensitive sums, but index
    // insertion order (and therefore the serialized layout) must not
    // depend on which worker built what.
    let mut slots: Vec<Option<PrimePpv>> = Vec::with_capacity(order.len());
    slots.resize_with(order.len(), || None);
    let mut subgraph_nodes = 0usize;
    let mut max_subgraph = 0usize;
    let mut border_hubs = 0usize;
    for shard in shards {
        border_hubs += shard.border_hubs;
        for (i, ppv, size) in shard.ppvs {
            subgraph_nodes += size;
            max_subgraph = max_subgraph.max(size);
            slots[i] = Some(ppv);
        }
    }
    let mut index = MemoryIndex::new(graph.num_nodes());
    for (slot, &h) in slots.iter_mut().zip(order) {
        index.insert(h, slot.take().expect("every ordered hub is built"));
    }
    let n_hubs = index.hub_count();
    let stats = OfflineStats {
        build_time: start.elapsed(),
        hubs: n_hubs,
        total_entries: index.total_entries(),
        storage_bytes: index.storage_bytes(),
        avg_subgraph_nodes: ratio(subgraph_nodes, n_hubs),
        max_subgraph_nodes: max_subgraph,
        avg_border_hubs: ratio(border_hubs, n_hubs),
    };
    (index, stats)
}

/// Builds the PPV index directly into the flat structure-of-arrays arena
/// (the online hot-path layout): a [`build_index_parallel`] build followed
/// by [`FlatIndex::from_memory`]. The conversion is one linear pass over
/// the entries and is included in the reported build time. The resulting
/// arena is chunked ([`FlatIndex::CHUNK_ENTRIES`] entries per chunk), so a
/// later [`FlatIndex::write_to_file`] / [`FlatIndex::open`] round trip can
/// serve it zero-copy from an mmap'd file, and snapshot clones share
/// chunks copy-on-write.
pub fn build_flat_index(
    graph: &Graph,
    hubs: &HubSet,
    config: &Config,
    threads: usize,
) -> (FlatIndex, OfflineStats) {
    let start = Instant::now();
    let (memory, mut stats) = build_index_parallel(graph, hubs, config, threads);
    let flat = FlatIndex::from_memory(&memory, hubs);
    stats.build_time = start.elapsed();
    (flat, stats)
}

fn ratio(total: usize, count: usize) -> f64 {
    if count == 0 {
        0.0
    } else {
        total as f64 / count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hubs::{select_hubs, HubPolicy};
    use fastppv_graph::gen::barabasi_albert;
    use fastppv_graph::toy;

    #[test]
    fn builds_every_hub() {
        let g = toy::graph();
        let hubs = crate::hubs::HubSet::from_ids(8, toy::PAPER_HUBS.to_vec());
        let (index, stats) = build_index(&g, &hubs, &Config::default());
        assert_eq!(index.hub_count(), 3);
        assert_eq!(stats.hubs, 3);
        for h in toy::PAPER_HUBS {
            assert!(index.contains(h));
        }
        assert!(stats.total_entries > 0);
        assert!(stats.avg_subgraph_nodes > 0.0);
        assert!(stats.max_subgraph_nodes >= 1);
    }

    #[test]
    fn parallel_build_matches_serial() {
        let g = barabasi_albert(600, 3, 21);
        let hubs = select_hubs(&g, HubPolicy::ExpectedUtility, 50, 0);
        let config = Config::default();
        let (serial, s_stats) = build_index(&g, &hubs, &config);
        let (parallel, p_stats) = build_index_parallel(&g, &hubs, &config, 4);
        assert_eq!(s_stats.total_entries, p_stats.total_entries);
        assert_eq!(serial.hub_count(), parallel.hub_count());
        for &h in hubs.ids() {
            assert_eq!(
                serial.get(h).unwrap().entries,
                parallel.get(h).unwrap().entries,
                "hub {h}"
            );
        }
    }

    #[test]
    fn flat_build_matches_memory_build() {
        let g = barabasi_albert(500, 3, 13);
        let hubs = select_hubs(&g, HubPolicy::ExpectedUtility, 40, 0);
        let config = Config::default();
        let (memory, m_stats) = build_index(&g, &hubs, &config);
        let (flat, f_stats) = build_flat_index(&g, &hubs, &config, 1);
        assert_eq!(m_stats.total_entries, f_stats.total_entries);
        assert_eq!(flat.hub_count(), memory.hub_count());
        for &h in hubs.ids() {
            assert_eq!(flat.load(h).unwrap(), *memory.get(h).unwrap(), "hub {h}");
        }
    }

    #[test]
    fn in_order_build_respects_order_and_matches_default() {
        let g = barabasi_albert(400, 3, 19);
        let hubs = select_hubs(&g, HubPolicy::ExpectedUtility, 30, 0);
        let config = Config::default();
        let (default, _) = build_index(&g, &hubs, &config);
        // Reversed order: same PPVs, insertion order follows `order`.
        let mut reversed: Vec<_> = hubs.ids().to_vec();
        reversed.reverse();
        let (ordered, _) = build_index_in_order(&g, &hubs, &reversed, &config, 3);
        assert_eq!(ordered.hub_ids(), &reversed[..]);
        for &h in hubs.ids() {
            assert_eq!(
                ordered.get(h).unwrap().entries,
                default.get(h).unwrap().entries,
                "hub {h}"
            );
        }
    }

    #[test]
    fn oversubscribed_threads_are_clamped() {
        let g = toy::graph();
        let hubs = crate::hubs::HubSet::from_ids(8, toy::PAPER_HUBS.to_vec());
        // More threads than hubs: workers beyond the hub count exit
        // immediately; output unaffected.
        let (index, stats) = build_index_parallel(&g, &hubs, &Config::default(), 64);
        assert_eq!(index.hub_count(), 3);
        assert_eq!(stats.hubs, 3);
    }

    #[test]
    fn empty_hub_set_builds_empty_index() {
        let g = toy::graph();
        let hubs = crate::hubs::HubSet::empty(8);
        let (index, stats) = build_index(&g, &hubs, &Config::default());
        assert_eq!(index.hub_count(), 0);
        assert_eq!(stats.total_entries, 0);
        assert_eq!(stats.avg_subgraph_nodes, 0.0);
    }

    #[test]
    fn more_hubs_smaller_average_subgraph() {
        // §5.1: more hubs ⇒ exponentially smaller prime subgraphs.
        let g = barabasi_albert(2000, 4, 5);
        let config = Config::default();
        let few = select_hubs(&g, HubPolicy::ExpectedUtility, 20, 0);
        let many = select_hubs(&g, HubPolicy::ExpectedUtility, 200, 0);
        let (_, few_stats) = build_index(&g, &few, &config);
        let (_, many_stats) = build_index(&g, &many, &config);
        assert!(
            many_stats.avg_subgraph_nodes < few_stats.avg_subgraph_nodes,
            "{} !< {}",
            many_stats.avg_subgraph_nodes,
            few_stats.avg_subgraph_nodes
        );
    }

    #[test]
    fn clip_shrinks_storage() {
        let g = barabasi_albert(500, 3, 8);
        let hubs = select_hubs(&g, HubPolicy::ExpectedUtility, 30, 0);
        let (_, clipped) = build_index(&g, &hubs, &Config::default().with_clip(1e-3));
        let (_, full) = build_index(&g, &hubs, &Config::default().with_clip(0.0));
        assert!(clipped.total_entries < full.total_entries);
        assert!(clipped.storage_bytes < full.storage_bytes);
    }
}
