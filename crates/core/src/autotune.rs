//! Automatic configuration of the hub count (the paper's future-work §7:
//! "automatically determine the optimal number of hubs by correlating with
//! various graph properties").
//!
//! The operational quantity |H| controls is the **prime-subgraph size**: it
//! drives offline build time, per-hub index cost, and — through the
//! query-time extraction of `r̊⁰_q` — online latency (§5.1–5.2). This
//! module searches for the smallest hub count whose *sampled mean* prime-
//! subgraph size meets a target, using only cheap extractions (no solves,
//! no index builds), so tuning costs a tiny fraction of one offline build.

use fastppv_graph::{Graph, NodeId};
use rand::seq::SliceRandom;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::config::Config;
use crate::hubs::{select_hubs_with_pagerank, HubPolicy, HubSet};
use crate::prime::PrimeComputer;

/// Options for [`suggest_hub_count`].
#[derive(Clone, Copy, Debug)]
pub struct AutotuneOptions {
    /// Target mean prime-subgraph size (nodes, absorbers included). The
    /// paper's operating points correspond to roughly 10²–10³.
    pub target_subgraph_nodes: f64,
    /// Sources sampled per candidate hub count.
    pub sample_sources: usize,
    /// Smallest hub count considered.
    pub min_hubs: usize,
    /// Largest hub count considered (defaults to |V|/2 when 0).
    pub max_hubs: usize,
    /// Hub policy to tune for.
    pub policy: HubPolicy,
    /// RNG seed for source sampling.
    pub seed: u64,
}

impl Default for AutotuneOptions {
    fn default() -> Self {
        AutotuneOptions {
            target_subgraph_nodes: 500.0,
            sample_sources: 24,
            min_hubs: 8,
            max_hubs: 0,
            policy: HubPolicy::ExpectedUtility,
            seed: 0,
        }
    }
}

/// One probed operating point.
#[derive(Clone, Copy, Debug)]
pub struct ProbePoint {
    /// Candidate hub count.
    pub hub_count: usize,
    /// Sampled mean prime-subgraph size at that count.
    pub mean_subgraph_nodes: f64,
}

/// The tuning outcome.
#[derive(Clone, Debug)]
pub struct AutotuneResult {
    /// The suggested hub count.
    pub hub_count: usize,
    /// Mean subgraph size at the suggestion.
    pub mean_subgraph_nodes: f64,
    /// Every point probed during the search, in probe order.
    pub probes: Vec<ProbePoint>,
}

/// Suggests the smallest |H| whose sampled mean prime-subgraph size is at
/// most `target_subgraph_nodes`.
///
/// Mean subgraph size is monotonically non-increasing in |H| in expectation
/// (§5.1: every added hub can only block more paths), so a geometric scan
/// followed by a binary search converges quickly; non-monotone sampling
/// noise only costs a slightly conservative answer.
pub fn suggest_hub_count(graph: &Graph, config: &Config, opts: AutotuneOptions) -> AutotuneResult {
    config.validate();
    let n = graph.num_nodes();
    assert!(n > 0, "empty graph");
    assert!(opts.sample_sources > 0);
    assert!(opts.target_subgraph_nodes >= 1.0);
    let max_hubs = if opts.max_hubs == 0 {
        (n / 2).max(1)
    } else {
        opts.max_hubs
    };
    let min_hubs = opts.min_hubs.clamp(1, max_hubs);

    // Shared ingredients across candidates.
    let pagerank = fastppv_graph::pagerank(graph, fastppv_graph::PageRankOptions::default());
    let mut rng = ChaCha8Rng::seed_from_u64(opts.seed);
    let mut sources: Vec<NodeId> = (0..n as NodeId).collect();
    sources.shuffle(&mut rng);
    sources.truncate(opts.sample_sources.min(n));
    let mut pc = PrimeComputer::new(n);
    let mut probes = Vec::new();

    let measure = |count: usize, pc: &mut PrimeComputer, probes: &mut Vec<ProbePoint>| -> f64 {
        let hubs: HubSet =
            select_hubs_with_pagerank(graph, opts.policy, count, opts.seed, Some(&pagerank));
        let total: usize = sources
            .iter()
            .map(|&s| pc.extract(graph, &hubs, s, config).num_nodes())
            .sum();
        let mean = total as f64 / sources.len() as f64;
        probes.push(ProbePoint {
            hub_count: count,
            mean_subgraph_nodes: mean,
        });
        mean
    };

    // Geometric scan upward until the target is met (or the cap is hit).
    let mut lo = min_hubs;
    let mut lo_mean = measure(lo, &mut pc, &mut probes);
    if lo_mean <= opts.target_subgraph_nodes {
        return AutotuneResult {
            hub_count: lo,
            mean_subgraph_nodes: lo_mean,
            probes,
        };
    }
    let mut hi = lo;
    let mut hi_mean = lo_mean;
    while hi < max_hubs {
        hi = (hi * 2).min(max_hubs);
        hi_mean = measure(hi, &mut pc, &mut probes);
        if hi_mean <= opts.target_subgraph_nodes {
            break;
        }
        lo = hi;
        lo_mean = hi_mean;
    }
    if hi_mean > opts.target_subgraph_nodes {
        // Even the cap cannot reach the target: report the cap.
        return AutotuneResult {
            hub_count: hi,
            mean_subgraph_nodes: hi_mean,
            probes,
        };
    }
    // Binary search in (lo, hi] for the smallest satisfying count.
    let _ = lo_mean;
    let mut best = (hi, hi_mean);
    while hi - lo > (lo / 8).max(1) {
        let mid = lo + (hi - lo) / 2;
        let mean = measure(mid, &mut pc, &mut probes);
        if mean <= opts.target_subgraph_nodes {
            best = (mid, mean);
            hi = mid;
        } else {
            lo = mid;
        }
    }
    AutotuneResult {
        hub_count: best.0,
        mean_subgraph_nodes: best.1,
        probes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastppv_graph::gen::barabasi_albert;

    #[test]
    fn meets_the_target() {
        let g = barabasi_albert(2_000, 3, 1);
        let config = Config::default().with_epsilon(1e-6);
        let opts = AutotuneOptions {
            target_subgraph_nodes: 200.0,
            ..Default::default()
        };
        let res = suggest_hub_count(&g, &config, opts);
        assert!(res.mean_subgraph_nodes <= 200.0, "{res:?}");
        assert!(res.hub_count >= opts.min_hubs);
        assert!(!res.probes.is_empty());
    }

    #[test]
    fn tighter_target_needs_more_hubs() {
        let g = barabasi_albert(2_000, 3, 2);
        let config = Config::default().with_epsilon(1e-6);
        let loose = suggest_hub_count(
            &g,
            &config,
            AutotuneOptions {
                target_subgraph_nodes: 800.0,
                ..Default::default()
            },
        );
        let tight = suggest_hub_count(
            &g,
            &config,
            AutotuneOptions {
                target_subgraph_nodes: 100.0,
                ..Default::default()
            },
        );
        assert!(
            tight.hub_count >= loose.hub_count,
            "tight {tight:?} loose {loose:?}"
        );
    }

    #[test]
    fn unreachable_target_returns_cap() {
        let g = barabasi_albert(500, 3, 3);
        let config = Config::default();
        let res = suggest_hub_count(
            &g,
            &config,
            AutotuneOptions {
                target_subgraph_nodes: 1.0, // cannot go below source+absorbers
                max_hubs: 50,
                ..Default::default()
            },
        );
        assert_eq!(res.hub_count, 50);
    }

    #[test]
    fn deterministic() {
        let g = barabasi_albert(800, 3, 4);
        let config = Config::default().with_epsilon(1e-6);
        let a = suggest_hub_count(&g, &config, AutotuneOptions::default());
        let b = suggest_hub_count(&g, &config, AutotuneOptions::default());
        assert_eq!(a.hub_count, b.hub_count);
    }
}
