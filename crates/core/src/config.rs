//! FastPPV configuration.

/// Tunables shared by the offline and online phases.
///
/// Defaults follow the paper: `α = 0.15` (§6, "typical teleporting
/// probability"), `ε = 1e-8` (§5.1, prime-subgraph prune threshold),
/// `δ = 0.005` (§5.2, border-hub expansion threshold), storage clip `1e-4`
/// (§6, applied to all methods).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Config {
    /// Teleport probability `α ∈ (0, 1)`.
    pub alpha: f64,
    /// Prime-subgraph prune threshold `ε`: the depth-first expansion
    /// backtracks at nodes whose best hub-free walk probability is below it.
    pub epsilon: f64,
    /// Border-hub expansion threshold `δ`: a hub is expanded in iteration
    /// `i` only if the previous increment gives it more mass than this.
    pub delta: f64,
    /// Entries below this are dropped when prime PPVs are stored offline.
    pub clip: f64,
    /// Per-node residual threshold of the worklist prime-PPV solve; at most
    /// `tolerance × |interior nodes|` mass is left unsettled.
    pub solve_tolerance: f64,
    /// Safety cap on solve work, in units of pushes per interior node.
    pub solve_max_iterations: usize,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            alpha: 0.15,
            epsilon: 1e-8,
            delta: 0.005,
            clip: 1e-4,
            solve_tolerance: 1e-12,
            solve_max_iterations: 300,
        }
    }
}

impl Config {
    /// A configuration with everything exact-ish: no clipping, no border-hub
    /// filtering, very deep prime subgraphs. Used by correctness tests.
    pub fn exhaustive() -> Self {
        Config {
            alpha: 0.15,
            epsilon: 1e-14,
            delta: 0.0,
            clip: 0.0,
            solve_tolerance: 1e-15,
            solve_max_iterations: 2_000,
        }
    }

    /// Sets `α`.
    pub fn with_alpha(mut self, alpha: f64) -> Self {
        self.alpha = alpha;
        self
    }

    /// Sets `ε`.
    pub fn with_epsilon(mut self, epsilon: f64) -> Self {
        self.epsilon = epsilon;
        self
    }

    /// Sets `δ`.
    pub fn with_delta(mut self, delta: f64) -> Self {
        self.delta = delta;
        self
    }

    /// Sets the storage clip threshold.
    pub fn with_clip(mut self, clip: f64) -> Self {
        self.clip = clip;
        self
    }

    /// Panics if any parameter is out of its valid range.
    pub fn validate(&self) {
        assert!(
            self.alpha > 0.0 && self.alpha < 1.0,
            "alpha must be in (0, 1), got {}",
            self.alpha
        );
        assert!(self.epsilon >= 0.0 && self.epsilon < 1.0);
        assert!(self.delta >= 0.0 && self.delta < 1.0);
        assert!(self.clip >= 0.0 && self.clip < 1.0);
        assert!(self.solve_tolerance > 0.0);
        assert!(self.solve_max_iterations > 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = Config::default();
        assert_eq!(c.alpha, 0.15);
        assert_eq!(c.epsilon, 1e-8);
        assert_eq!(c.delta, 0.005);
        assert_eq!(c.clip, 1e-4);
        c.validate();
    }

    #[test]
    fn builder_methods_chain() {
        let c = Config::default()
            .with_alpha(0.2)
            .with_epsilon(1e-6)
            .with_delta(0.01)
            .with_clip(0.0);
        assert_eq!(c.alpha, 0.2);
        assert_eq!(c.epsilon, 1e-6);
        assert_eq!(c.delta, 0.01);
        assert_eq!(c.clip, 0.0);
        c.validate();
    }

    #[test]
    #[should_panic(expected = "alpha must be in")]
    fn validate_rejects_bad_alpha() {
        Config::default().with_alpha(1.5).validate();
    }

    #[test]
    fn exhaustive_is_valid() {
        Config::exhaustive().validate();
    }
}
