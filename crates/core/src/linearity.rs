//! Multi-node queries via the Linearity Theorem (Jeh & Widom).
//!
//! The PPV of a weighted multi-node query is the weighted combination of the
//! single-node PPVs (paper §1, "Background"). The paper evaluates on
//! single-node queries for exactly this reason; this module provides the
//! combination for applications that need it (e.g. multi-paper expert
//! search).

use fastppv_graph::{NodeId, SparseVector};

use crate::index::PpvStore;
use crate::query::{QueryEngine, QueryResult, StoppingCondition};

/// A weighted multi-node query result.
#[derive(Clone, Debug)]
pub struct MultiQueryResult {
    /// The combined PPV estimate.
    pub scores: SparseVector,
    /// Weighted accuracy-aware L1 error of the combination.
    pub l1_error: f64,
    /// Per-seed single-node results, in input order.
    pub per_seed: Vec<QueryResult>,
}

/// Answers a multi-node query `Σ wᵢ·r_{qᵢ}`. Weights must be positive; they
/// are normalized to sum to 1, preserving `Σ_p r(p) = 1` and hence the
/// accuracy-awareness of the combined error.
pub fn query_multi<S: PpvStore>(
    engine: &QueryEngine<'_, S>,
    seeds: &[(NodeId, f64)],
    stop: &StoppingCondition,
) -> MultiQueryResult {
    assert!(
        !seeds.is_empty(),
        "multi-node query needs at least one seed"
    );
    let total: f64 = seeds.iter().map(|&(_, w)| w).sum();
    assert!(
        seeds.iter().all(|&(_, w)| w > 0.0),
        "seed weights must be positive"
    );
    let mut ws = engine.workspace();
    let mut combined = SparseVector::new();
    let mut l1_error = 0.0;
    let mut per_seed = Vec::with_capacity(seeds.len());
    for &(q, w) in seeds {
        let result = engine.query_with(&mut ws, q, stop);
        let weight = w / total;
        combined.axpy(weight, &result.scores);
        l1_error += weight * result.l1_error;
        per_seed.push(result);
    }
    MultiQueryResult {
        scores: combined,
        l1_error,
        per_seed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;
    use crate::hubs::HubSet;
    use crate::offline::build_index;
    use fastppv_baselines::exact::{exact_ppv, ExactOptions};
    use fastppv_graph::toy;

    #[test]
    fn combination_matches_weighted_exact() {
        let g = toy::graph();
        let hubs = HubSet::from_ids(8, toy::PAPER_HUBS.to_vec());
        let config = Config::exhaustive();
        let (index, _) = build_index(&g, &hubs, &config);
        let engine = QueryEngine::new(&g, &hubs, &index, config);
        let seeds = [(toy::A, 3.0), (toy::G, 1.0)];
        let res = query_multi(&engine, &seeds, &StoppingCondition::l1_error(1e-10));
        let ea = exact_ppv(&g, toy::A, ExactOptions::default());
        let eg = exact_ppv(&g, toy::G, ExactOptions::default());
        for v in g.nodes() {
            let expected = 0.75 * ea[v as usize] + 0.25 * eg[v as usize];
            assert!((res.scores.get(v) - expected).abs() < 1e-6, "node {v}");
        }
        assert!(res.l1_error < 1e-8);
        assert!((res.scores.l1_norm() - 1.0).abs() < 1e-6);
        assert_eq!(res.per_seed.len(), 2);
    }

    #[test]
    fn single_seed_equals_single_query() {
        let g = toy::graph();
        let hubs = HubSet::from_ids(8, toy::PAPER_HUBS.to_vec());
        let config = Config::exhaustive();
        let (index, _) = build_index(&g, &hubs, &config);
        let engine = QueryEngine::new(&g, &hubs, &index, config);
        let stop = StoppingCondition::iterations(2);
        let multi = query_multi(&engine, &[(toy::A, 7.0)], &stop);
        let single = engine.query(toy::A, &stop);
        assert_eq!(multi.scores, single.scores);
    }

    #[test]
    #[should_panic(expected = "at least one seed")]
    fn rejects_empty_seeds() {
        let g = toy::graph();
        let hubs = HubSet::from_ids(8, toy::PAPER_HUBS.to_vec());
        let config = Config::default();
        let (index, _) = build_index(&g, &hubs, &config);
        let engine = QueryEngine::new(&g, &hubs, &index, config);
        query_multi(&engine, &[], &StoppingCondition::iterations(1));
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn rejects_nonpositive_weights() {
        let g = toy::graph();
        let hubs = HubSet::from_ids(8, toy::PAPER_HUBS.to_vec());
        let config = Config::default();
        let (index, _) = build_index(&g, &hubs, &config);
        let engine = QueryEngine::new(&g, &hubs, &index, config);
        query_multi(&engine, &[(toy::A, 0.0)], &StoppingCondition::iterations(1));
    }
}
