//! Hub selection (paper §4, "Hub selection").
//!
//! Hubs serve two purposes at once: *discriminating* (high out-degree decays
//! tour reachability, so hub count orders tour importance) and *sharing*
//! (popular nodes appear on many tours, so their prime PPVs are reused).
//! The paper integrates both into **expected utility**
//! `EU(v) = PageRank(v) · |Out(v)|` (Eq. 7) and compares against PageRank-
//! only and out-degree-only selection in §6.2; this module implements all of
//! them (plus in-degree and random, used as additional ablations).

use fastppv_graph::{pagerank, Graph, NodeId, PageRankOptions};
use rand::seq::SliceRandom;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Hub selection policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HubPolicy {
    /// `EU(v) = PageRank(v) · |Out(v)|` — the paper's proposal (Eq. 7).
    ExpectedUtility,
    /// Global PageRank only (popularity / sharing).
    PageRank,
    /// Out-degree only (decaying power / discrimination).
    OutDegree,
    /// In-degree (cheap local popularity; discussed and rejected in §4).
    InDegree,
    /// Uniformly random nodes (sanity baseline; §6.2 reports it far worse).
    Random,
}

impl HubPolicy {
    /// All policies, for sweeps.
    pub const ALL: [HubPolicy; 5] = [
        HubPolicy::ExpectedUtility,
        HubPolicy::PageRank,
        HubPolicy::OutDegree,
        HubPolicy::InDegree,
        HubPolicy::Random,
    ];

    /// Short display name.
    pub fn name(&self) -> &'static str {
        match self {
            HubPolicy::ExpectedUtility => "expected-utility",
            HubPolicy::PageRank => "pagerank",
            HubPolicy::OutDegree => "out-degree",
            HubPolicy::InDegree => "in-degree",
            HubPolicy::Random => "random",
        }
    }
}

/// A selected set of hubs with O(1) membership tests.
#[derive(Clone, Debug, PartialEq)]
pub struct HubSet {
    mask: Vec<bool>,
    ids: Vec<NodeId>,
}

impl HubSet {
    /// Builds from explicit node ids (deduplicated, sorted).
    pub fn from_ids(num_nodes: usize, mut ids: Vec<NodeId>) -> Self {
        ids.sort_unstable();
        ids.dedup();
        let mut mask = vec![false; num_nodes];
        for &h in &ids {
            assert!(
                (h as usize) < num_nodes,
                "hub {h} out of range for {num_nodes} nodes"
            );
            mask[h as usize] = true;
        }
        HubSet { mask, ids }
    }

    /// An empty hub set (FastPPV then degenerates to one exhaustive prime
    /// subgraph per query).
    pub fn empty(num_nodes: usize) -> Self {
        HubSet {
            mask: vec![false; num_nodes],
            ids: Vec::new(),
        }
    }

    /// Whether `v` is a hub.
    #[inline]
    pub fn is_hub(&self, v: NodeId) -> bool {
        self.mask[v as usize]
    }

    /// Number of hubs.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Hub ids, sorted ascending.
    pub fn ids(&self) -> &[NodeId] {
        &self.ids
    }

    /// The membership mask (indexed by node id).
    pub fn mask(&self) -> &[bool] {
        &self.mask
    }
}

/// Selects `count` hubs under `policy`. PageRank is computed internally when
/// the policy needs it; pass a precomputed vector to
/// [`select_hubs_with_pagerank`] to avoid recomputation across policies.
pub fn select_hubs(graph: &Graph, policy: HubPolicy, count: usize, seed: u64) -> HubSet {
    select_hubs_with_pagerank(graph, policy, count, seed, None)
}

/// Like [`select_hubs`], reusing a precomputed PageRank vector if given.
pub fn select_hubs_with_pagerank(
    graph: &Graph,
    policy: HubPolicy,
    count: usize,
    seed: u64,
    precomputed_pagerank: Option<&[f64]>,
) -> HubSet {
    let n = graph.num_nodes();
    let count = count.min(n);
    if count == 0 {
        return HubSet::empty(n);
    }
    let ids: Vec<NodeId> = match policy {
        HubPolicy::Random => {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let mut all: Vec<NodeId> = (0..n as NodeId).collect();
            all.shuffle(&mut rng);
            all.truncate(count);
            all
        }
        HubPolicy::OutDegree => top_by(n, count, |v| graph.out_degree(v) as f64),
        HubPolicy::InDegree => top_by(n, count, |v| graph.in_degree(v) as f64),
        HubPolicy::PageRank | HubPolicy::ExpectedUtility => {
            let owned;
            let pr: &[f64] = match precomputed_pagerank {
                Some(pr) => {
                    assert_eq!(pr.len(), n, "pagerank length mismatch");
                    pr
                }
                None => {
                    owned = pagerank(graph, PageRankOptions::default());
                    &owned
                }
            };
            match policy {
                HubPolicy::PageRank => top_by(n, count, |v| pr[v as usize]),
                _ => top_by(n, count, |v| pr[v as usize] * graph.out_degree(v) as f64),
            }
        }
    };
    HubSet::from_ids(n, ids)
}

/// Top `count` node ids by score, ties broken by id (ascending).
fn top_by(n: usize, count: usize, score: impl Fn(NodeId) -> f64) -> Vec<NodeId> {
    let mut order: Vec<NodeId> = (0..n as NodeId).collect();
    order.sort_unstable_by(|&a, &b| score(b).total_cmp(&score(a)).then(a.cmp(&b)));
    order.truncate(count);
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastppv_graph::builder::from_undirected_edges;
    use fastppv_graph::gen::barabasi_albert;
    use fastppv_graph::toy;

    #[test]
    fn from_ids_dedups_and_sorts() {
        let h = HubSet::from_ids(10, vec![5, 2, 5, 9]);
        assert_eq!(h.ids(), &[2, 5, 9]);
        assert_eq!(h.len(), 3);
        assert!(h.is_hub(5) && !h.is_hub(4));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_ids_rejects_out_of_range() {
        HubSet::from_ids(3, vec![3]);
    }

    #[test]
    fn out_degree_policy_picks_star_center() {
        let g = from_undirected_edges(6, &[(0, 1), (0, 2), (0, 3), (0, 4), (0, 5)]);
        let h = select_hubs(&g, HubPolicy::OutDegree, 1, 0);
        assert_eq!(h.ids(), &[0]);
    }

    #[test]
    fn expected_utility_differs_from_outdegree_when_popularity_matters() {
        // The toy graph: a has max out-degree (5), but b/d are more central.
        let g = toy::graph();
        let by_out = select_hubs(&g, HubPolicy::OutDegree, 1, 0);
        assert_eq!(by_out.ids(), &[toy::A]);
        let by_eu = select_hubs(&g, HubPolicy::ExpectedUtility, 3, 0);
        assert_eq!(by_eu.len(), 3);
    }

    #[test]
    fn all_policies_return_requested_count() {
        let g = barabasi_albert(200, 3, 1);
        for policy in HubPolicy::ALL {
            let h = select_hubs(&g, policy, 17, 42);
            assert_eq!(h.len(), 17, "{}", policy.name());
        }
    }

    #[test]
    fn count_clamped_to_graph_size() {
        let g = toy::graph();
        let h = select_hubs(&g, HubPolicy::PageRank, 100, 0);
        assert_eq!(h.len(), 8);
    }

    #[test]
    fn random_is_seed_deterministic() {
        let g = barabasi_albert(100, 2, 3);
        let a = select_hubs(&g, HubPolicy::Random, 10, 7);
        let b = select_hubs(&g, HubPolicy::Random, 10, 7);
        let c = select_hubs(&g, HubPolicy::Random, 10, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn precomputed_pagerank_matches_internal() {
        let g = barabasi_albert(150, 2, 9);
        let pr = pagerank(&g, PageRankOptions::default());
        let a = select_hubs(&g, HubPolicy::ExpectedUtility, 12, 0);
        let b = select_hubs_with_pagerank(&g, HubPolicy::ExpectedUtility, 12, 0, Some(&pr));
        assert_eq!(a, b);
    }

    #[test]
    fn empty_set() {
        let h = HubSet::empty(5);
        assert!(h.is_empty());
        assert!(!h.is_hub(0));
        let h2 = select_hubs(&toy::graph(), HubPolicy::PageRank, 0, 0);
        assert!(h2.is_empty());
    }
}
