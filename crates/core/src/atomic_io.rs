//! Crash-safe file publication: temp file + fsync + atomic rename.
//!
//! Every on-disk index format (`FPPVIDX1`/`FPPVIDX2`/`FPPVIDX3`) is
//! published through [`write_atomic`], so a crash — at *any* byte offset
//! of the write, including mid-`rename` — either leaves the previous
//! good file untouched or the complete new file in place. A torn index
//! file can therefore never exist at the published path; the openers'
//! fail-closed validation only ever has to reject files that were
//! corrupted by something other than our own writer.
//!
//! The protocol:
//!
//! 1. create `<path>.tmp.<pid>` in the **same directory** (`rename(2)` is
//!    only atomic within a filesystem),
//! 2. stream the payload through a [`BufWriter`] into it,
//! 3. `flush` + `File::sync_all` (the data and its length are durable
//!    before the name ever points at them),
//! 4. `rename` over the destination (atomic replace on POSIX),
//! 5. best-effort `sync_all` of the parent directory so the *rename
//!    itself* survives a power cut.
//!
//! On any error the temp file is removed and the destination is left
//! exactly as it was.

use std::fs::{self, File, OpenOptions};
use std::io::{self, BufWriter, Write};
use std::path::{Path, PathBuf};

/// The temp-file sibling `write_atomic` stages `path`'s new contents in.
/// Exposed so crash-simulation tests can enumerate the protocol's
/// intermediate states.
pub fn temp_path_for(path: &Path) -> PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(format!(".tmp.{}", std::process::id()));
    path.with_file_name(name)
}

/// Writes a file crash-safely: `write` streams the payload into a temp
/// file in `path`'s directory, which is fsynced and atomically renamed
/// over `path`. On error the temp file is cleaned up and any existing
/// file at `path` is left untouched.
pub fn write_atomic<P: AsRef<Path>>(
    path: P,
    write: impl FnOnce(&mut BufWriter<File>) -> io::Result<()>,
) -> io::Result<()> {
    let path = path.as_ref();
    let tmp = temp_path_for(path);
    let result = (|| {
        let file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(&tmp)?;
        let mut w = BufWriter::new(file);
        write(&mut w)?;
        w.flush()?;
        // Data must be durable before the rename makes it reachable:
        // otherwise a power cut could leave the *published* name pointing
        // at garbage — exactly the torn file the protocol exists to
        // prevent.
        w.get_ref().sync_all()?;
        fs::rename(&tmp, path)
    })();
    if result.is_err() {
        let _ = fs::remove_file(&tmp);
        return result;
    }
    // The rename is durable once the directory is. Failure here (e.g. a
    // filesystem that refuses O_DIRECTORY reads) costs durability of the
    // last rename on power loss, not consistency — ignore it.
    if let Some(dir) = path.parent() {
        if let Ok(d) = File::open(if dir.as_os_str().is_empty() {
            Path::new(".")
        } else {
            dir
        }) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read;

    fn temp_dir(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("fastppv-atomic-{}-{name}", std::process::id()));
        fs::create_dir_all(&p).unwrap();
        p
    }

    fn read(path: &Path) -> Vec<u8> {
        let mut buf = Vec::new();
        File::open(path).unwrap().read_to_end(&mut buf).unwrap();
        buf
    }

    #[test]
    fn writes_and_replaces() {
        let dir = temp_dir("basic");
        let path = dir.join("out.bin");
        write_atomic(&path, |w| w.write_all(b"first")).unwrap();
        assert_eq!(read(&path), b"first");
        write_atomic(&path, |w| w.write_all(b"second version")).unwrap();
        assert_eq!(read(&path), b"second version");
        assert!(!temp_path_for(&path).exists(), "temp file cleaned up");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn failed_write_preserves_existing_file_and_cleans_temp() {
        let dir = temp_dir("fail");
        let path = dir.join("out.bin");
        write_atomic(&path, |w| w.write_all(b"good")).unwrap();
        let err = write_atomic(&path, |w| {
            w.write_all(b"partial new contents")?;
            Err(io::Error::other("simulated crash"))
        })
        .unwrap_err();
        assert_eq!(err.to_string(), "simulated crash");
        assert_eq!(read(&path), b"good", "destination untouched on error");
        assert!(!temp_path_for(&path).exists(), "temp file cleaned up");
        fs::remove_dir_all(&dir).unwrap();
    }

    /// The crash-simulation contract: a crash at *every* truncation
    /// offset of the temp-file protocol (temp partially written, rename
    /// never issued) must leave an existing good file untouched — and a
    /// fresh `write_atomic` over the debris must still publish cleanly.
    #[test]
    fn truncate_at_every_offset_never_destroys_good_file() {
        let dir = temp_dir("truncate");
        let path = dir.join("out.bin");
        let good = b"the last durably published contents".to_vec();
        write_atomic(&path, |w| w.write_all(&good)).unwrap();
        let new: Vec<u8> = (0..=255u8).collect();
        for cut in 0..=new.len() {
            // Simulate the crash: the temp file holds a prefix of the new
            // payload and the process died before (or during) fsync —
            // no rename ever happened.
            fs::write(temp_path_for(&path), &new[..cut]).unwrap();
            assert_eq!(read(&path), good, "cut at {cut} must not touch the file");
            // Recovery: the next atomic write simply overwrites the
            // debris and publishes.
            write_atomic(&path, |w| w.write_all(&new)).unwrap();
            assert_eq!(read(&path), new);
            // Restore the baseline for the next offset.
            write_atomic(&path, |w| w.write_all(&good)).unwrap();
        }
        fs::remove_dir_all(&dir).unwrap();
    }
}
