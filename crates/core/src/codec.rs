//! Compressed on-disk index (`FPPVIDX2`).
//!
//! The plain format ([`crate::index::DiskIndex`]) spends 8 bytes per entry
//! (u32 node id + f32 score). Index size is a first-class metric in the
//! paper's evaluation (Fig. 7b, Fig. 11), so this module provides a
//! compressed variant:
//!
//! * node ids are **delta-encoded varints** (entries are sorted, and prime
//!   PPVs are local neighborhoods, so deltas are small — typically 1–2
//!   bytes instead of 4);
//! * scores are either `f32` or, optionally, **u16 log-quantized**: clipped
//!   scores span `[clip, 1]`, ~4 decades, which 65k log-spaced steps cover
//!   with < 0.03% relative error — far below the approximation error
//!   budget.
//!
//! Layout (format version 1):
//!
//! ```text
//! magic "FPPVIDX2" | u8 quantization | u8 version | u8×2 reserved | u64 num_hubs
//! directory: num_hubs × { u32 hub_id, u64 offset, u32 byte_len, u32 count }
//! spend:     num_hubs × f64 budget_spent   (directory order)
//! blobs: per hub { varint-delta ids ..., scores ... }
//! ```
//!
//! Version 1 added the per-hub budget-spend section (the error budget each
//! hub's stored PPV has consumed under delta maintenance); version-0 files
//! are rejected with a rebuild hint rather than silently read with spends
//! of zero.

use std::collections::HashMap;
use std::fs::File;
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::Arc;

use parking_lot::Mutex;

use fastppv_graph::{NodeId, SparseVector};

use crate::index::{MemoryIndex, PpvStore, PrimePpv};

use crate::protocol_consts::{IDX2_MAGIC as MAGIC, IDX2_VERSION as CODEC_VERSION};
const HEADER_LEN: usize = 8 + 4 + 8;
const DIR_RECORD_LEN: usize = 4 + 8 + 4 + 4;
const SPEND_LEN: usize = 8;

/// Checked fixed-width read: the `N` bytes at `at`, or `InvalidData` when
/// the input is short. Keeps the open/decode paths free of panicking
/// slice indexing — a corrupt file must surface as an error, not abort.
fn le_bytes<const N: usize>(bytes: &[u8], at: usize) -> io::Result<[u8; N]> {
    bytes
        .get(at..at + N)
        .and_then(|b| b.try_into().ok())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "encoded section truncated"))
}

/// How scores are stored.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum ScoreQuantization {
    /// 4 bytes per score, exact to `f32`.
    #[default]
    F32,
    /// 2 bytes per score: log-spaced over `[floor, 1]` (< 0.03% relative
    /// error across 4 decades). `floor` defaults to 1e-9.
    LogU16,
}

impl ScoreQuantization {
    fn tag(self) -> u8 {
        match self {
            ScoreQuantization::F32 => 0,
            ScoreQuantization::LogU16 => 1,
        }
    }

    fn from_tag(tag: u8) -> io::Result<Self> {
        match tag {
            0 => Ok(ScoreQuantization::F32),
            1 => Ok(ScoreQuantization::LogU16),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unknown score quantization {other}"),
            )),
        }
    }
}

const LOG_FLOOR: f64 = 1e-9;

fn quantize_log(score: f64) -> u16 {
    let clamped = score.clamp(LOG_FLOOR, 1.0);
    let t = (clamped / LOG_FLOOR).ln() / (1.0 / LOG_FLOOR).ln();
    (t * u16::MAX as f64).round() as u16
}

fn dequantize_log(q: u16) -> f64 {
    let t = q as f64 / u16::MAX as f64;
    LOG_FLOOR * (1.0 / LOG_FLOOR).powf(t)
}

fn write_varint(out: &mut Vec<u8>, mut x: u32) {
    loop {
        let byte = (x & 0x7f) as u8;
        x >>= 7;
        if x == 0 {
            out.push(byte);
            break;
        }
        out.push(byte | 0x80);
    }
}

fn read_varint(buf: &[u8], pos: &mut usize) -> io::Result<u32> {
    let mut x: u32 = 0;
    let mut shift = 0;
    loop {
        let &byte = buf
            .get(*pos)
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "varint past blob end"))?;
        *pos += 1;
        if shift >= 32 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "varint overflow",
            ));
        }
        x |= ((byte & 0x7f) as u32) << shift;
        if byte & 0x80 == 0 {
            return Ok(x);
        }
        shift += 7;
    }
}

fn encode_blob(ppv: &PrimePpv, quant: ScoreQuantization) -> Vec<u8> {
    let entries = ppv.entries.entries();
    let mut blob = Vec::with_capacity(entries.len() * 5);
    let mut prev: u32 = 0;
    for &(id, _) in entries {
        write_varint(&mut blob, id - prev);
        prev = id;
    }
    for &(_, score) in entries {
        match quant {
            ScoreQuantization::F32 => blob.extend_from_slice(&(score as f32).to_le_bytes()),
            ScoreQuantization::LogU16 => blob.extend_from_slice(&quantize_log(score).to_le_bytes()),
        }
    }
    blob
}

fn decode_blob(blob: &[u8], count: usize, quant: ScoreQuantization) -> io::Result<PrimePpv> {
    let mut ids = Vec::with_capacity(count);
    let mut pos = 0usize;
    let mut prev: u32 = 0;
    for i in 0..count {
        let delta = read_varint(blob, &mut pos)?;
        let id = if i == 0 {
            delta
        } else {
            prev.checked_add(delta)
                .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "id overflow"))?
        };
        ids.push(id);
        prev = id;
    }
    let score_len = match quant {
        ScoreQuantization::F32 => 4,
        ScoreQuantization::LogU16 => 2,
    };
    if blob.len() < pos + count * score_len {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "score section truncated",
        ));
    }
    let mut entries = Vec::with_capacity(count);
    for (i, id) in ids.into_iter().enumerate() {
        let at = pos + i * score_len;
        let score = match quant {
            ScoreQuantization::F32 => f32::from_le_bytes(le_bytes(blob, at)?) as f64,
            ScoreQuantization::LogU16 => dequantize_log(u16::from_le_bytes(le_bytes(blob, at)?)),
        };
        entries.push((id, score));
    }
    Ok(PrimePpv {
        entries: SparseVector::from_sorted(entries),
    })
}

/// Serializes a [`MemoryIndex`] in the compressed format.
pub fn write_compressed<P: AsRef<Path>>(
    index: &MemoryIndex,
    path: P,
    quant: ScoreQuantization,
) -> io::Result<()> {
    let mut hubs: Vec<NodeId> = index.hub_ids().to_vec();
    hubs.sort_unstable();
    let blobs: Vec<(NodeId, u32, Vec<u8>)> = hubs
        .iter()
        .map(|&h| {
            let ppv = index.get(h).expect("indexed hub");
            let count = ppv.len() as u32;
            (h, count, encode_blob(ppv, quant))
        })
        .collect();
    // Published atomically (temp + fsync + rename): a crash mid-write can
    // never leave a torn FPPVIDX2 file at `path`.
    crate::atomic_io::write_atomic(path, |w| {
        w.write_all(MAGIC)?;
        w.write_all(&[quant.tag(), CODEC_VERSION, 0, 0])?;
        w.write_all(&(hubs.len() as u64).to_le_bytes())?;
        let mut offset = (HEADER_LEN + hubs.len() * (DIR_RECORD_LEN + SPEND_LEN)) as u64;
        for (h, count, blob) in &blobs {
            w.write_all(&h.to_le_bytes())?;
            w.write_all(&offset.to_le_bytes())?;
            w.write_all(&(blob.len() as u32).to_le_bytes())?;
            w.write_all(&count.to_le_bytes())?;
            offset += blob.len() as u64;
        }
        for &h in &hubs {
            w.write_all(&index.budget_spent(h).to_le_bytes())?;
        }
        for (_, _, blob) in &blobs {
            w.write_all(blob)?;
        }
        Ok(())
    })
}

/// File-backed compressed PPV index. Same read API as
/// [`crate::index::DiskIndex`] (implements [`PpvStore`]); trades a little
/// decode CPU for ~40–60% smaller files.
pub struct CompressedDiskIndex {
    file: Mutex<File>,
    directory: HashMap<NodeId, (u64, u32, u32)>,
    spent: HashMap<NodeId, f64>,
    total_entries: usize,
    quant: ScoreQuantization,
    cache: Mutex<HashMap<NodeId, Arc<PrimePpv>>>,
    cache_capacity: usize,
}

impl CompressedDiskIndex {
    /// Opens a file written by [`write_compressed`].
    pub fn open<P: AsRef<Path>>(path: P, cache_capacity: usize) -> io::Result<Self> {
        let mut file = File::open(path)?;
        let mut header = [0u8; HEADER_LEN];
        file.read_exact(&mut header)?;
        if le_bytes::<8>(&header, 0)? != *MAGIC {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "not a compressed FastPPV index (bad magic)",
            ));
        }
        let quant = ScoreQuantization::from_tag(u8::from_le_bytes(le_bytes(&header, 8)?))?;
        let version = u8::from_le_bytes(le_bytes(&header, 9)?);
        if version != CODEC_VERSION {
            let hint = if version == 0 {
                " (version 0 predates the budget-spend section; rebuild the index)"
            } else {
                ""
            };
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unsupported compressed index version {version} (expected {CODEC_VERSION}){hint}"),
            ));
        }
        let num_hubs = u64::from_le_bytes(le_bytes(&header, 12)?) as usize;
        let file_len = file.metadata()?.len();
        (num_hubs as u64)
            .checked_mul((DIR_RECORD_LEN + SPEND_LEN) as u64)
            .filter(|&d| HEADER_LEN as u64 + d <= file_len)
            .ok_or_else(|| {
                io::Error::new(io::ErrorKind::InvalidData, "directory exceeds file size")
            })?;
        let mut dir = vec![0u8; num_hubs * DIR_RECORD_LEN];
        file.read_exact(&mut dir)?;
        let mut spend_bytes = vec![0u8; num_hubs * SPEND_LEN];
        file.read_exact(&mut spend_bytes)?;
        let mut directory = HashMap::with_capacity(num_hubs);
        let mut spent = HashMap::with_capacity(num_hubs);
        let mut total_entries = 0usize;
        for (i, rec) in dir.chunks_exact(DIR_RECORD_LEN).enumerate() {
            let hub = NodeId::from_le_bytes(le_bytes(rec, 0)?);
            let offset = u64::from_le_bytes(le_bytes(rec, 4)?);
            let byte_len = u32::from_le_bytes(le_bytes(rec, 12)?);
            let count = u32::from_le_bytes(le_bytes(rec, 16)?);
            if offset
                .checked_add(byte_len as u64)
                .is_none_or(|end| end > file_len)
            {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("hub {hub} blob out of bounds"),
                ));
            }
            directory.insert(hub, (offset, byte_len, count));
            let spend = f64::from_le_bytes(le_bytes(&spend_bytes, i * SPEND_LEN)?);
            spent.insert(hub, spend);
            total_entries += count as usize;
        }
        Ok(CompressedDiskIndex {
            file: Mutex::new(file),
            directory,
            spent,
            total_entries,
            quant,
            cache: Mutex::new(HashMap::new()),
            cache_capacity,
        })
    }

    /// The score quantization this file uses.
    pub fn quantization(&self) -> ScoreQuantization {
        self.quant
    }

    /// Indexed hub ids, sorted ascending.
    pub fn hub_ids(&self) -> Vec<NodeId> {
        let mut ids: Vec<NodeId> = self.directory.keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// Error budget already consumed by `hub`'s stored PPV (0.0 if `hub` is
    /// not indexed). Round-tripped through the file's spend section.
    pub fn budget_spent(&self, hub: NodeId) -> f64 {
        self.spent.get(&hub).copied().unwrap_or(0.0)
    }
}

impl CompressedDiskIndex {
    /// The stored prime PPV of `hub`, decoded (cache-fronted). The cache
    /// lock is taken once; the read itself is serialized by the file lock.
    pub fn get(&self, hub: NodeId) -> Option<Arc<PrimePpv>> {
        let &(offset, byte_len, count) = self.directory.get(&hub)?;
        let mut cache = self.cache.lock();
        if let Some(hit) = cache.get(&hub) {
            return Some(Arc::clone(hit));
        }
        let mut blob = vec![0u8; byte_len as usize];
        {
            let mut file = self.file.lock();
            file.seek(SeekFrom::Start(offset)).expect("seek");
            file.read_exact(&mut blob).expect("index file corrupt");
        }
        let ppv = Arc::new(decode_blob(&blob, count as usize, self.quant).expect("blob corrupt"));
        if self.cache_capacity > 0 {
            if cache.len() >= self.cache_capacity {
                // Bounded cache with wholesale reset: simple, O(1) amortized.
                cache.clear();
            }
            cache.insert(hub, Arc::clone(&ppv));
        }
        Some(ppv)
    }
}

impl PpvStore for CompressedDiskIndex {
    fn view(&self, hub: NodeId) -> Option<crate::index::PpvRef<'_>> {
        self.get(hub).map(crate::index::PpvRef::Owned)
    }

    fn contains(&self, hub: NodeId) -> bool {
        self.directory.contains_key(&hub)
    }

    fn hub_count(&self) -> usize {
        self.directory.len()
    }

    fn total_entries(&self) -> usize {
        self.total_entries
    }

    fn storage_bytes(&self) -> usize {
        let blob_bytes: u64 = self.directory.values().map(|&(_, len, _)| len as u64).sum();
        HEADER_LEN + self.directory.len() * (DIR_RECORD_LEN + SPEND_LEN) + blob_bytes as usize
    }

    fn resident_bytes(&self) -> usize {
        // Blobs stay on disk (modulo the decode cache); only the directory
        // and spend table are held in memory.
        self.directory.len() * (4 + 8 + 4 + 4 + SPEND_LEN)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "fastppv-codec-{}-{}-{name}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        p
    }

    fn sample_index() -> MemoryIndex {
        let mut idx = MemoryIndex::new(10_000);
        for h in [3u32, 500, 9999] {
            let entries: Vec<(NodeId, f64)> = (0..200)
                .map(|i| (h / 2 + i * 3, 1e-4 * (i as f64 + 1.0)))
                .collect();
            idx.insert(
                h,
                PrimePpv {
                    entries: SparseVector::from_unsorted(entries),
                },
            );
        }
        idx
    }

    #[test]
    fn varint_round_trip() {
        let mut buf = Vec::new();
        let values = [0u32, 1, 127, 128, 300, 16_383, 16_384, u32::MAX];
        for &v in &values {
            write_varint(&mut buf, v);
        }
        let mut pos = 0;
        for &v in &values {
            assert_eq!(read_varint(&buf, &mut pos).unwrap(), v);
        }
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn varint_rejects_truncation() {
        let mut buf = Vec::new();
        write_varint(&mut buf, 100_000);
        buf.truncate(buf.len() - 1);
        let mut pos = 0;
        assert!(read_varint(&buf, &mut pos).is_err());
    }

    #[test]
    fn log_quantization_relative_error() {
        for score in [1e-8, 1e-4, 0.005, 0.15, 0.9999] {
            let q = quantize_log(score);
            let back = dequantize_log(q);
            let rel = (back - score).abs() / score;
            assert!(rel < 5e-4, "score {score}: rel err {rel}");
        }
        // Monotone.
        assert!(quantize_log(1e-5) < quantize_log(1e-4));
    }

    #[test]
    fn f32_round_trip_is_exact_to_f32() {
        let idx = sample_index();
        let path = temp_path("f32.idx2");
        write_compressed(&idx, &path, ScoreQuantization::F32).unwrap();
        let c = CompressedDiskIndex::open(&path, 8).unwrap();
        assert_eq!(c.hub_count(), 3);
        assert_eq!(c.quantization(), ScoreQuantization::F32);
        for h in [3u32, 500, 9999] {
            let a = idx.get(h).unwrap();
            let b = c.get(h).unwrap();
            assert_eq!(a.len(), b.len());
            for (&(va, sa), &(vb, sb)) in a.entries.entries().iter().zip(b.entries.entries()) {
                assert_eq!(va, vb);
                assert!((sa - sb).abs() < 1e-9 + sa * 1e-6);
            }
        }
        assert!(c.get(4).is_none());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn quantized_round_trip_within_tolerance() {
        let idx = sample_index();
        let path = temp_path("u16.idx2");
        write_compressed(&idx, &path, ScoreQuantization::LogU16).unwrap();
        let c = CompressedDiskIndex::open(&path, 8).unwrap();
        for h in [3u32, 500, 9999] {
            let a = idx.get(h).unwrap();
            let b = c.get(h).unwrap();
            for (&(va, sa), &(vb, sb)) in a.entries.entries().iter().zip(b.entries.entries()) {
                assert_eq!(va, vb);
                assert!((sa - sb).abs() / sa < 1e-3, "{sa} vs {sb}");
            }
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn compression_actually_shrinks() {
        let idx = sample_index();
        let plain = temp_path("plain.idx");
        let f32c = temp_path("f32.idx2");
        let u16c = temp_path("u16.idx2");
        idx.write_to_file(&plain).unwrap();
        write_compressed(&idx, &f32c, ScoreQuantization::F32).unwrap();
        write_compressed(&idx, &u16c, ScoreQuantization::LogU16).unwrap();
        let size = |p: &std::path::Path| std::fs::metadata(p).unwrap().len();
        assert!(
            size(&f32c) < size(&plain),
            "varint ids must shrink the file"
        );
        assert!(size(&u16c) < size(&f32c), "u16 scores shrink further");
        for p in [plain, f32c, u16c] {
            std::fs::remove_file(p).unwrap();
        }
    }

    #[test]
    fn compressed_round_trips_budget_spend() {
        let mut idx = sample_index();
        idx.set_budget_spent(3, 0.0075);
        idx.set_budget_spent(9999, 2.5e-4);
        let path = temp_path("spend.idx2");
        write_compressed(&idx, &path, ScoreQuantization::F32).unwrap();
        let c = CompressedDiskIndex::open(&path, 8).unwrap();
        assert_eq!(c.budget_spent(3).to_bits(), 0.0075f64.to_bits());
        assert_eq!(c.budget_spent(500), 0.0);
        assert_eq!(c.budget_spent(9999).to_bits(), 2.5e-4f64.to_bits());
        assert_eq!(c.budget_spent(42), 0.0, "unindexed hub spends nothing");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn open_rejects_version_0_with_hint() {
        let idx = sample_index();
        let path = temp_path("v0.idx2");
        write_compressed(&idx, &path, ScoreQuantization::F32).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[9] = 0; // version byte
        std::fs::write(&path, &bytes).unwrap();
        let err = match CompressedDiskIndex::open(&path, 1) {
            Ok(_) => panic!("version-0 file must be rejected"),
            Err(e) => e,
        };
        let msg = err.to_string();
        assert!(msg.contains("rebuild"), "got: {msg}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn open_rejects_garbage_and_truncation() {
        let path = temp_path("garbage.idx2");
        std::fs::write(&path, b"junk").unwrap();
        assert!(CompressedDiskIndex::open(&path, 1).is_err());
        let idx = sample_index();
        write_compressed(&idx, &path, ScoreQuantization::F32).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 10]).unwrap();
        assert!(CompressedDiskIndex::open(&path, 1).is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn cache_capacity_zero_disables_caching() {
        let idx = sample_index();
        let path = temp_path("nocache.idx2");
        write_compressed(&idx, &path, ScoreQuantization::F32).unwrap();
        let c = CompressedDiskIndex::open(&path, 0).unwrap();
        assert!(c.get(3).is_some());
        assert!(c.get(3).is_some());
        std::fs::remove_file(&path).unwrap();
    }
}
