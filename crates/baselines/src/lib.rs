//! Baselines for the FastPPV reproduction.
//!
//! * [`exact`] — PPV by power iteration to tolerance; the ground truth every
//!   accuracy metric in the evaluation is measured against.
//! * [`naive`] — literal tour enumeration of inverse P-distance (paper
//!   Eq. 1–2) with hub-length partitioning; exponential, only for tiny
//!   graphs, used to validate the scheduled-approximation machinery.
//! * [`bca`] — bookmark-coloring push (Berkhin 2006), the engine under
//!   HubRankP.
//! * [`hubrank`] — the paper's first baseline: BCA with precomputed hub
//!   vectors absorbed at query time (Chakrabarti et al., VLDBJ 2010).
//! * [`montecarlo`] — the paper's second baseline: fingerprint sampling
//!   (Fogaras et al. 2005) with hub fingerprint reuse.
//!
//! All APIs take plain hub masks (`&[bool]`) so this crate stays independent
//! of `fastppv-core`.

pub mod bca;
pub mod exact;
pub mod hubrank;
pub mod montecarlo;
pub mod naive;

pub use exact::{exact_ppv, ExactOptions};
