//! Exact PPV via power iteration.
//!
//! Semantics follow the paper's inverse P-distance (Eq. 1–2): the random
//! surfer stops with probability `α` at every step; at a dangling node the
//! walk cannot continue, so its mass is absorbed (with the default
//! [`fastppv_graph::DanglingPolicy::SelfLoop`] no node is dangling and the
//! PPV is a proper distribution).

use fastppv_graph::{Graph, NodeId, SparseVector};

/// Options for [`exact_ppv`].
#[derive(Clone, Copy, Debug)]
pub struct ExactOptions {
    /// Teleport probability `α` (paper default 0.15).
    pub alpha: f64,
    /// Stop when the L1 change between sweeps falls below this.
    pub tolerance: f64,
    /// Hard cap on sweeps.
    pub max_iterations: usize,
}

impl Default for ExactOptions {
    fn default() -> Self {
        ExactOptions {
            alpha: 0.15,
            tolerance: 1e-12,
            max_iterations: 500,
        }
    }
}

/// Computes the exact PPV `r_q` as a dense vector.
///
/// Iterates `r ← α·e_q + (1-α)·Pᵀ·r` where `P` is the out-degree-normalized
/// transition matrix (rows of dangling nodes are zero).
pub fn exact_ppv(graph: &Graph, q: NodeId, opts: ExactOptions) -> Vec<f64> {
    let n = graph.num_nodes();
    assert!((q as usize) < n, "query node out of range");
    assert!(
        opts.alpha > 0.0 && opts.alpha < 1.0,
        "alpha must be in (0, 1)"
    );
    let alpha = opts.alpha;
    let mut r = vec![0.0; n];
    r[q as usize] = alpha;
    let mut next = vec![0.0; n];
    for _ in 0..opts.max_iterations {
        next.iter_mut().for_each(|x| *x = 0.0);
        next[q as usize] = alpha;
        for u in graph.nodes() {
            let ru = r[u as usize];
            if ru == 0.0 {
                continue;
            }
            let d = graph.out_degree(u);
            if d == 0 {
                continue;
            }
            let share = (1.0 - alpha) * ru / d as f64;
            for &v in graph.out_neighbors(u) {
                next[v as usize] += share;
            }
        }
        let delta: f64 = r.iter().zip(&next).map(|(a, b)| (a - b).abs()).sum();
        std::mem::swap(&mut r, &mut next);
        if delta < opts.tolerance {
            break;
        }
    }
    r
}

/// Like [`exact_ppv`] but returns a sparse vector, dropping entries below
/// `clip`.
pub fn exact_ppv_sparse(graph: &Graph, q: NodeId, opts: ExactOptions, clip: f64) -> SparseVector {
    let dense = exact_ppv(graph, q, opts);
    SparseVector::from_sorted(
        dense
            .iter()
            .enumerate()
            .filter(|&(_, &s)| s >= clip && s > 0.0)
            .map(|(i, &s)| (i as NodeId, s))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastppv_graph::builder::from_edges;
    use fastppv_graph::toy;

    #[test]
    fn sums_to_one_without_dangling() {
        let g = toy::graph();
        let r = exact_ppv(&g, toy::A, ExactOptions::default());
        assert!((r.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn dangling_absorbs_mass() {
        let g = toy::graph_raw();
        let r = exact_ppv(&g, toy::A, ExactOptions::default());
        // Mass that stops at c/e stays; mass that "continues" from them dies.
        assert!(r.iter().sum::<f64>() < 1.0);
        assert!(r[toy::C as usize] > 0.0);
    }

    #[test]
    fn query_entry_contains_teleport_mass() {
        let g = toy::graph();
        let r = exact_ppv(&g, toy::A, ExactOptions::default());
        // r_q(q) >= α (the empty tour).
        assert!(r[toy::A as usize] >= 0.15);
    }

    #[test]
    fn satisfies_fixed_point() {
        let g = from_edges(5, &[(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 2), (1, 4)]);
        let r = exact_ppv(&g, 0, ExactOptions::default());
        for v in g.nodes() {
            let mut rhs = if v == 0 { 0.15 } else { 0.0 };
            for &u in g.in_neighbors(v) {
                rhs += 0.85 * r[u as usize] / g.out_degree(u) as f64;
            }
            assert!((r[v as usize] - rhs).abs() < 1e-9, "node {v}");
        }
    }

    #[test]
    fn two_node_cycle_closed_form() {
        // 0 <-> 1: r_0(0) = α / (1 - (1-α)^2), r_0(1) = (1-α) r_0(0).
        let g = from_edges(2, &[(0, 1), (1, 0)]);
        let r = exact_ppv(&g, 0, ExactOptions::default());
        let a = 0.15;
        let expect0 = a / (1.0 - (1.0 - a) * (1.0 - a));
        assert!((r[0] - expect0).abs() < 1e-10);
        assert!((r[1] - (1.0 - a) * expect0).abs() < 1e-10);
    }

    #[test]
    fn sparse_clips() {
        let g = toy::graph();
        let s = exact_ppv_sparse(&g, toy::A, ExactOptions::default(), 1e-2);
        assert!(s.entries().iter().all(|&(_, v)| v >= 1e-2));
        let full = exact_ppv_sparse(&g, toy::A, ExactOptions::default(), 0.0);
        assert!(full.len() >= s.len());
        assert!((full.l1_norm() - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_query() {
        let g = toy::graph();
        exact_ppv(&g, 99, ExactOptions::default());
    }
}
