//! Monte Carlo fingerprint baseline (Fogaras, Rácz, Csalogány, Sarlós 2005).
//!
//! A *fingerprint* is the endpoint of one sampled random walk: from the
//! start node, stop with probability `α` at each step, otherwise move to a
//! uniform out-neighbor. The empirical endpoint distribution over `N` walks
//! is an unbiased PPV estimate.
//!
//! As in the paper's MonteCarlo baseline (§6), fingerprints for high-
//! PageRank hub nodes are precomputed offline; an online walk that *arrives*
//! at a hub finishes instantly by sampling one of the hub's stored endpoints
//! (a walk arriving at `v` continues exactly like a fresh walk from `v`).

use std::sync::Arc;
use std::time::Instant;

use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

use fastppv_graph::{Graph, NodeId, ScoreScratch, SparseVector};

/// Options for the Monte Carlo baseline.
#[derive(Clone, Copy, Debug)]
pub struct MonteCarloOptions {
    /// Teleport probability `α`.
    pub alpha: f64,
    /// Fingerprints stored per hub offline.
    pub fingerprints_per_hub: usize,
    /// Safety cap on walk length (practically never reached at α = 0.15).
    pub max_walk_len: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for MonteCarloOptions {
    fn default() -> Self {
        MonteCarloOptions {
            alpha: 0.15,
            fingerprints_per_hub: 2_000,
            max_walk_len: 200,
            seed: 0,
        }
    }
}

/// Compressed endpoint samples of one hub: unique endpoints plus cumulative
/// counts, sampled by binary search.
#[derive(Clone, Debug)]
pub struct Fingerprints {
    ids: Vec<NodeId>,
    cumulative: Vec<u32>,
}

impl Fingerprints {
    /// Builds from raw endpoint samples.
    pub fn from_endpoints(mut endpoints: Vec<NodeId>) -> Self {
        endpoints.sort_unstable();
        let mut ids = Vec::new();
        let mut cumulative = Vec::new();
        let mut total = 0u32;
        let mut i = 0;
        while i < endpoints.len() {
            let id = endpoints[i];
            let mut c = 0u32;
            while i < endpoints.len() && endpoints[i] == id {
                c += 1;
                i += 1;
            }
            total += c;
            ids.push(id);
            cumulative.push(total);
        }
        Fingerprints { ids, cumulative }
    }

    /// Total stored samples.
    pub fn total(&self) -> u32 {
        self.cumulative.last().copied().unwrap_or(0)
    }

    /// Number of distinct endpoints.
    pub fn distinct(&self) -> usize {
        self.ids.len()
    }

    /// Draws one endpoint proportionally to its stored count.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> Option<NodeId> {
        let total = self.total();
        if total == 0 {
            return None;
        }
        let x = rng.gen_range(0..total);
        let i = self.cumulative.partition_point(|&c| c <= x);
        Some(self.ids[i])
    }
}

/// Precomputed fingerprints, slot-indexed by node id.
pub struct FingerprintIndex {
    slots: Vec<Option<Arc<Fingerprints>>>,
    hub_ids: Vec<NodeId>,
    build_time: std::time::Duration,
}

impl FingerprintIndex {
    /// Hubs in the index.
    pub fn hub_ids(&self) -> &[NodeId] {
        &self.hub_ids
    }

    /// Fingerprints of `v`, if indexed.
    pub fn get(&self, v: NodeId) -> Option<&Arc<Fingerprints>> {
        self.slots.get(v as usize).and_then(|s| s.as_ref())
    }

    /// Wall-clock time of the offline build.
    pub fn build_time(&self) -> std::time::Duration {
        self.build_time
    }

    /// Approximate index size in bytes (u32 id + u32 count per distinct
    /// endpoint).
    pub fn storage_bytes(&self) -> usize {
        self.slots
            .iter()
            .flatten()
            .map(|f| f.distinct() * 8)
            .sum::<usize>()
            + self.hub_ids.len() * 16
    }
}

/// One random walk from `start`; returns its endpoint, or `None` if the walk
/// dies at a dangling node. If `index` is given, arrival at an indexed hub
/// finishes by sampling a stored endpoint.
fn walk<R: Rng>(
    graph: &Graph,
    start: NodeId,
    opts: &MonteCarloOptions,
    index: Option<&FingerprintIndex>,
    rng: &mut R,
) -> Option<NodeId> {
    let mut cur = start;
    for _ in 0..opts.max_walk_len {
        if rng.gen::<f64>() < opts.alpha {
            return Some(cur);
        }
        let d = graph.out_degree(cur);
        if d == 0 {
            return None; // inverse P-distance semantics: the walk dies
        }
        cur = graph.out_neighbors(cur)[rng.gen_range(0..d)];
        if let Some(idx) = index {
            if cur != start {
                if let Some(fp) = idx.get(cur) {
                    return fp.sample(rng);
                }
            }
        }
    }
    Some(cur)
}

/// Precomputes `fingerprints_per_hub` endpoint samples for each hub.
pub fn build_fingerprint_index(
    graph: &Graph,
    hub_ids: &[NodeId],
    opts: MonteCarloOptions,
) -> FingerprintIndex {
    let start = Instant::now();
    let mut rng = ChaCha8Rng::seed_from_u64(opts.seed);
    let mut index = FingerprintIndex {
        slots: vec![None; graph.num_nodes()],
        hub_ids: hub_ids.to_vec(),
        build_time: std::time::Duration::ZERO,
    };
    for &h in hub_ids {
        let mut endpoints = Vec::with_capacity(opts.fingerprints_per_hub);
        for _ in 0..opts.fingerprints_per_hub {
            // Offline walks may reuse already-indexed hubs.
            if let Some(e) = walk(graph, h, &opts, Some(&index), &mut rng) {
                endpoints.push(e);
            }
        }
        index.slots[h as usize] = Some(Arc::new(Fingerprints::from_endpoints(endpoints)));
    }
    index.build_time = start.elapsed();
    index
}

/// Result of one Monte Carlo query.
#[derive(Clone, Debug)]
pub struct MonteCarloResult {
    /// The PPV estimate (endpoint frequencies).
    pub estimate: SparseVector,
    /// Walks whose endpoint came from a stored hub fingerprint.
    pub hub_hits: usize,
    /// Walks that died at dangling nodes.
    pub dead_walks: usize,
}

/// Estimates the PPV of `q` from `n_samples` walks, reusing hub fingerprints
/// when `index` is provided.
pub fn montecarlo_query(
    graph: &Graph,
    index: Option<&FingerprintIndex>,
    q: NodeId,
    n_samples: usize,
    opts: MonteCarloOptions,
    scratch: &mut ScoreScratch,
) -> MonteCarloResult {
    assert!((q as usize) < graph.num_nodes(), "query node out of range");
    assert!(n_samples > 0);
    let mut rng = ChaCha8Rng::seed_from_u64(opts.seed ^ (q as u64) << 20);
    scratch.ensure_capacity(graph.num_nodes());
    let weight = 1.0 / n_samples as f64;
    let mut hub_hits = 0usize;
    let mut dead_walks = 0usize;
    // If the query is itself an indexed hub, all samples come from storage.
    if let Some(fp) = index.and_then(|i| i.get(q)) {
        for _ in 0..n_samples {
            match fp.sample(&mut rng) {
                Some(e) => {
                    scratch.add(e, weight);
                    hub_hits += 1;
                }
                None => dead_walks += 1,
            }
        }
    } else {
        for _ in 0..n_samples {
            match walk(graph, q, &opts, index, &mut rng) {
                Some(e) => scratch.add(e, weight),
                None => dead_walks += 1,
            }
        }
    }
    MonteCarloResult {
        estimate: scratch.drain_sparse(),
        hub_hits,
        dead_walks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::{exact_ppv, ExactOptions};
    use fastppv_graph::gen::barabasi_albert;
    use fastppv_graph::toy;
    use fastppv_graph::{pagerank, PageRankOptions};

    #[test]
    fn fingerprints_compress_and_sample() {
        let fp = Fingerprints::from_endpoints(vec![3, 1, 3, 3, 1, 7]);
        assert_eq!(fp.total(), 6);
        assert_eq!(fp.distinct(), 3);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut counts = std::collections::HashMap::new();
        for _ in 0..6000 {
            *counts.entry(fp.sample(&mut rng).unwrap()).or_insert(0) += 1;
        }
        // 3 appears 3x as often as 7.
        assert!(counts[&3] > 2 * counts[&7]);
        assert!(!counts.contains_key(&2));
    }

    #[test]
    fn empty_fingerprints_sample_none() {
        let fp = Fingerprints::from_endpoints(vec![]);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        assert_eq!(fp.sample(&mut rng), None);
    }

    #[test]
    fn estimate_l1_norm_is_one_without_dangling() {
        let g = toy::graph();
        let mut scratch = ScoreScratch::new(g.num_nodes());
        let res = montecarlo_query(
            &g,
            None,
            toy::A,
            5_000,
            MonteCarloOptions::default(),
            &mut scratch,
        );
        assert!((res.estimate.l1_norm() - 1.0).abs() < 1e-9);
        assert_eq!(res.dead_walks, 0);
    }

    #[test]
    fn converges_to_exact_with_many_samples() {
        let g = toy::graph();
        let exact = exact_ppv(&g, toy::A, ExactOptions::default());
        let mut scratch = ScoreScratch::new(g.num_nodes());
        let res = montecarlo_query(
            &g,
            None,
            toy::A,
            200_000,
            MonteCarloOptions::default(),
            &mut scratch,
        );
        let gap = res.estimate.l1_distance_dense(&exact);
        assert!(gap < 0.02, "gap {gap}");
    }

    #[test]
    fn dangling_walks_die() {
        let g = toy::graph_raw(); // c, e are sinks
        let mut scratch = ScoreScratch::new(g.num_nodes());
        let res = montecarlo_query(
            &g,
            None,
            toy::A,
            10_000,
            MonteCarloOptions::default(),
            &mut scratch,
        );
        assert!(res.dead_walks > 0);
        assert!(res.estimate.l1_norm() < 1.0);
    }

    #[test]
    fn hub_reuse_preserves_accuracy() {
        let g = barabasi_albert(300, 3, 5);
        let pr = pagerank(&g, PageRankOptions::default());
        let hubs = crate::hubrank::select_hubs_by_benefit(15, &pr);
        // Reused walks inherit the fingerprint index's empirical resolution
        // (~sqrt of effective support / fingerprints_per_hub, ≈0.18 L1 at
        // 5k per hub on this graph — a plateau more query samples cannot
        // cross). 50k per hub brings the plateau under the 0.1 budget.
        let idx = build_fingerprint_index(
            &g,
            &hubs,
            MonteCarloOptions {
                fingerprints_per_hub: 50_000,
                ..Default::default()
            },
        );
        let exact = exact_ppv(&g, 42, ExactOptions::default());
        let mut scratch = ScoreScratch::new(g.num_nodes());
        let res = montecarlo_query(
            &g,
            Some(&idx),
            42,
            30_000,
            MonteCarloOptions::default(),
            &mut scratch,
        );
        let gap = res.estimate.l1_distance_dense(&exact);
        assert!(gap < 0.1, "gap {gap}");
    }

    #[test]
    fn querying_a_hub_uses_storage_only() {
        let g = barabasi_albert(200, 2, 6);
        let pr = pagerank(&g, PageRankOptions::default());
        let hubs = crate::hubrank::select_hubs_by_benefit(5, &pr);
        let idx = build_fingerprint_index(&g, &hubs, MonteCarloOptions::default());
        let mut scratch = ScoreScratch::new(g.num_nodes());
        let res = montecarlo_query(
            &g,
            Some(&idx),
            hubs[0],
            1_000,
            MonteCarloOptions::default(),
            &mut scratch,
        );
        assert_eq!(res.hub_hits, 1_000);
    }

    #[test]
    fn deterministic_given_seed() {
        let g = toy::graph();
        let mut s1 = ScoreScratch::new(g.num_nodes());
        let mut s2 = ScoreScratch::new(g.num_nodes());
        let a = montecarlo_query(
            &g,
            None,
            toy::A,
            1000,
            MonteCarloOptions::default(),
            &mut s1,
        );
        let b = montecarlo_query(
            &g,
            None,
            toy::A,
            1000,
            MonteCarloOptions::default(),
            &mut s2,
        );
        assert_eq!(a.estimate, b.estimate);
    }
}
