//! Literal inverse P-distance by tour enumeration (paper Eq. 1–2).
//!
//! Enumerates every tour from the query whose walk probability stays above a
//! prune threshold, accumulating `R(t) = (1-α)^{L(t)} · α · Π 1/|Out(v_i)|`
//! at each endpoint. Exponential in general — strictly a validation oracle
//! for small graphs. [`partition_by_hub_length`] additionally buckets tour
//! mass by the paper's hub-length metric (Def. 1), which lets tests check
//! FastPPV's per-iteration increments tour-by-tour.

use fastppv_graph::{Graph, NodeId};

/// Sum of `R(t)` per endpoint over all tours from `q` with walk probability
/// `≥ prune`. With `prune → 0` this converges to the exact PPV.
pub fn inverse_p_distance(graph: &Graph, q: NodeId, alpha: f64, prune: f64) -> Vec<f64> {
    let parts = partition_by_hub_length(graph, q, &[], alpha, prune);
    let mut total = vec![0.0; graph.num_nodes()];
    for p in parts {
        for (t, s) in total.iter_mut().zip(&p) {
            *t += s;
        }
    }
    total
}

/// Tour mass bucketed by hub length: element `i` of the result holds, per
/// endpoint, the sum of `R(t)` over tours with `L_h(t) = i` (hubs strictly
/// inside the tour; endpoints excluded, per Def. 1).
///
/// `hubs` is a mask (`hubs[v]` ⇒ v is a hub); an empty slice means no hubs.
/// Tours are pruned when their walk probability drops below `prune`, so the
/// enumeration is finite even on cyclic graphs.
pub fn partition_by_hub_length(
    graph: &Graph,
    q: NodeId,
    hubs: &[bool],
    alpha: f64,
    prune: f64,
) -> Vec<Vec<f64>> {
    partition_by_hub_length_with_pruned(graph, q, hubs, alpha, prune).0
}

/// Like [`partition_by_hub_length`], also returning `pruned`: element `l` is
/// an upper bound on the tour mass lost to pruning at subtrees whose root
/// has hub length `l`. Every pruned tour's hub length is ≥ its subtree
/// root's, so the mass missing from partition `l` is at most
/// `Σ_{i ≤ l} pruned[i]` — a computable per-level error budget for tests
/// that compare these partitions against FastPPV's increments.
pub fn partition_by_hub_length_with_pruned(
    graph: &Graph,
    q: NodeId,
    hubs: &[bool],
    alpha: f64,
    prune: f64,
) -> (Vec<Vec<f64>>, Vec<f64>) {
    assert!((q as usize) < graph.num_nodes(), "query node out of range");
    assert!(alpha > 0.0 && alpha < 1.0);
    assert!(prune > 0.0, "a zero prune threshold would not terminate");
    let is_hub = |v: NodeId| hubs.get(v as usize).copied().unwrap_or(false);
    let mut parts: Vec<Vec<f64>> = Vec::new();
    let mut pruned: Vec<f64> = Vec::new();
    let add = |parts: &mut Vec<Vec<f64>>, level: usize, v: NodeId, mass: f64| {
        while parts.len() <= level {
            parts.push(vec![0.0; graph.num_nodes()]);
        }
        parts[level][v as usize] += mass;
    };
    // Iterative DFS over (node, walk probability, hub length, depth).
    let mut stack: Vec<(NodeId, f64, usize, usize)> = vec![(q, 1.0, 0, 0)];
    while let Some((v, w, hl, depth)) = stack.pop() {
        // The tour ending here contributes α·w at hub length hl.
        add(&mut parts, hl, v, alpha * w);
        let d = graph.out_degree(v);
        if d == 0 {
            continue;
        }
        // Extending past v: v becomes an interior node; if it is a hub (and
        // not the tour's starting position), the extension gains hub length.
        let hl_next = if depth > 0 && is_hub(v) { hl + 1 } else { hl };
        let w_next = w * (1.0 - alpha) / d as f64;
        if w_next < prune {
            // The d dropped subtrees carry at most d·w_next = w·(1-α) of
            // tour mass in total, all of it at hub length ≥ hl_next.
            if pruned.len() <= hl_next {
                pruned.resize(hl_next + 1, 0.0);
            }
            pruned[hl_next] += w * (1.0 - alpha);
            continue;
        }
        for &t in graph.out_neighbors(v) {
            stack.push((t, w_next, hl_next, depth + 1));
        }
    }
    (parts, pruned)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastppv_graph::builder::from_edges;
    use fastppv_graph::toy;

    const ALPHA: f64 = 0.15;

    #[test]
    fn matches_exact_on_toy_graph() {
        let g = toy::graph();
        let naive = inverse_p_distance(&g, toy::A, ALPHA, 1e-12);
        let exact = crate::exact::exact_ppv(&g, toy::A, crate::exact::ExactOptions::default());
        for v in g.nodes() {
            assert!(
                (naive[v as usize] - exact[v as usize]).abs() < 1e-6,
                "node {v}: naive {} exact {}",
                naive[v as usize],
                exact[v as usize]
            );
        }
    }

    #[test]
    fn matches_exact_on_cyclic_graph() {
        let g = from_edges(4, &[(0, 1), (1, 2), (2, 0), (2, 3), (3, 1)]);
        let naive = inverse_p_distance(&g, 0, ALPHA, 1e-11);
        let exact = crate::exact::exact_ppv(&g, 0, crate::exact::ExactOptions::default());
        for v in g.nodes() {
            // Enumeration truncates per-path at 1e-11; the pruned frontier
            // can leave ~1e-5 of aggregate mass uncovered.
            assert!(
                (naive[v as usize] - exact[v as usize]).abs() < 5e-5,
                "node {v}: naive {} exact {}",
                naive[v as usize],
                exact[v as usize]
            );
            assert!(naive[v as usize] <= exact[v as usize] + 1e-12);
        }
    }

    #[test]
    fn partitions_cover_everything_disjointly() {
        let g = toy::graph();
        let mut hubs = vec![false; 8];
        for h in toy::PAPER_HUBS {
            hubs[h as usize] = true;
        }
        let parts = partition_by_hub_length(&g, toy::A, &hubs, ALPHA, 1e-12);
        let total = inverse_p_distance(&g, toy::A, ALPHA, 1e-12);
        let mut sum = [0.0; 8];
        for p in &parts {
            for (s, x) in sum.iter_mut().zip(p) {
                *s += x;
            }
        }
        for v in 0..8 {
            assert!((sum[v] - total[v]).abs() < 1e-12);
        }
    }

    #[test]
    fn toy_graph_has_three_hub_levels() {
        // Fig. 3: tours from a fall into T0, T1, T2 with H = {b, d, f}.
        let g = toy::graph_raw();
        let mut hubs = vec![false; 8];
        for h in toy::PAPER_HUBS {
            hubs[h as usize] = true;
        }
        let parts = partition_by_hub_length(&g, toy::A, &hubs, ALPHA, 1e-12);
        assert_eq!(parts.len(), 3);
        // T2 holds exactly the four two-transfer tours of Fig. 3(b):
        // a→b→d→{e,c} and a→f→(g→)d→{e,c} ... all end at c or e.
        let t2_mass: f64 = parts[2].iter().sum();
        assert!(t2_mass > 0.0);
        for v in [toy::A, toy::B, toy::D, toy::F, toy::G, toy::H] {
            assert_eq!(parts[2][v as usize], 0.0, "node {v} not a T2 endpoint");
        }
    }

    #[test]
    fn partition_masses_decrease_per_level() {
        let g = toy::graph_raw();
        let mut hubs = vec![false; 8];
        for h in toy::PAPER_HUBS {
            hubs[h as usize] = true;
        }
        let parts = partition_by_hub_length(&g, toy::A, &hubs, ALPHA, 1e-12);
        let masses: Vec<f64> = parts.iter().map(|p| p.iter().sum()).collect();
        assert!(masses.windows(2).all(|w| w[0] > w[1]), "{masses:?}");
    }

    #[test]
    fn hub_at_endpoint_does_not_count() {
        // 0 -> 1(hub) : the tour 0→1 ends at the hub, so it stays in T0.
        let g = from_edges(2, &[(0, 1)]);
        let hubs = vec![false, true];
        let parts = partition_by_hub_length(&g, 0, &hubs, ALPHA, 1e-9);
        assert!(parts[0][1] > 0.0);
        // 1's self-loop (dangling fix) extends tours through hub 1.
        if parts.len() > 1 {
            assert_eq!(parts[1][0], 0.0);
        }
    }

    #[test]
    fn query_being_a_hub_counts_only_interior_occurrences() {
        // 0(hub) <-> 1: tour 0→1 has hub length 0 (0 is the start);
        // 0→1→0→1 has hub length 1 (the middle 0).
        let g = from_edges(2, &[(0, 1), (1, 0)]);
        let hubs = vec![true, false];
        let parts = partition_by_hub_length(&g, 0, &hubs, ALPHA, 1e-10);
        assert!(parts.len() >= 2);
        assert!(parts[0][1] > 0.0, "direct tour is T0");
        assert!(parts[1][1] > 0.0, "revisit of hub start is T1");
        // T0 at node 1 is exactly the single tour 0→1.
        assert!((parts[0][1] - 0.85 * 0.15).abs() < 1e-12);
    }

    #[test]
    fn prune_bounds_truncation() {
        let g = from_edges(2, &[(0, 1), (1, 0)]);
        let coarse = inverse_p_distance(&g, 0, ALPHA, 1e-2);
        let fine = inverse_p_distance(&g, 0, ALPHA, 1e-10);
        let c: f64 = coarse.iter().sum();
        let f: f64 = fine.iter().sum();
        assert!(c <= f + 1e-12);
        assert!(f <= 1.0 + 1e-9);
    }
}
