//! Bookmark-Coloring Algorithm (BCA) push, the engine under HubRankP.
//!
//! Berkhin's bookmark coloring maintains an estimate `p` and a residual `r`
//! with the invariant `ppv = p + Σ_u r(u)·ppv_u`. Pushing a node `u` moves
//! `α·r(u)` into the estimate and spreads `(1-α)·r(u)` over its
//! out-neighbors. We stop when the total residual mass drops below a target
//! — which, like FastPPV's φ (Eq. 6), is exactly the L1 gap to the true PPV,
//! so "residual target" and "L1-error target" are directly comparable knobs.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use fastppv_graph::{Graph, NodeId, ScoreScratch, SparseVector};

/// Options for [`bca_push`] / [`bca_push_with_hubs`].
#[derive(Clone, Copy, Debug)]
pub struct BcaOptions {
    /// Teleport probability `α`.
    pub alpha: f64,
    /// Stop once the total residual mass is below this (the paper's `push`
    /// knob for HubRankP, reinterpreted as an L1 target; see module docs).
    pub residual_target: f64,
    /// Hard cap on pushes (safety valve).
    pub max_pushes: usize,
}

impl Default for BcaOptions {
    fn default() -> Self {
        BcaOptions {
            alpha: 0.15,
            residual_target: 1e-4,
            max_pushes: 50_000_000,
        }
    }
}

/// Result of a push run.
#[derive(Clone, Debug)]
pub struct BcaResult {
    /// The PPV estimate.
    pub estimate: SparseVector,
    /// Residual mass left when the run stopped (≈ L1 error).
    pub remaining_residual: f64,
    /// Number of node pushes performed.
    pub pushes: usize,
    /// Number of hub absorptions performed (0 for plain BCA).
    pub hub_absorptions: usize,
}

/// A max-heap entry ordered by residual value.
struct HeapEntry(f64, NodeId);

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.0 == other.0 && self.1 == other.1
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0).then(self.1.cmp(&other.1))
    }
}

/// Looks up the precomputed full PPV of a hub, if any.
pub trait HubVectors {
    /// The stored PPV of `hub`, borrowed (the zero-copy store contract —
    /// absorptions on the push hot path never clone or bump refcounts), or
    /// `None` if `hub` has no vector.
    fn hub_vector(&self, hub: NodeId) -> Option<&SparseVector>;
}

/// No hubs: plain BCA.
pub struct NoHubs;

impl HubVectors for NoHubs {
    fn hub_vector(&self, _hub: NodeId) -> Option<&SparseVector> {
        None
    }
}

/// Plain bookmark-coloring push from `q`.
pub fn bca_push(graph: &Graph, q: NodeId, opts: BcaOptions) -> BcaResult {
    bca_push_with_hubs(graph, q, opts, &NoHubs)
}

/// Bookmark-coloring push that absorbs precomputed hub vectors: when the
/// highest-residual node is a hub (other than the query itself), its entire
/// residual is resolved through its stored PPV in one step.
pub fn bca_push_with_hubs<H: HubVectors>(
    graph: &Graph,
    q: NodeId,
    opts: BcaOptions,
    hubs: &H,
) -> BcaResult {
    let n = graph.num_nodes();
    assert!((q as usize) < n, "query node out of range");
    assert!(opts.alpha > 0.0 && opts.alpha < 1.0);
    let alpha = opts.alpha;
    let mut estimate = ScoreScratch::new(n);
    let mut residual = ScoreScratch::new(n);
    let mut heap: BinaryHeap<HeapEntry> = BinaryHeap::new();
    residual.add(q, 1.0);
    heap.push(HeapEntry(1.0, q));
    let mut total_residual = 1.0;
    let mut pushes = 0usize;
    let mut hub_absorptions = 0usize;

    while total_residual > opts.residual_target && pushes < opts.max_pushes {
        let Some(HeapEntry(val, u)) = heap.pop() else {
            break;
        };
        let ru = residual.get(u);
        if ru <= 0.0 {
            continue; // stale entry
        }
        if ru < val * 0.5 && ru < total_residual / 10.0 {
            // Stale and no longer urgent: requeue at its true priority.
            heap.push(HeapEntry(ru, u));
            continue;
        }
        pushes += 1;
        residual.add(u, -ru);
        if u != q {
            if let Some(vec) = hubs.hub_vector(u) {
                // Resolve all of r(u) through the hub's stored PPV.
                for &(p, s) in vec.entries() {
                    estimate.add(p, ru * s);
                }
                total_residual -= ru;
                hub_absorptions += 1;
                continue;
            }
        }
        estimate.add(u, alpha * ru);
        let d = graph.out_degree(u);
        if d == 0 {
            // Dangling: the non-teleport mass dies (inverse P-distance
            // semantics; cannot happen under the SelfLoop policy).
            total_residual -= ru;
            continue;
        }
        total_residual -= alpha * ru;
        let share = (1.0 - alpha) * ru / d as f64;
        for &v in graph.out_neighbors(u) {
            let before = residual.get(v);
            residual.add(v, share);
            let after = before + share;
            // Only enqueue when the residual grew enough to matter; the
            // factor keeps heap churn down without starving nodes.
            if before == 0.0 || after > 2.0 * before {
                heap.push(HeapEntry(after, v));
            }
        }
    }
    BcaResult {
        estimate: estimate.drain_sparse(),
        remaining_residual: total_residual,
        pushes,
        hub_absorptions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::{exact_ppv, ExactOptions};
    use fastppv_graph::gen::barabasi_albert;
    use fastppv_graph::toy;

    #[test]
    fn converges_to_exact() {
        let g = toy::graph();
        let res = bca_push(
            &g,
            toy::A,
            BcaOptions {
                residual_target: 1e-10,
                ..Default::default()
            },
        );
        let exact = exact_ppv(&g, toy::A, ExactOptions::default());
        for v in g.nodes() {
            assert!(
                (res.estimate.get(v) - exact[v as usize]).abs() < 1e-8,
                "node {v}"
            );
        }
    }

    #[test]
    fn residual_reports_l1_gap() {
        let g = barabasi_albert(300, 3, 2);
        let res = bca_push(
            &g,
            7,
            BcaOptions {
                residual_target: 0.05,
                ..Default::default()
            },
        );
        let exact = exact_ppv(&g, 7, ExactOptions::default());
        let true_gap = res.estimate.l1_distance_dense(&exact);
        assert!(res.remaining_residual <= 0.05 + 1e-9);
        // The estimate is an underestimate; its L1 gap equals the residual.
        assert!(
            (true_gap - res.remaining_residual).abs() < 1e-6,
            "gap {true_gap} vs residual {}",
            res.remaining_residual
        );
    }

    #[test]
    fn estimate_is_entrywise_underestimate() {
        let g = barabasi_albert(200, 2, 3);
        let res = bca_push(
            &g,
            0,
            BcaOptions {
                residual_target: 0.02,
                ..Default::default()
            },
        );
        let exact = exact_ppv(&g, 0, ExactOptions::default());
        for &(v, s) in res.estimate.entries() {
            assert!(s <= exact[v as usize] + 1e-9);
        }
    }

    #[test]
    fn hub_absorption_resolves_mass_in_one_step() {
        let g = toy::graph();
        // Precompute an exact vector for hub d and absorb it.
        let d_vec = SparseVector::from_sorted(
            exact_ppv(&g, toy::D, ExactOptions::default())
                .iter()
                .enumerate()
                .filter(|&(_, &s)| s > 0.0)
                .map(|(i, &s)| (i as NodeId, s))
                .collect(),
        );
        struct OneHub(SparseVector);
        impl HubVectors for OneHub {
            fn hub_vector(&self, hub: NodeId) -> Option<&SparseVector> {
                (hub == toy::D).then_some(&self.0)
            }
        }
        let res = bca_push_with_hubs(
            &g,
            toy::A,
            BcaOptions {
                residual_target: 1e-10,
                ..Default::default()
            },
            &OneHub(d_vec),
        );
        assert!(res.hub_absorptions >= 1);
        let exact = exact_ppv(&g, toy::A, ExactOptions::default());
        for v in g.nodes() {
            assert!((res.estimate.get(v) - exact[v as usize]).abs() < 1e-7);
        }
    }

    #[test]
    fn tighter_target_needs_more_pushes() {
        let g = barabasi_albert(500, 3, 4);
        let loose = bca_push(
            &g,
            1,
            BcaOptions {
                residual_target: 0.1,
                ..Default::default()
            },
        );
        let tight = bca_push(
            &g,
            1,
            BcaOptions {
                residual_target: 0.001,
                ..Default::default()
            },
        );
        assert!(tight.pushes > loose.pushes);
    }
}
