//! HubRankP baseline (Chakrabarti, Pathak, Gupta — VLDBJ 2010).
//!
//! HubRankP improves bookmark coloring with precomputed *hub vectors*: the
//! full PPVs of a benefit-ordered set of hubs, absorbed whole whenever a
//! query-time push reaches a hub. The paper's benefit model assumes a query
//! log; under the uniform log used in the evaluation (§6), expected benefit
//! reduces to how often random walks visit a node, i.e. global PageRank —
//! so hubs are selected and built in descending PageRank order, later hubs
//! reusing the vectors of earlier ones.
//!
//! The contrast with FastPPV is the point of the experiment: HubRankP's
//! offline phase computes *full-graph* PPVs per hub (expensive), while
//! FastPPV only computes prime PPVs over small prime subgraphs.

use std::time::Instant;

use fastppv_graph::{Graph, NodeId, SparseVector};

use crate::bca::{bca_push_with_hubs, BcaOptions, BcaResult, HubVectors};

/// Options for building and querying a [`HubRankIndex`].
#[derive(Clone, Copy, Debug)]
pub struct HubRankOptions {
    /// Teleport probability `α`.
    pub alpha: f64,
    /// Residual-mass target used when precomputing hub vectors offline.
    pub offline_residual: f64,
    /// Storage clip threshold for hub vectors (paper: 1e-4).
    pub clip: f64,
    /// Hard cap on pushes per offline vector.
    pub max_pushes: usize,
}

impl Default for HubRankOptions {
    fn default() -> Self {
        HubRankOptions {
            alpha: 0.15,
            offline_residual: 5e-4,
            clip: 1e-4,
            max_pushes: 50_000_000,
        }
    }
}

/// Precomputed hub vectors, slot-indexed by node id.
pub struct HubRankIndex {
    slots: Vec<Option<SparseVector>>,
    hub_ids: Vec<NodeId>,
    build_time: std::time::Duration,
}

impl HubRankIndex {
    /// Hubs in the index, in build (benefit) order.
    pub fn hub_ids(&self) -> &[NodeId] {
        &self.hub_ids
    }

    /// Number of hubs.
    pub fn num_hubs(&self) -> usize {
        self.hub_ids.len()
    }

    /// Wall-clock time of the offline build.
    pub fn build_time(&self) -> std::time::Duration {
        self.build_time
    }

    /// Total stored entries across all hub vectors.
    pub fn total_entries(&self) -> usize {
        self.slots.iter().flatten().map(|v| v.len()).sum()
    }

    /// Approximate index size in bytes (u32 id + f32 score per entry).
    pub fn storage_bytes(&self) -> usize {
        self.total_entries() * 8 + self.num_hubs() * 16
    }
}

impl HubVectors for HubRankIndex {
    fn hub_vector(&self, hub: NodeId) -> Option<&SparseVector> {
        self.slots.get(hub as usize).and_then(|s| s.as_ref())
    }
}

/// Selects `count` hubs by the uniform-query-log benefit proxy (descending
/// global PageRank), returning them in benefit order.
pub fn select_hubs_by_benefit(count: usize, pagerank: &[f64]) -> Vec<NodeId> {
    let mut order: Vec<NodeId> = (0..pagerank.len() as NodeId).collect();
    order.sort_unstable_by(|&a, &b| {
        pagerank[b as usize]
            .total_cmp(&pagerank[a as usize])
            .then(a.cmp(&b))
    });
    order.truncate(count);
    order
}

/// Precomputes hub vectors in the given (benefit) order; each build absorbs
/// the vectors of previously built hubs.
pub fn build_hubrank_index(
    graph: &Graph,
    hubs_in_benefit_order: &[NodeId],
    opts: HubRankOptions,
) -> HubRankIndex {
    let start = Instant::now();
    let mut index = HubRankIndex {
        slots: vec![None; graph.num_nodes()],
        hub_ids: Vec::with_capacity(hubs_in_benefit_order.len()),
        build_time: std::time::Duration::ZERO,
    };
    let bca = BcaOptions {
        alpha: opts.alpha,
        residual_target: opts.offline_residual,
        max_pushes: opts.max_pushes,
    };
    for &h in hubs_in_benefit_order {
        let res = bca_push_with_hubs(graph, h, bca, &index);
        let mut vec = res.estimate;
        vec.clip(opts.clip);
        index.slots[h as usize] = Some(vec);
        index.hub_ids.push(h);
    }
    index.build_time = start.elapsed();
    index
}

/// Online HubRankP query: BCA push absorbing indexed hub vectors, stopping
/// at residual mass `push` (the paper's per-configuration knob).
pub fn hubrank_query(
    graph: &Graph,
    index: &HubRankIndex,
    q: NodeId,
    push: f64,
    alpha: f64,
) -> BcaResult {
    if let Some(vec) = index.hub_vector(q) {
        // The query is itself a hub: its stored vector answers directly
        // (the one deliberate clone: the result is owned by the caller).
        return BcaResult {
            estimate: vec.clone(),
            remaining_residual: 0.0,
            pushes: 0,
            hub_absorptions: 1,
        };
    }
    let opts = BcaOptions {
        alpha,
        residual_target: push,
        max_pushes: usize::MAX,
    };
    bca_push_with_hubs(graph, q, opts, index)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::{exact_ppv, ExactOptions};
    use fastppv_graph::gen::barabasi_albert;
    use fastppv_graph::{pagerank, PageRankOptions};

    fn setup() -> (Graph, HubRankIndex) {
        let g = barabasi_albert(400, 3, 9);
        let pr = pagerank(&g, PageRankOptions::default());
        let hubs = select_hubs_by_benefit(20, &pr);
        let idx = build_hubrank_index(&g, &hubs, HubRankOptions::default());
        (g, idx)
    }

    #[test]
    fn benefit_order_is_descending_pagerank() {
        let g = barabasi_albert(100, 2, 1);
        let pr = pagerank(&g, PageRankOptions::default());
        let hubs = select_hubs_by_benefit(10, &pr);
        assert_eq!(hubs.len(), 10);
        for w in hubs.windows(2) {
            assert!(pr[w[0] as usize] >= pr[w[1] as usize]);
        }
    }

    #[test]
    fn index_has_all_hubs() {
        let (_, idx) = setup();
        assert_eq!(idx.num_hubs(), 20);
        assert!(idx.total_entries() > 0);
        for &h in idx.hub_ids() {
            assert!(idx.hub_vector(h).is_some());
        }
        assert!(idx.storage_bytes() > idx.total_entries() * 8);
    }

    #[test]
    fn query_accuracy_tracks_push_knob() {
        let (g, idx) = setup();
        let exact = exact_ppv(&g, 123, ExactOptions::default());
        let loose = hubrank_query(&g, &idx, 123, 0.1, 0.15);
        let tight = hubrank_query(&g, &idx, 123, 0.005, 0.15);
        let gap_loose = loose.estimate.l1_distance_dense(&exact);
        let gap_tight = tight.estimate.l1_distance_dense(&exact);
        assert!(gap_tight < gap_loose);
        // Clipped hub vectors lose a little mass beyond the residual target.
        assert!(gap_tight < 0.05, "gap {gap_tight}");
    }

    #[test]
    fn hub_query_answers_from_index() {
        let (g, idx) = setup();
        let h = idx.hub_ids()[0];
        let res = hubrank_query(&g, &idx, h, 0.01, 0.15);
        assert_eq!(res.pushes, 0);
        let exact = exact_ppv(&g, h, ExactOptions::default());
        assert!(res.estimate.l1_distance_dense(&exact) < 0.05);
    }

    #[test]
    fn absorptions_happen_on_scale_free_graphs() {
        let (g, idx) = setup();
        let res = hubrank_query(&g, &idx, 200, 0.01, 0.15);
        assert!(res.hub_absorptions > 0);
    }
}
