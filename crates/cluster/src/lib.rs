//! Disk-based FastPPV processing (paper §5.3 / §6.4.2).
//!
//! Real graphs often exceed main memory. The paper's disk-based design:
//!
//! 1. [`partition`] segments the graph into clusters via randomly chosen
//!    *anchor* nodes, assigning every node to the anchor with the highest
//!    personalized PageRank w.r.t. it (Sarkar & Moore 2010; PPR clusters
//!    well even with random anchors, Andersen et al. 2006).
//! 2. [`store`] lays the clusters out in a file; at query time a
//!    [`store::DiskGraph`] keeps only a bounded number of clusters resident
//!    (the paper keeps exactly one). Touching a node whose cluster is not
//!    resident is a **cluster fault** and triggers a swap.
//! 3. [`query`] runs FastPPV's online phase against the disk graph: the
//!    prime-subgraph search swaps clusters as it expands, prematurely
//!    terminating at a fault cap (the paper sets it to the number of
//!    clusters), and the increment loop reads prime PPVs from the
//!    (disk-resident) PPV index.

pub mod partition;
pub mod query;
pub mod shard;
pub mod store;

pub use partition::{cluster_graph, Clustering, ClusteringOptions};
pub use query::{disk_query, DiskQueryResult, DiskQueryWorkspace};
pub use shard::{slice_store, MapError, ShardMap};
pub use store::{write_clustered_graph, DiskGraph};
