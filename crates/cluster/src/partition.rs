//! Anchor-based graph clustering (paper §5.3, following Sarkar & Moore).
//!
//! Anchors are chosen uniformly at random; every other node is assigned to
//! the anchor with the largest personalized PageRank w.r.t. that anchor,
//! computed with bookmark-coloring push (cheap, approximate). Nodes no
//! anchor reaches are attached by a multi-source BFS over the undirected
//! view, so every node lands in exactly one cluster.

use fastppv_baselines::bca::{bca_push, BcaOptions};
use fastppv_graph::{Graph, NodeId};
use rand::seq::SliceRandom;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Options for [`cluster_graph`].
#[derive(Clone, Copy, Debug)]
pub struct ClusteringOptions {
    /// Teleport probability used for the anchor PPRs.
    pub alpha: f64,
    /// Residual-mass target of each anchor's push run (looser = faster,
    /// coarser assignment).
    pub residual_target: f64,
    /// RNG seed for anchor choice.
    pub seed: u64,
}

impl Default for ClusteringOptions {
    fn default() -> Self {
        ClusteringOptions {
            alpha: 0.15,
            residual_target: 0.01,
            seed: 0,
        }
    }
}

/// A partition of the node set into clusters.
#[derive(Clone, Debug)]
pub struct Clustering {
    /// Cluster id of every node.
    pub assignment: Vec<u32>,
    /// Number of clusters.
    pub num_clusters: usize,
    /// The anchor node of each cluster.
    pub anchors: Vec<NodeId>,
}

impl Clustering {
    /// Nodes per cluster.
    pub fn cluster_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.num_clusters];
        for &c in &self.assignment {
            sizes[c as usize] += 1;
        }
        sizes
    }

    /// Size of the largest cluster (the minimum working set of the
    /// disk-based engine, §6.4.2).
    pub fn largest_cluster(&self) -> usize {
        self.cluster_sizes().into_iter().max().unwrap_or(0)
    }
}

/// Partitions `graph` into `num_clusters` clusters.
pub fn cluster_graph(graph: &Graph, num_clusters: usize, opts: ClusteringOptions) -> Clustering {
    let n = graph.num_nodes();
    assert!(num_clusters >= 1, "need at least one cluster");
    let num_clusters = num_clusters.min(n.max(1));
    let mut rng = ChaCha8Rng::seed_from_u64(opts.seed);
    let mut all: Vec<NodeId> = (0..n as NodeId).collect();
    all.shuffle(&mut rng);
    let anchors: Vec<NodeId> = all[..num_clusters].to_vec();

    const UNASSIGNED: u32 = u32::MAX;
    let mut assignment = vec![UNASSIGNED; n];
    let mut best_score = vec![0.0f64; n];
    let bca = BcaOptions {
        alpha: opts.alpha,
        residual_target: opts.residual_target,
        ..Default::default()
    };
    for (c, &a) in anchors.iter().enumerate() {
        let res = bca_push(graph, a, bca);
        for &(v, s) in res.estimate.entries() {
            if s > best_score[v as usize] {
                best_score[v as usize] = s;
                assignment[v as usize] = c as u32;
            }
        }
        // The anchor always owns itself (its own PPR at itself is maximal
        // among anchors in practice; make it unconditional for robustness).
        assignment[a as usize] = c as u32;
    }

    // Attach unreached nodes by multi-source BFS over the undirected view.
    let mut queue: std::collections::VecDeque<NodeId> = (0..n as NodeId)
        .filter(|&v| assignment[v as usize] != UNASSIGNED)
        .collect();
    while let Some(v) = queue.pop_front() {
        let c = assignment[v as usize];
        for &t in graph.out_neighbors(v).iter().chain(graph.in_neighbors(v)) {
            if assignment[t as usize] == UNASSIGNED {
                assignment[t as usize] = c;
                queue.push_back(t);
            }
        }
    }
    // Isolated nodes (no edges at all): round-robin.
    let mut next = 0u32;
    for slot in assignment.iter_mut() {
        if *slot == UNASSIGNED {
            *slot = next;
            next = (next + 1) % num_clusters as u32;
        }
    }
    Clustering {
        assignment,
        num_clusters,
        anchors,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastppv_graph::gen::barabasi_albert;
    use fastppv_graph::Graph;

    #[test]
    fn every_node_assigned() {
        let g = barabasi_albert(500, 3, 4);
        let c = cluster_graph(&g, 10, ClusteringOptions::default());
        assert_eq!(c.num_clusters, 10);
        assert_eq!(c.assignment.len(), 500);
        assert!(c.assignment.iter().all(|&x| (x as usize) < 10));
        let sizes = c.cluster_sizes();
        assert_eq!(sizes.iter().sum::<usize>(), 500);
        assert!(sizes.iter().all(|&s| s > 0), "{sizes:?}");
    }

    #[test]
    fn anchors_own_their_clusters() {
        let g = barabasi_albert(300, 3, 8);
        let c = cluster_graph(&g, 5, ClusteringOptions::default());
        for (i, &a) in c.anchors.iter().enumerate() {
            assert_eq!(c.assignment[a as usize], i as u32);
        }
    }

    #[test]
    fn more_clusters_shrink_the_largest() {
        let g = barabasi_albert(1000, 3, 2);
        let few = cluster_graph(&g, 5, ClusteringOptions::default());
        let many = cluster_graph(&g, 50, ClusteringOptions::default());
        assert!(many.largest_cluster() <= few.largest_cluster());
    }

    #[test]
    fn deterministic_given_seed() {
        let g = barabasi_albert(200, 2, 5);
        let a = cluster_graph(&g, 8, ClusteringOptions::default());
        let b = cluster_graph(&g, 8, ClusteringOptions::default());
        assert_eq!(a.assignment, b.assignment);
    }

    #[test]
    fn isolated_nodes_get_clusters() {
        let g = Graph::empty(7);
        let c = cluster_graph(&g, 3, ClusteringOptions::default());
        assert!(c.assignment.iter().all(|&x| x < 3));
    }

    #[test]
    fn single_cluster() {
        let g = barabasi_albert(50, 2, 1);
        let c = cluster_graph(&g, 1, ClusteringOptions::default());
        assert!(c.assignment.iter().all(|&x| x == 0));
        assert_eq!(c.largest_cluster(), 50);
    }
}
