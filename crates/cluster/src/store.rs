//! Disk layout for a clustered graph, and the bounded-residency view.
//!
//! Format (`FPPVCLG1`, little-endian):
//!
//! ```text
//! magic "FPPVCLG1" | u32 version | u32 num_clusters | u64 num_nodes
//! assignment: num_nodes × u32          (node -> cluster)
//! directory:  num_clusters × { u64 offset, u64 byte_len }
//! blobs: per cluster {
//!     u32 num_members
//!     members:  num_members × { u32 global_id, u32 degree }
//!     targets:  Σ degree × u32         (global ids, row-major)
//! }
//! ```
//!
//! [`DiskGraph`] keeps the assignment array and directory in memory (tiny)
//! and at most `resident_capacity` cluster blobs (the paper keeps exactly
//! one). Every adjacency probe for a non-resident node is a **cluster
//! fault**: the needed cluster is read from disk, evicting FIFO.

use std::fs::File;
use std::io::{self, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::Path;

use fastppv_core::prime::AdjacencyAccess;
use fastppv_graph::{Graph, NodeId};

use crate::partition::Clustering;

use fastppv_core::protocol_consts::{
    CLUSTER_GRAPH_MAGIC as MAGIC, CLUSTER_GRAPH_VERSION as VERSION,
};

/// Writes `graph` clustered by `clustering` to `path`. Returns the per-
/// cluster byte sizes (the largest is the minimum working set).
pub fn write_clustered_graph<P: AsRef<Path>>(
    graph: &Graph,
    clustering: &Clustering,
    path: P,
) -> io::Result<Vec<u64>> {
    let n = graph.num_nodes();
    assert_eq!(clustering.assignment.len(), n, "clustering/graph mismatch");
    let k = clustering.num_clusters;
    // Group members by cluster.
    let mut members: Vec<Vec<NodeId>> = vec![Vec::new(); k];
    for v in graph.nodes() {
        members[clustering.assignment[v as usize] as usize].push(v);
    }
    // Blob sizes: 4 + m*8 + Σdeg*4.
    let mut blob_sizes: Vec<u64> = Vec::with_capacity(k);
    for ms in &members {
        let deg_sum: usize = ms.iter().map(|&v| graph.out_degree(v)).sum();
        blob_sizes.push(4 + ms.len() as u64 * 8 + deg_sum as u64 * 4);
    }
    let mut w = BufWriter::new(File::create(path)?);
    w.write_all(MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    w.write_all(&(k as u32).to_le_bytes())?;
    w.write_all(&(n as u64).to_le_bytes())?;
    for &c in &clustering.assignment {
        w.write_all(&c.to_le_bytes())?;
    }
    let dir_start = (8 + 4 + 4 + 8 + n * 4) as u64;
    let mut offset = dir_start + (k * 16) as u64;
    for &len in &blob_sizes {
        w.write_all(&offset.to_le_bytes())?;
        w.write_all(&len.to_le_bytes())?;
        offset += len;
    }
    for ms in &members {
        w.write_all(&(ms.len() as u32).to_le_bytes())?;
        for &v in ms {
            w.write_all(&v.to_le_bytes())?;
            w.write_all(&(graph.out_degree(v) as u32).to_le_bytes())?;
        }
        for &v in ms {
            for &t in graph.out_neighbors(v) {
                w.write_all(&t.to_le_bytes())?;
            }
        }
    }
    w.flush()?;
    Ok(blob_sizes)
}

/// One resident cluster, parsed for lookup.
struct ResidentCluster {
    id: u32,
    /// Sorted global member ids (write order is ascending).
    members: Vec<NodeId>,
    offsets: Vec<usize>,
    targets: Vec<NodeId>,
}

impl ResidentCluster {
    fn parse(id: u32, blob: &[u8]) -> io::Result<Self> {
        let take_u32 =
            |b: &[u8], at: usize| -> u32 { u32::from_le_bytes(b[at..at + 4].try_into().unwrap()) };
        if blob.len() < 4 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "cluster blob truncated",
            ));
        }
        let m = take_u32(blob, 0) as usize;
        let mut members = Vec::with_capacity(m);
        let mut offsets = Vec::with_capacity(m + 1);
        offsets.push(0usize);
        let mut pos = 4;
        for _ in 0..m {
            members.push(take_u32(blob, pos));
            let deg = take_u32(blob, pos + 4) as usize;
            offsets.push(offsets.last().unwrap() + deg);
            pos += 8;
        }
        let total: usize = *offsets.last().unwrap();
        let mut targets = Vec::with_capacity(total);
        for _ in 0..total {
            targets.push(take_u32(blob, pos));
            pos += 4;
        }
        debug_assert!(members.windows(2).all(|w| w[0] < w[1]));
        Ok(ResidentCluster {
            id,
            members,
            offsets,
            targets,
        })
    }

    fn local_index(&self, v: NodeId) -> Option<usize> {
        self.members.binary_search(&v).ok()
    }

    fn neighbors(&self, local: usize) -> &[NodeId] {
        &self.targets[self.offsets[local]..self.offsets[local + 1]]
    }
}

/// A disk-resident clustered graph with bounded cluster residency.
pub struct DiskGraph {
    file: File,
    assignment: Vec<u32>,
    directory: Vec<(u64, u64)>,
    resident: Vec<ResidentCluster>,
    resident_capacity: usize,
    faults: u64,
    fault_cap: Option<u64>,
    truncated: bool,
    blob_sizes: Vec<u64>,
}

impl DiskGraph {
    /// Opens a file written by [`write_clustered_graph`], keeping at most
    /// `resident_capacity` clusters in memory (the paper uses 1).
    pub fn open<P: AsRef<Path>>(path: P, resident_capacity: usize) -> io::Result<Self> {
        assert!(resident_capacity >= 1);
        let mut file = File::open(path)?;
        let mut header = [0u8; 24];
        file.read_exact(&mut header)?;
        if &header[..8] != MAGIC {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "not a FastPPV clustered graph (bad magic)",
            ));
        }
        let version = u32::from_le_bytes(header[8..12].try_into().unwrap());
        if version != VERSION {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unsupported cluster file version {version}"),
            ));
        }
        let k = u32::from_le_bytes(header[12..16].try_into().unwrap()) as usize;
        let n = u64::from_le_bytes(header[16..24].try_into().unwrap()) as usize;
        let mut buf = vec![0u8; n * 4];
        file.read_exact(&mut buf)?;
        let assignment: Vec<u32> = buf
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
            .collect();
        let mut dir_buf = vec![0u8; k * 16];
        file.read_exact(&mut dir_buf)?;
        let directory: Vec<(u64, u64)> = dir_buf
            .chunks_exact(16)
            .map(|c| {
                (
                    u64::from_le_bytes(c[0..8].try_into().unwrap()),
                    u64::from_le_bytes(c[8..16].try_into().unwrap()),
                )
            })
            .collect();
        let blob_sizes = directory.iter().map(|&(_, l)| l).collect();
        Ok(DiskGraph {
            file,
            assignment,
            directory,
            resident: Vec::new(),
            resident_capacity,
            faults: 0,
            fault_cap: None,
            truncated: false,
            blob_sizes,
        })
    }

    /// Number of nodes.
    pub fn num_nodes_total(&self) -> usize {
        self.assignment.len()
    }

    /// Number of clusters.
    pub fn num_clusters(&self) -> usize {
        self.directory.len()
    }

    /// Cluster faults since the last [`DiskGraph::reset_faults`].
    pub fn faults(&self) -> u64 {
        self.faults
    }

    /// Whether a fault-capped probe was refused since the last reset.
    pub fn truncated(&self) -> bool {
        self.truncated
    }

    /// Caps the number of faults; once exceeded, adjacency probes for
    /// non-resident nodes return empty (the paper's premature-termination
    /// heuristic, §5.3). `None` removes the cap.
    pub fn set_fault_cap(&mut self, cap: Option<u64>) {
        self.fault_cap = cap;
    }

    /// Resets the fault counter and truncation flag (per query).
    pub fn reset_faults(&mut self) {
        self.faults = 0;
        self.truncated = false;
    }

    /// Byte size of the largest cluster (minimum working set).
    pub fn largest_cluster_bytes(&self) -> u64 {
        self.blob_sizes.iter().copied().max().unwrap_or(0)
    }

    /// Total bytes across clusters.
    pub fn total_cluster_bytes(&self) -> u64 {
        self.blob_sizes.iter().sum()
    }

    /// Ensures `v`'s cluster is resident; returns its resident slot, or
    /// `None` if the fault cap refused the load.
    fn ensure_resident(&mut self, v: NodeId) -> Option<usize> {
        let c = self.assignment[v as usize];
        if let Some(i) = self.resident.iter().position(|r| r.id == c) {
            return Some(i);
        }
        if self.fault_cap.is_some_and(|cap| self.faults >= cap) {
            self.truncated = true;
            return None;
        }
        self.faults += 1;
        let (offset, len) = self.directory[c as usize];
        let mut blob = vec![0u8; len as usize];
        self.file
            .seek(SeekFrom::Start(offset))
            .and_then(|_| self.file.read_exact(&mut blob))
            .expect("cluster file truncated or corrupt");
        let parsed = ResidentCluster::parse(c, &blob).expect("cluster blob corrupt");
        if self.resident.len() >= self.resident_capacity {
            self.resident.remove(0); // FIFO eviction
        }
        self.resident.push(parsed);
        Some(self.resident.len() - 1)
    }
}

impl AdjacencyAccess for DiskGraph {
    fn num_nodes(&self) -> usize {
        self.assignment.len()
    }

    fn out_degree(&mut self, v: NodeId) -> usize {
        match self.ensure_resident(v) {
            Some(i) => {
                let r = &self.resident[i];
                match r.local_index(v) {
                    Some(l) => r.offsets[l + 1] - r.offsets[l],
                    None => 0,
                }
            }
            None => 0,
        }
    }

    fn visit_out_neighbors(&mut self, v: NodeId, f: &mut dyn FnMut(NodeId)) {
        if let Some(i) = self.ensure_resident(v) {
            let r = &self.resident[i];
            if let Some(l) = r.local_index(v) {
                for &t in r.neighbors(l) {
                    f(t);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::{cluster_graph, ClusteringOptions};
    use fastppv_graph::gen::barabasi_albert;

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "fastppv-cluster-{}-{}-{name}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        p
    }

    #[test]
    fn round_trip_preserves_adjacency() {
        let g = barabasi_albert(300, 3, 6);
        let c = cluster_graph(&g, 8, ClusteringOptions::default());
        let path = temp_path("roundtrip.clg");
        let sizes = write_clustered_graph(&g, &c, &path).unwrap();
        assert_eq!(sizes.len(), 8);
        let mut dg = DiskGraph::open(&path, 8).unwrap();
        assert_eq!(dg.num_nodes_total(), 300);
        assert_eq!(dg.num_clusters(), 8);
        for v in g.nodes() {
            assert_eq!(
                AdjacencyAccess::out_degree(&mut dg, v),
                g.out_degree(v),
                "degree of {v}"
            );
            let mut got = Vec::new();
            dg.visit_out_neighbors(v, &mut |t| got.push(t));
            assert_eq!(got, g.out_neighbors(v), "neighbors of {v}");
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn faults_counted_and_capacity_respected() {
        let g = barabasi_albert(200, 2, 9);
        let c = cluster_graph(&g, 5, ClusteringOptions::default());
        let path = temp_path("faults.clg");
        write_clustered_graph(&g, &c, &path).unwrap();
        let mut dg = DiskGraph::open(&path, 1).unwrap();
        // Touch one node per cluster: one fault each.
        for cl in 0..5u32 {
            let v = (0..200u32)
                .find(|&v| c.assignment[v as usize] == cl)
                .unwrap();
            AdjacencyAccess::out_degree(&mut dg, v);
        }
        assert_eq!(dg.faults(), 5);
        // Re-touching the last cluster is free; an earlier one faults again.
        let last = (0..200u32)
            .find(|&v| c.assignment[v as usize] == 4)
            .unwrap();
        AdjacencyAccess::out_degree(&mut dg, last);
        assert_eq!(dg.faults(), 5);
        let first = (0..200u32)
            .find(|&v| c.assignment[v as usize] == 0)
            .unwrap();
        AdjacencyAccess::out_degree(&mut dg, first);
        assert_eq!(dg.faults(), 6);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn fault_cap_truncates() {
        let g = barabasi_albert(200, 2, 11);
        let c = cluster_graph(&g, 10, ClusteringOptions::default());
        let path = temp_path("cap.clg");
        write_clustered_graph(&g, &c, &path).unwrap();
        let mut dg = DiskGraph::open(&path, 1).unwrap();
        dg.set_fault_cap(Some(2));
        let mut refused = 0;
        for v in 0..200u32 {
            let mut any = false;
            dg.visit_out_neighbors(v, &mut |_| any = true);
            if !any {
                refused += 1;
            }
        }
        assert!(dg.faults() <= 2);
        assert!(dg.truncated());
        assert!(refused > 0);
        dg.reset_faults();
        assert_eq!(dg.faults(), 0);
        assert!(!dg.truncated());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn working_set_shrinks_with_more_clusters() {
        let g = barabasi_albert(600, 3, 13);
        let path_few = temp_path("few.clg");
        let path_many = temp_path("many.clg");
        let few = cluster_graph(&g, 4, ClusteringOptions::default());
        let many = cluster_graph(&g, 32, ClusteringOptions::default());
        write_clustered_graph(&g, &few, &path_few).unwrap();
        write_clustered_graph(&g, &many, &path_many).unwrap();
        let dg_few = DiskGraph::open(&path_few, 1).unwrap();
        let dg_many = DiskGraph::open(&path_many, 1).unwrap();
        assert!(dg_many.largest_cluster_bytes() < dg_few.largest_cluster_bytes());
        // Same total adjacency payload (modulo per-cluster headers).
        std::fs::remove_file(&path_few).unwrap();
        std::fs::remove_file(&path_many).unwrap();
    }

    #[test]
    fn open_rejects_garbage() {
        let path = temp_path("garbage.clg");
        std::fs::write(&path, b"nope").unwrap();
        assert!(DiskGraph::open(&path, 1).is_err());
        std::fs::remove_file(&path).unwrap();
    }
}
