//! Disk-based online query processing (paper §5.3 / Fig. 16).
//!
//! Identical to the in-memory Algorithm 2 except that the prime-subgraph
//! search runs against a [`DiskGraph`]: expanding into a non-resident
//! cluster faults it in, and the search terminates prematurely once the
//! fault cap is hit ("minimal loss in accuracy", §5.3 — the refused nodes
//! are treated like sub-`ε` frontier). The increment loop then proceeds on
//! the PPV index exactly as in memory.

use std::time::Instant;

use fastppv_core::config::Config;
use fastppv_core::hubs::HubSet;
use fastppv_core::index::PpvStore;
use fastppv_core::prime::PrimeComputer;
use fastppv_core::query::{run_increments, IncrementScratch, QueryResult, StoppingCondition};
use fastppv_graph::NodeId;

use crate::store::DiskGraph;

/// A disk-based query outcome: the usual [`QueryResult`] plus disk metrics.
#[derive(Clone, Debug)]
pub struct DiskQueryResult {
    /// The PPV estimate and iteration diagnostics.
    pub result: QueryResult,
    /// Cluster faults incurred by this query.
    pub faults: u64,
    /// Whether the prime-subgraph search was cut short by the fault cap.
    pub truncated: bool,
    /// Wall-clock time including cluster I/O.
    pub elapsed: std::time::Duration,
}

/// Answers a query against a disk-resident graph.
///
/// `fault_cap` bounds cluster swaps per query (the paper uses the number of
/// clusters). The query's own prime PPV is loaded from the store when `q`
/// is a hub — no graph access at all in that case.
#[allow(clippy::too_many_arguments)]
pub fn disk_query<S: PpvStore>(
    disk: &mut DiskGraph,
    hubs: &HubSet,
    store: &S,
    config: &Config,
    q: NodeId,
    stop: &StoppingCondition,
    fault_cap: Option<u64>,
    workspace: &mut DiskQueryWorkspace,
) -> DiskQueryResult {
    assert!(
        (q as usize) < disk.num_nodes_total(),
        "query node {q} out of range"
    );
    let started = Instant::now();
    disk.reset_faults();
    disk.set_fault_cap(fault_cap);
    let prime0 = match store.load(q) {
        Some(stored) => stored,
        None => {
            workspace
                .prime
                .prime_ppv_from(&mut *disk, hubs, q, config, 0.0)
                .0
        }
    };
    let result = run_increments(q, &prime0, hubs, store, config, stop, &mut workspace.inc);
    DiskQueryResult {
        result,
        faults: disk.faults(),
        truncated: disk.truncated(),
        elapsed: started.elapsed(),
    }
}

/// Reusable scratch for [`disk_query`].
pub struct DiskQueryWorkspace {
    prime: PrimeComputer,
    inc: IncrementScratch,
}

impl DiskQueryWorkspace {
    /// A workspace for graphs of `n` nodes.
    pub fn new(n: usize) -> Self {
        DiskQueryWorkspace {
            prime: PrimeComputer::new(n),
            inc: IncrementScratch::new(n),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::{cluster_graph, ClusteringOptions};
    use crate::store::write_clustered_graph;
    use fastppv_core::hubs::{select_hubs, HubPolicy};
    use fastppv_core::offline::build_index;
    use fastppv_core::query::QueryEngine;
    use fastppv_graph::gen::barabasi_albert;

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "fastppv-dq-{}-{}-{name}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        p
    }

    #[test]
    fn matches_in_memory_engine_without_cap() {
        let g = barabasi_albert(400, 3, 17);
        let config = Config::default().with_clip(0.0);
        let hubs = select_hubs(&g, HubPolicy::ExpectedUtility, 30, 0);
        let (index, _) = build_index(&g, &hubs, &config);
        let clustering = cluster_graph(&g, 6, ClusteringOptions::default());
        let path = temp_path("match.clg");
        write_clustered_graph(&g, &clustering, &path).unwrap();
        let mut disk = DiskGraph::open(&path, 1).unwrap();
        let mut ws = DiskQueryWorkspace::new(400);
        let stop = StoppingCondition::iterations(2);
        let engine = QueryEngine::new(&g, &hubs, &index, config);
        let queries: Vec<u32> = (0..400).filter(|&v| !hubs.is_hub(v)).take(3).collect();
        for (i, &q) in queries.iter().enumerate() {
            let mem = engine.query(q, &stop);
            let dsk = disk_query(&mut disk, &hubs, &index, &config, q, &stop, None, &mut ws);
            assert_eq!(
                mem.scores, dsk.result.scores,
                "query {q} must match the in-memory engine"
            );
            assert!(!dsk.truncated);
            if i == 0 {
                // Cold start must fault; later queries may find their
                // clusters already resident.
                assert!(dsk.faults >= 1);
            }
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn fault_cap_trades_accuracy_for_io() {
        let g = barabasi_albert(600, 3, 23);
        let config = Config::default().with_clip(0.0);
        // Few hubs -> big prime subgraphs -> many clusters touched.
        let hubs = select_hubs(&g, HubPolicy::ExpectedUtility, 5, 0);
        let (index, _) = build_index(&g, &hubs, &config);
        let clustering = cluster_graph(&g, 20, ClusteringOptions::default());
        let path = temp_path("cap.clg");
        write_clustered_graph(&g, &clustering, &path).unwrap();
        let mut disk = DiskGraph::open(&path, 1).unwrap();
        let mut ws = DiskQueryWorkspace::new(600);
        let stop = StoppingCondition::iterations(1);
        let q = (0..600u32).find(|&v| !hubs.is_hub(v)).unwrap();
        let free = disk_query(&mut disk, &hubs, &index, &config, q, &stop, None, &mut ws);
        let capped = disk_query(
            &mut disk,
            &hubs,
            &index,
            &config,
            q,
            &stop,
            Some(3),
            &mut ws,
        );
        assert!(capped.faults <= 3);
        assert!(capped.faults < free.faults);
        // Accuracy-awareness survives truncation: φ still upper-bounds.
        assert!(capped.result.l1_error >= free.result.l1_error - 1e-12);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn hub_query_needs_no_graph_access() {
        let g = barabasi_albert(300, 3, 29);
        let config = Config::default();
        let hubs = select_hubs(&g, HubPolicy::ExpectedUtility, 20, 0);
        let (index, _) = build_index(&g, &hubs, &config);
        let clustering = cluster_graph(&g, 5, ClusteringOptions::default());
        let path = temp_path("hubq.clg");
        write_clustered_graph(&g, &clustering, &path).unwrap();
        let mut disk = DiskGraph::open(&path, 1).unwrap();
        let mut ws = DiskQueryWorkspace::new(300);
        let h = hubs.ids()[0];
        let res = disk_query(
            &mut disk,
            &hubs,
            &index,
            &config,
            h,
            &StoppingCondition::iterations(1),
            Some(0),
            &mut ws,
        );
        assert_eq!(res.faults, 0);
        assert!(!res.result.scores.is_empty());
        std::fs::remove_file(&path).unwrap();
    }
}
