//! Hub→shard partition maps for scale-out serving.
//!
//! The router in `fastppv-router` scatters each query's border-hub
//! frontier to the shards that *own* those hubs and merges the partial
//! contributions (the paper's linearity decomposition makes the merge
//! exact). This module provides the ownership map:
//!
//! * [`ShardMap::from_clustering`] folds a [`crate::partition`]
//!   anchor-based clustering onto `num_shards` shards round-robin by
//!   cluster id, so hubs that share a cluster — and therefore co-occur in
//!   prime subgraphs and frontiers — land on the same shard and one
//!   scatter touches few shards.
//! * [`ShardMap::write_to_file`] / [`ShardMap::read_from_file`] persist
//!   the map in the `FPVM1` format (byte layout below) with crash-safe
//!   atomic publication; the reader fails closed on any structural
//!   inconsistency.
//! * [`slice_store`] materializes one shard's partial
//!   [`MemoryIndex`] — exactly the hubs it owns — from any full store.
//!
//! ## `FPVM1` byte layout (all little-endian)
//!
//! ```text
//! magic   u32   0x4650_564D ("MVPF" on disk, "FPVM" spelled out)
//! version u16   1
//! shards  u32   number of shards (> 0)
//! nodes   u64   number of nodes
//! owner   u32 × nodes   owning shard of every node (< shards)
//! ```

use std::fmt;
use std::fs;
use std::io::{self, Write};
use std::path::Path;

use fastppv_core::atomic_io::write_atomic;
use fastppv_core::hubs::HubSet;
use fastppv_core::index::{MemoryIndex, PpvStore};
use fastppv_graph::NodeId;

use crate::partition::Clustering;

/// Magic and version of the shard-map format, re-exported from the
/// workspace constant registry under their historical public names.
pub use fastppv_core::protocol_consts::{
    SHARD_MAP_MAGIC as MAP_MAGIC, SHARD_MAP_VERSION as MAP_VERSION,
};

/// Which shard owns each node.
///
/// For hubs, the owner is the shard whose store holds the hub's prime
/// PPV — the only shard that can expand it. For non-hubs the owner is a
/// deterministic routing hint (the router sends iteration 0 of a non-hub
/// query there); any shard *can* compute a non-hub prime PPV on the fly,
/// so non-hub ownership affects load spread, not correctness.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardMap {
    num_shards: u32,
    owner: Vec<u32>,
}

/// Why a shard-map file failed to open. The reader fails closed: any
/// structural inconsistency is an error, never a best-effort map.
#[derive(Debug)]
pub enum MapError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The bytes are not a valid `FPVM1` map (reason inside).
    Format(String),
}

impl fmt::Display for MapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MapError::Io(e) => write!(f, "shard map i/o: {e}"),
            MapError::Format(msg) => write!(f, "shard map format: {msg}"),
        }
    }
}

impl std::error::Error for MapError {}

impl From<io::Error> for MapError {
    fn from(e: io::Error) -> Self {
        MapError::Io(e)
    }
}

impl ShardMap {
    /// Folds a clustering onto `num_shards` shards: node `v` is owned by
    /// `assignment[v] mod num_shards`. Clusters are kept whole (locality:
    /// hubs that co-occur in frontiers stay on one shard) and spread
    /// round-robin (balance: adjacent cluster ids land on different
    /// shards).
    pub fn from_clustering(clustering: &Clustering, num_shards: u32) -> ShardMap {
        assert!(num_shards > 0, "need at least one shard");
        ShardMap {
            num_shards,
            owner: clustering
                .assignment
                .iter()
                .map(|&c| c % num_shards)
                .collect(),
        }
    }

    /// A clustering-free map: node `v` is owned by `v mod num_shards`.
    /// No locality, perfect balance — the test/baseline partitioner.
    pub fn round_robin(num_nodes: usize, num_shards: u32) -> ShardMap {
        assert!(num_shards > 0, "need at least one shard");
        ShardMap {
            num_shards,
            owner: (0..num_nodes).map(|v| v as u32 % num_shards).collect(),
        }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> u32 {
        self.num_shards
    }

    /// Number of nodes the map covers.
    pub fn num_nodes(&self) -> usize {
        self.owner.len()
    }

    /// Owning shard of node `v`.
    pub fn owner(&self, v: NodeId) -> u32 {
        self.owner[v as usize]
    }

    /// The hubs shard `shard` owns, ascending.
    pub fn owned_hubs(&self, hubs: &HubSet, shard: u32) -> Vec<NodeId> {
        hubs.ids()
            .iter()
            .copied()
            .filter(|&h| self.owner(h) == shard)
            .collect()
    }

    /// Hubs per shard — the store-size balance the partitioner achieved.
    pub fn hub_counts(&self, hubs: &HubSet) -> Vec<usize> {
        let mut counts = vec![0usize; self.num_shards as usize];
        for &h in hubs.ids() {
            counts[self.owner(h) as usize] += 1;
        }
        counts
    }

    /// Writes the map crash-safely (`FPVM1`, layout in the module docs).
    pub fn write_to_file<P: AsRef<Path>>(&self, path: P) -> io::Result<()> {
        write_atomic(path, |w| {
            w.write_all(&MAP_MAGIC.to_le_bytes())?;
            w.write_all(&MAP_VERSION.to_le_bytes())?;
            w.write_all(&self.num_shards.to_le_bytes())?;
            w.write_all(&(self.owner.len() as u64).to_le_bytes())?;
            for &o in &self.owner {
                w.write_all(&o.to_le_bytes())?;
            }
            Ok(())
        })
    }

    /// Reads a map written by [`ShardMap::write_to_file`]. Fails closed:
    /// wrong magic/version, truncated or oversized payload, zero shards,
    /// and out-of-range owners are all [`MapError::Format`].
    pub fn read_from_file<P: AsRef<Path>>(path: P) -> Result<ShardMap, MapError> {
        let bytes = fs::read(path)?;
        const HEADER: usize = 4 + 2 + 4 + 8;
        if bytes.len() < HEADER {
            return Err(MapError::Format(format!(
                "file too short for header: {} bytes",
                bytes.len()
            )));
        }
        let magic = u32::from_le_bytes(bytes[0..4].try_into().unwrap());
        if magic != MAP_MAGIC {
            return Err(MapError::Format(format!("bad magic {magic:#x}")));
        }
        let version = u16::from_le_bytes(bytes[4..6].try_into().unwrap());
        if version != MAP_VERSION {
            return Err(MapError::Format(format!("unsupported version {version}")));
        }
        let num_shards = u32::from_le_bytes(bytes[6..10].try_into().unwrap());
        if num_shards == 0 {
            return Err(MapError::Format("zero shards".into()));
        }
        let nodes = u64::from_le_bytes(bytes[10..18].try_into().unwrap());
        let nodes: usize = nodes
            .try_into()
            .map_err(|_| MapError::Format(format!("node count {nodes} overflows usize")))?;
        let expected = HEADER
            + nodes.checked_mul(4).ok_or_else(|| {
                MapError::Format(format!("node count {nodes} overflows the owner table"))
            })?;
        if bytes.len() != expected {
            return Err(MapError::Format(format!(
                "payload is {} bytes, expected {expected} for {nodes} nodes",
                bytes.len()
            )));
        }
        let mut owner = Vec::with_capacity(nodes);
        for i in 0..nodes {
            let at = HEADER + i * 4;
            let o = u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap());
            if o >= num_shards {
                return Err(MapError::Format(format!(
                    "node {i} owned by shard {o}, but only {num_shards} shards"
                )));
            }
            owner.push(o);
        }
        Ok(ShardMap { num_shards, owner })
    }
}

/// Materializes shard `shard`'s partial index from a full store: exactly
/// the hubs the map assigns to it, PPV bytes copied verbatim (so a
/// scattered expansion reads the same numbers a single-process query
/// would). Per-hub error-budget spend is carried over, keeping later
/// delta refreshes on the slice as strict as on the source.
pub fn slice_store<S: PpvStore>(
    store: &S,
    hubs: &HubSet,
    map: &ShardMap,
    shard: u32,
) -> MemoryIndex {
    assert!(shard < map.num_shards(), "shard {shard} out of range");
    let mut index = MemoryIndex::new(map.num_nodes());
    for &h in hubs.ids() {
        if map.owner(h) != shard {
            continue;
        }
        let Some(view) = store.view(h) else {
            panic!("hub {h} has no prime PPV in the store being sliced");
        };
        index.insert(h, view.to_prime_ppv());
        index.set_budget_spent(h, store.spent_budget(h));
    }
    index
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::{cluster_graph, ClusteringOptions};
    use fastppv_core::offline::build_index;
    use fastppv_core::{select_hubs, Config, HubPolicy};
    use fastppv_graph::gen::barabasi_albert;

    fn temp_file(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("fastppv-shardmap-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn map_roundtrips_through_file() {
        let g = barabasi_albert(300, 3, 7);
        let clustering = cluster_graph(&g, 8, ClusteringOptions::default());
        let map = ShardMap::from_clustering(&clustering, 4);
        let path = temp_file("roundtrip");
        map.write_to_file(&path).unwrap();
        let back = ShardMap::read_from_file(&path).unwrap();
        std::fs::remove_file(&path).unwrap();
        assert_eq!(map, back);
    }

    #[test]
    fn reader_fails_closed_on_corruption() {
        let map = ShardMap::round_robin(64, 4);
        let path = temp_file("corrupt");
        map.write_to_file(&path).unwrap();
        let good = std::fs::read(&path).unwrap();
        // Truncation, magic flip, version flip, out-of-range owner,
        // trailing junk: every mutation must be rejected, never mapped.
        let mut cases: Vec<Vec<u8>> = vec![
            good[..good.len() - 1].to_vec(),
            good[..10].to_vec(),
            Vec::new(),
        ];
        let mut bad_magic = good.clone();
        bad_magic[0] ^= 0xff;
        cases.push(bad_magic);
        let mut bad_version = good.clone();
        bad_version[4] = 9;
        cases.push(bad_version);
        let mut bad_owner = good.clone();
        let last = bad_owner.len() - 4;
        bad_owner[last..].copy_from_slice(&99u32.to_le_bytes());
        cases.push(bad_owner);
        let mut trailing = good.clone();
        trailing.push(0);
        cases.push(trailing);
        for (i, bytes) in cases.into_iter().enumerate() {
            std::fs::write(&path, &bytes).unwrap();
            assert!(
                matches!(ShardMap::read_from_file(&path), Err(MapError::Format(_))),
                "corruption case {i} was not rejected"
            );
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn clustering_map_keeps_clusters_whole_and_slices_partition_the_store() {
        let g = barabasi_albert(400, 3, 11);
        let clustering = cluster_graph(&g, 12, ClusteringOptions::default());
        let map = ShardMap::from_clustering(&clustering, 4);
        // Cluster-mates share a shard.
        for v in 0..400u32 {
            for u in 0..400u32 {
                if clustering.assignment[v as usize] == clustering.assignment[u as usize] {
                    assert_eq!(map.owner(v), map.owner(u));
                }
            }
        }
        let config = Config::default().with_epsilon(1e-6);
        let hubs = select_hubs(&g, HubPolicy::ExpectedUtility, 40, 0);
        let (index, _) = build_index(&g, &hubs, &config);
        let slices: Vec<MemoryIndex> = (0..4)
            .map(|s| slice_store(&index, &hubs, &map, s))
            .collect();
        let total: usize = slices.iter().map(|s| s.hub_count()).sum();
        assert_eq!(total, index.hub_count(), "slices must partition the hubs");
        for (s, slice) in slices.iter().enumerate() {
            for &h in slice.hub_ids() {
                assert_eq!(map.owner(h), s as u32);
                // Byte-identical PPV content.
                assert_eq!(
                    slice.view(h).unwrap().to_prime_ppv(),
                    index.view(h).unwrap().to_prime_ppv()
                );
            }
        }
    }
}
