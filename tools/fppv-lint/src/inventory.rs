//! The unsafe inventory: a machine-generated census of every `unsafe`
//! site in the workspace sources, rendered to `UNSAFE_INVENTORY.md`.
//!
//! CI regenerates the inventory and diffs it against the committed file
//! (`fppv-lint inventory --check`), so new unsafe code cannot land
//! without the diff showing up in review.

use std::fs;
use std::path::Path;

use crate::config::Config;
use crate::lexer;
use crate::rules::source_files;
use crate::scan;

/// Renders the inventory for the tree rooted at `cfg.root`.
pub fn render(cfg: &Config) -> String {
    let mut total = 0usize;
    let mut per_file: Vec<(String, Vec<String>)> = Vec::new();
    for path in source_files(&cfg.root) {
        let Ok(src) = fs::read_to_string(&path) else {
            continue;
        };
        let lexed = lexer::lex(&src);
        let sites = scan::unsafe_sites(&lexed.masked);
        if sites.is_empty() {
            continue;
        }
        let rel = path
            .strip_prefix(&cfg.root)
            .unwrap_or(&path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        let mut lines = Vec::new();
        for site in &sites {
            let line_no = lexed.line_of(site.offset);
            let context = src
                .lines()
                .nth(line_no - 1)
                .unwrap_or("")
                .trim()
                .chars()
                .take(72)
                .collect::<String>();
            lines.push(format!(
                "- line {line_no} · {} · `{context}`",
                site.kind.as_str()
            ));
        }
        total += sites.len();
        per_file.push((rel, lines));
    }

    let mut out = String::new();
    out.push_str("# Unsafe inventory\n\n");
    out.push_str(
        "Machine-generated census of every `unsafe` site under `crates/*/src`\n\
         and `src/`. Regenerate with `cargo run -p fppv-lint -- inventory`;\n\
         CI fails if this file is stale (`fppv-lint inventory --check`).\n\
         Every site must carry a `// SAFETY:` comment (rule `unsafe-audit`).\n\n",
    );
    out.push_str(&format!("Total: {total} unsafe sites.\n"));
    for (rel, lines) in &per_file {
        out.push_str(&format!("\n## {rel} ({})\n\n", lines.len()));
        for l in lines {
            out.push_str(l);
            out.push('\n');
        }
    }
    out
}

/// Compares the regenerated inventory with the committed file. Returns
/// `Ok(())` when in sync, `Err(message)` otherwise.
pub fn check(cfg: &Config, committed_path: &Path) -> Result<(), String> {
    let fresh = render(cfg);
    let committed = fs::read_to_string(committed_path)
        .map_err(|e| format!("{}: {e}", committed_path.display()))?;
    if fresh == committed {
        Ok(())
    } else {
        Err(format!(
            "{} is stale; regenerate with `cargo run -p fppv-lint -- inventory`",
            committed_path.display()
        ))
    }
}
