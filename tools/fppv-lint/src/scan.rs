//! Structural scans over masked source: brace matching, function body
//! spans, `#[cfg(test)]` regions, identifier tokens, and `unsafe` sites.
//!
//! Everything here operates on the *masked* text produced by
//! [`crate::lexer::lex`], so braces, keywords, and punctuation inside
//! comments or string literals are never mistaken for code.

use crate::lexer::is_ident_char;

/// Returns the offset one past the `}` matching the `{` at `open`.
/// Unbalanced input returns the end of the text (lint input is expected
/// to parse, but the scanner must not loop or panic on garbage).
pub fn brace_match(masked: &str, open: usize) -> usize {
    let b = masked.as_bytes();
    debug_assert_eq!(b[open], b'{');
    let mut depth = 0usize;
    for (i, &c) in b.iter().enumerate().skip(open) {
        match c {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
            _ => {}
        }
    }
    b.len()
}

/// Returns the offset one past the end of the item starting at `pos`:
/// either the `;` of a bodiless item or the `}` of its block, tracking
/// parenthesis/bracket depth so `fn f(x: [u8; 4]);` ends at the right
/// semicolon.
pub fn item_end(masked: &str, pos: usize) -> usize {
    let b = masked.as_bytes();
    let mut depth = 0isize;
    let mut i = pos;
    while i < b.len() {
        match b[i] {
            b'(' | b'[' => depth += 1,
            b')' | b']' => depth -= 1,
            b';' if depth <= 0 => return i + 1,
            b'{' if depth <= 0 => return brace_match(masked, i),
            _ => {}
        }
        i += 1;
    }
    b.len()
}

/// Byte ranges of test-only code: items annotated `#[cfg(test)]`,
/// `#[cfg(all(test, ...))]`, or `#[test]`.
pub fn test_regions(masked: &str) -> Vec<(usize, usize)> {
    let mut regions = Vec::new();
    for pat in ["#[cfg(test)]", "#[cfg(all(test", "#[test]"] {
        let mut from = 0;
        while let Some(rel) = masked[from..].find(pat) {
            let at = from + rel;
            let attr_end = item_end(masked, at).min(
                masked[at..]
                    .find(']')
                    .map(|r| at + r + 1)
                    .unwrap_or(masked.len()),
            );
            let end = item_end(masked, attr_end);
            regions.push((at, end));
            from = at + pat.len();
        }
    }
    regions.sort_unstable();
    regions
}

pub fn in_regions(regions: &[(usize, usize)], offset: usize) -> bool {
    regions.iter().any(|&(s, e)| s <= offset && offset < e)
}

/// One `fn` item with a body.
#[derive(Debug)]
pub struct FnSpan {
    pub name: String,
    /// Byte range of the body, `{` to one past `}`.
    pub body: (usize, usize),
}

/// Every named function with a body, in source order (nested functions
/// and methods included).
pub fn fn_spans(masked: &str) -> Vec<FnSpan> {
    let b = masked.as_bytes();
    let mut spans = Vec::new();
    for at in find_word(masked, "fn") {
        // Skip whitespace, read the name (absent for `fn(` trait-object
        // types like `Fn(..)` — those fail the word match anyway).
        let mut i = at + 2;
        while i < b.len() && b[i].is_ascii_whitespace() {
            i += 1;
        }
        let start = i;
        while i < b.len() && is_ident_char(b[i]) {
            i += 1;
        }
        if i == start {
            continue;
        }
        let name = masked[start..i].to_string();
        // Find the body `{` (or `;` for a bodiless declaration) at
        // paren/bracket depth 0.
        let mut depth = 0isize;
        let mut j = i;
        let body = loop {
            if j >= b.len() {
                break None;
            }
            match b[j] {
                b'(' | b'[' => depth += 1,
                b')' | b']' => depth -= 1,
                b';' if depth <= 0 => break None,
                b'{' if depth <= 0 => break Some((j, brace_match(masked, j))),
                _ => {}
            }
            j += 1;
        };
        if let Some(body) = body {
            spans.push(FnSpan { name, body });
        }
    }
    spans
}

/// Offsets of whole-word occurrences of `word` in `masked`.
pub fn find_word(masked: &str, word: &str) -> Vec<usize> {
    let b = masked.as_bytes();
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(rel) = masked[from..].find(word) {
        let at = from + rel;
        let before_ok = at == 0 || !is_ident_char(b[at - 1]) && b[at - 1] != b'\'';
        let after = at + word.len();
        let after_ok = after >= b.len() || !is_ident_char(b[after]);
        if before_ok && after_ok {
            out.push(at);
        }
        from = at + word.len().max(1);
    }
    out
}

/// What kind of item an `unsafe` keyword introduces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnsafeKind {
    Block,
    Fn,
    Impl,
    Trait,
    Extern,
}

impl UnsafeKind {
    pub fn as_str(self) -> &'static str {
        match self {
            UnsafeKind::Block => "block",
            UnsafeKind::Fn => "fn",
            UnsafeKind::Impl => "impl",
            UnsafeKind::Trait => "trait",
            UnsafeKind::Extern => "extern block",
        }
    }
}

#[derive(Debug)]
pub struct UnsafeSite {
    pub offset: usize,
    pub kind: UnsafeKind,
}

/// Every `unsafe` keyword in the masked text, classified by the token
/// that follows it.
pub fn unsafe_sites(masked: &str) -> Vec<UnsafeSite> {
    let b = masked.as_bytes();
    find_word(masked, "unsafe")
        .into_iter()
        .map(|at| {
            let mut i = at + "unsafe".len();
            while i < b.len() && b[i].is_ascii_whitespace() {
                i += 1;
            }
            let rest = &masked[i..];
            let kind = if rest.starts_with('{') {
                UnsafeKind::Block
            } else if rest.starts_with("fn") {
                UnsafeKind::Fn
            } else if rest.starts_with("impl") {
                UnsafeKind::Impl
            } else if rest.starts_with("trait") {
                UnsafeKind::Trait
            } else if rest.starts_with("extern") {
                UnsafeKind::Extern
            } else {
                // `pub unsafe fn` puts visibility first; `unsafe` then
                // anything else (attrs between) still guards a fn.
                UnsafeKind::Fn
            };
            UnsafeSite { offset: at, kind }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn fn_spans_find_bodies_and_skip_declarations() {
        let src = "fn a() { inner(); } trait T { fn b(&self); fn c(&self) { x } }";
        let spans = fn_spans(&lex(src).masked);
        let names: Vec<_> = spans.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["a", "c"]);
    }

    #[test]
    fn fn_body_search_ignores_array_types_in_signature() {
        let src = "fn f(x: [u8; 4]) -> [u8; 2] { body() }";
        let spans = fn_spans(&lex(src).masked);
        assert_eq!(spans.len(), 1);
        let (s, e) = spans[0].body;
        assert!(src[s..e].contains("body()"));
    }

    #[test]
    fn test_regions_cover_cfg_test_mod() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests { fn t() { x.unwrap(); } }\nfn live2() {}";
        let l = lex(src);
        let regions = test_regions(&l.masked);
        assert_eq!(regions.len(), 1);
        let unwrap_at = l.masked.find("unwrap").unwrap();
        assert!(in_regions(&regions, unwrap_at));
        assert!(!in_regions(&regions, l.masked.find("live2").unwrap()));
    }

    #[test]
    fn cfg_test_on_use_item_does_not_swallow_the_file() {
        let src = "#[cfg(test)]\nuse foo::bar;\nfn live() { body }";
        let l = lex(src);
        let regions = test_regions(&l.masked);
        assert!(!in_regions(&regions, l.masked.find("body").unwrap()));
    }

    #[test]
    fn unsafe_sites_classify() {
        let src = "unsafe impl Send for X {}\nfn f() { unsafe { g() } }\npub unsafe fn h() {}";
        let sites = unsafe_sites(&lex(src).masked);
        let kinds: Vec<_> = sites.iter().map(|s| s.kind).collect();
        assert_eq!(kinds, [UnsafeKind::Impl, UnsafeKind::Block, UnsafeKind::Fn]);
    }

    #[test]
    fn find_word_respects_boundaries() {
        let masked = "unwrap unwrapped my_unwrap .unwrap(";
        let hits = find_word(masked, "unwrap");
        assert_eq!(hits.len(), 2); // first and last
    }
}
