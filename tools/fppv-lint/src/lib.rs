//! `fppv-lint` — the FastPPV workspace invariant checker.
//!
//! The paper's guarantees (certified error bounds, crash-safe
//! publication, fail-closed serving) rest on code-level invariants that
//! ordinary compilation cannot see: which modules must never panic,
//! which `unsafe` is audited, where the wire constants live, and which
//! locks may be held across I/O. This crate machine-checks them.
//!
//! Library layout:
//! - [`lexer`]: comment/string-aware masking lexer,
//! - [`scan`]: structural scans (fn spans, test regions, unsafe sites),
//! - [`config`]: the declared policy (fail-closed surface, registry,
//!   README drift table),
//! - [`rules`]: the rule engine and allow-directive machinery,
//! - [`inventory`]: the `UNSAFE_INVENTORY.md` generator/checker.
//!
//! The `fppv-lint` binary wires these into `check` and `inventory`
//! subcommands; integration tests run the same entry points against
//! fixture trees and the real repository.

pub mod config;
pub mod inventory;
pub mod lexer;
pub mod rules;
pub mod scan;

pub use config::Config;
pub use rules::{run_check, Diagnostic, Family, Rule, ALL_FAMILIES};
