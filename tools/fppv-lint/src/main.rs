//! CLI: `fppv-lint check [--root DIR]` and
//! `fppv-lint inventory [--check] [--root DIR]`.
//!
//! `check` exits nonzero on any diagnostic — CI uses it as a hard gate.
//! `inventory` rewrites `UNSAFE_INVENTORY.md` at the workspace root;
//! with `--check` it only compares and exits nonzero when stale.

use std::path::PathBuf;
use std::process::ExitCode;

use fppv_lint::{config::Config, inventory, rules, ALL_FAMILIES};

const USAGE: &str = "usage: fppv-lint <check|inventory> [--check] [--root DIR]";

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(cmd) = args.next() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let mut root: Option<PathBuf> = None;
    let mut check_only = false;
    let mut rest = args;
    while let Some(a) = rest.next() {
        match a.as_str() {
            "--root" => match rest.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("--root needs a directory\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--check" => check_only = true,
            other => {
                eprintln!("unknown argument `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    // Default to the workspace root this binary was built from, so
    // `cargo run -p fppv-lint -- check` works from any directory.
    let root = root.unwrap_or_else(|| {
        PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .canonicalize()
            .unwrap_or_else(|_| PathBuf::from("."))
    });
    let cfg = Config::default_for(root);

    match cmd.as_str() {
        "check" => {
            let diags = rules::run_check(&cfg, &ALL_FAMILIES);
            for d in &diags {
                println!("{d}");
            }
            if diags.is_empty() {
                println!("fppv-lint: clean");
                ExitCode::SUCCESS
            } else {
                eprintln!("fppv-lint: {} violation(s)", diags.len());
                ExitCode::FAILURE
            }
        }
        "inventory" => {
            let out_path = cfg.root.join("UNSAFE_INVENTORY.md");
            if check_only {
                match inventory::check(&cfg, &out_path) {
                    Ok(()) => {
                        println!("fppv-lint: inventory in sync");
                        ExitCode::SUCCESS
                    }
                    Err(msg) => {
                        eprintln!("fppv-lint: {msg}");
                        ExitCode::FAILURE
                    }
                }
            } else {
                let rendered = inventory::render(&cfg);
                match std::fs::write(&out_path, rendered) {
                    Ok(()) => {
                        println!("fppv-lint: wrote {}", out_path.display());
                        ExitCode::SUCCESS
                    }
                    Err(e) => {
                        eprintln!("fppv-lint: {}: {e}", out_path.display());
                        ExitCode::FAILURE
                    }
                }
            }
        }
        other => {
            eprintln!("unknown command `{other}`\n{USAGE}");
            ExitCode::from(2)
        }
    }
}
