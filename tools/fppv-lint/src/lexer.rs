//! A lightweight, comment- and string-aware Rust lexer.
//!
//! The rules in this tool never want to match inside comments or string
//! literals (an error message mentioning `unwrap` is not a call to
//! `unwrap`). Instead of tokenizing fully, [`lex`] produces a *masked*
//! copy of the source — byte-for-byte the same length and line
//! structure, with comment text and literal contents replaced by
//! spaces — plus the comments and string literals as separate lists.
//! Rules scan the masked text with exact byte offsets, so every
//! diagnostic maps back to a real line and column.
//!
//! Handled: `//` line comments, nested `/* */` block comments, plain
//! and byte strings with escapes, raw (byte) strings with any number of
//! `#`s, raw identifiers (`r#fn`), char and byte-char literals
//! (including `'\''` and multi-byte chars), and the char-literal versus
//! lifetime ambiguity (`'a'` vs `<'a>`).

/// One comment, with its original text (markers included).
#[derive(Debug, Clone)]
pub struct Comment {
    /// Byte offset of the comment's first byte.
    pub offset: usize,
    /// 1-based line of the comment's first byte.
    pub line: usize,
    /// 1-based line of the comment's last byte (differs for block
    /// comments spanning lines).
    pub end_line: usize,
    /// True when only whitespace precedes the comment on its line.
    pub own_line: bool,
    /// Raw text including the `//` / `/* */` markers.
    pub text: String,
}

/// One string literal (plain, byte, raw, or raw byte).
#[derive(Debug, Clone)]
pub struct StrLit {
    /// Byte offset of the literal's first byte (prefix included).
    pub offset: usize,
    /// 1-based line of the opening quote.
    pub line: usize,
    /// The bytes between the quotes, exactly as written (escapes are
    /// *not* processed — good enough for magic-literal equality, which
    /// never needs escapes).
    pub content: String,
}

/// The lexed view of one source file.
#[derive(Debug)]
pub struct Lexed {
    /// Same byte length and newline positions as the input; comment
    /// text and literal contents are spaces.
    pub masked: String,
    pub comments: Vec<Comment>,
    pub strings: Vec<StrLit>,
    /// Byte offset of the start of each line (line N is
    /// `line_starts[N-1]`).
    pub line_starts: Vec<usize>,
}

impl Lexed {
    /// 1-based line number of a byte offset.
    pub fn line_of(&self, offset: usize) -> usize {
        match self.line_starts.binary_search(&offset) {
            Ok(i) => i + 1,
            Err(i) => i,
        }
    }

    /// The masked text of 1-based line `line` (without the newline).
    pub fn masked_line(&self, line: usize) -> &str {
        let start = self.line_starts[line - 1];
        let end = self
            .line_starts
            .get(line)
            .map(|e| e - 1)
            .unwrap_or(self.masked.len());
        &self.masked[start..end]
    }
}

pub fn is_ident_char(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

fn utf8_len(lead: u8) -> usize {
    match lead {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

/// Lexes `src`, producing the masked text and the comment/literal lists.
pub fn lex(src: &str) -> Lexed {
    let b = src.as_bytes();
    let mut masked = b.to_vec();
    let mut comments = Vec::new();
    let mut strings = Vec::new();
    let mut line_starts = vec![0usize];
    for (i, &c) in b.iter().enumerate() {
        if c == b'\n' {
            line_starts.push(i + 1);
        }
    }
    let line_of = |offset: usize| match line_starts.binary_search(&offset) {
        Ok(i) => i + 1,
        Err(i) => i,
    };
    // Blank `range` in the mask, preserving newlines.
    let mask = |masked: &mut Vec<u8>, range: std::ops::Range<usize>| {
        for m in &mut masked[range] {
            if *m != b'\n' {
                *m = b' ';
            }
        }
    };
    let own_line = |start: usize| {
        let ls = line_starts[line_of(start) - 1];
        b[ls..start].iter().all(|c| c.is_ascii_whitespace())
    };
    // Scans a quoted string starting at the opening quote; returns the
    // index one past the closing quote.
    let scan_quoted = |b: &[u8], open: usize| -> usize {
        let mut i = open + 1;
        while i < b.len() {
            match b[i] {
                b'\\' => i += 2,
                b'"' => return i + 1,
                _ => i += 1,
            }
        }
        i
    };
    // Scans a raw string whose `r` was consumed; `i` is at the first
    // `#` or the opening quote. Returns `Some(end)` one past the final
    // `#` (or quote), or `None` when this is a raw identifier.
    let scan_raw = |b: &[u8], mut i: usize| -> Option<(usize, usize)> {
        let mut hashes = 0;
        while b.get(i) == Some(&b'#') {
            hashes += 1;
            i += 1;
        }
        if b.get(i) != Some(&b'"') {
            return None; // raw identifier like r#fn
        }
        let content_start = i + 1;
        i += 1;
        while i < b.len() {
            if b[i] == b'"'
                && b[i + 1..]
                    .iter()
                    .take(hashes)
                    .filter(|&&c| c == b'#')
                    .count()
                    == hashes
            {
                return Some((content_start, i));
            }
            i += 1;
        }
        Some((content_start, i))
    };

    let mut i = 0;
    while i < b.len() {
        let c = b[i];
        match c {
            b'/' if b.get(i + 1) == Some(&b'/') => {
                let start = i;
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                comments.push(Comment {
                    offset: start,
                    line: line_of(start),
                    end_line: line_of(i.saturating_sub(1).max(start)),
                    own_line: own_line(start),
                    text: src[start..i].to_string(),
                });
                mask(&mut masked, start..i);
            }
            b'/' if b.get(i + 1) == Some(&b'*') => {
                let start = i;
                let mut depth = 1usize;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                comments.push(Comment {
                    offset: start,
                    line: line_of(start),
                    end_line: line_of(i.saturating_sub(1).max(start)),
                    own_line: own_line(start),
                    text: src[start..i].to_string(),
                });
                mask(&mut masked, start..i);
            }
            b'"' => {
                let end = scan_quoted(b, i);
                strings.push(StrLit {
                    offset: i,
                    line: line_of(i),
                    content: src[i + 1..end.saturating_sub(1).max(i + 1)].to_string(),
                });
                mask(&mut masked, i + 1..end.saturating_sub(1).max(i + 1));
                i = end;
            }
            b'\'' => {
                // Char literal or lifetime/label.
                let j = i + 1;
                if j >= b.len() {
                    i += 1;
                } else if b[j] == b'\\' {
                    // Escaped char literal: scan to the closing quote.
                    let mut k = j;
                    while k < b.len() {
                        match b[k] {
                            b'\\' => k += 2,
                            b'\'' => break,
                            _ => k += 1,
                        }
                    }
                    let end = (k + 1).min(b.len());
                    mask(&mut masked, i + 1..end.saturating_sub(1));
                    i = end;
                } else {
                    let l = utf8_len(b[j]);
                    if b[j] != b'\'' && b.get(j + l) == Some(&b'\'') {
                        // 'x' — a one-char literal.
                        mask(&mut masked, i + 1..j + l);
                        i = j + l + 1;
                    } else {
                        // A lifetime ('a) or stray quote: keep going.
                        i += 1;
                    }
                }
            }
            _ if c.is_ascii_alphabetic() || c == b'_' => {
                // Identifier — check for literal prefixes r / b / br.
                let start = i;
                while i < b.len() && is_ident_char(b[i]) {
                    i += 1;
                }
                let ident = &src[start..i];
                match (ident, b.get(i)) {
                    ("r", Some(&b'"'))
                    | ("r", Some(&b'#'))
                    | ("br", Some(&b'"'))
                    | ("br", Some(&b'#')) => {
                        if let Some((cs, ce)) = scan_raw(b, i) {
                            strings.push(StrLit {
                                offset: start,
                                line: line_of(start),
                                content: src[cs..ce].to_string(),
                            });
                            mask(&mut masked, cs..ce);
                            // Skip past the closing quote and hashes.
                            i = ce + 1 + (cs - i - 1);
                        }
                        // Raw identifier: already consumed the `r`; the
                        // `#` and name will be consumed as punctuation +
                        // identifier on the next iterations.
                    }
                    ("b", Some(&b'"')) => {
                        let end = scan_quoted(b, i);
                        strings.push(StrLit {
                            offset: start,
                            line: line_of(start),
                            content: src[i + 1..end.saturating_sub(1).max(i + 1)].to_string(),
                        });
                        mask(&mut masked, i + 1..end.saturating_sub(1).max(i + 1));
                        i = end;
                    }
                    ("b", Some(&b'\'')) => {
                        // Byte-char literal: same scan as a char literal.
                        let j = i + 1;
                        if b.get(j) == Some(&b'\\') {
                            let mut k = j;
                            while k < b.len() {
                                match b[k] {
                                    b'\\' => k += 2,
                                    b'\'' => break,
                                    _ => k += 1,
                                }
                            }
                            let end = (k + 1).min(b.len());
                            mask(&mut masked, i + 1..end.saturating_sub(1));
                            i = end;
                        } else if b.get(j).is_some() && b.get(j + 1) == Some(&b'\'') {
                            mask(&mut masked, i + 1..j + 1);
                            i = j + 2;
                        } else {
                            i += 1;
                        }
                    }
                    _ => {}
                }
            }
            _ => i += 1,
        }
    }

    Lexed {
        masked: String::from_utf8(masked).expect("masking only replaces ASCII bytes"),
        comments,
        strings,
        line_starts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_comments_are_masked() {
        let l = lex("let x = 1; // unwrap() here is just prose\nlet y = 2;");
        assert!(!l.masked.contains("unwrap"));
        assert!(l.masked.contains("let y = 2;"));
        assert_eq!(l.comments.len(), 1);
        assert!(!l.comments[0].own_line);
        assert_eq!(l.comments[0].line, 1);
    }

    #[test]
    fn nested_block_comments_are_masked() {
        let l = lex("a /* outer /* inner unwrap() */ still comment */ b");
        assert!(!l.masked.contains("unwrap"));
        assert!(!l.masked.contains("still"));
        assert!(l.masked.starts_with('a'));
        assert!(l.masked.ends_with('b'));
        assert_eq!(l.comments.len(), 1);
    }

    #[test]
    fn multiline_block_comment_tracks_end_line() {
        let l = lex("/* one\ntwo\nthree */ x");
        assert_eq!(l.comments[0].line, 1);
        assert_eq!(l.comments[0].end_line, 3);
        assert_eq!(l.line_of(l.masked.find('x').unwrap()), 3);
    }

    #[test]
    fn strings_are_masked_but_quotes_survive() {
        let src = r#"let m = "magic FPPVIDX1 inside"; call();"#;
        let l = lex(src);
        assert!(!l.masked.contains("FPPVIDX1"));
        assert_eq!(l.masked.len(), src.len());
        assert_eq!(l.masked.matches('"').count(), 2);
        assert!(l.masked.contains("call();"));
        assert_eq!(l.strings.len(), 1);
        assert_eq!(l.strings[0].content, "magic FPPVIDX1 inside");
    }

    #[test]
    fn string_escapes_do_not_end_the_literal() {
        let l = lex(r#"x = "a\"b // not a comment"; y"#);
        assert!(!l.masked.contains("not a comment"));
        assert!(l.masked.contains("; y"));
    }

    #[test]
    fn byte_strings_are_literals() {
        let l = lex(r#"const M: &[u8; 8] = b"FPPVWAL1";"#);
        assert!(!l.masked.contains("FPPVWAL1"));
        assert_eq!(l.strings[0].content, "FPPVWAL1");
    }

    #[test]
    fn raw_strings_with_hashes() {
        let l = lex(r###"let s = r#"quote " and // slashes"#; done()"###);
        assert!(!l.masked.contains("slashes"));
        assert!(l.masked.contains("done()"));
        assert_eq!(l.strings[0].content, r#"quote " and // slashes"#);
    }

    #[test]
    fn raw_byte_strings() {
        let l = lex(r###"let s = br#"bytes"#; after()"###);
        assert!(!l.masked.contains("bytes"));
        assert!(l.masked.contains("after()"));
    }

    #[test]
    fn raw_identifiers_are_not_strings() {
        let l = lex("fn r#match(x: u32) {}");
        assert!(l.strings.is_empty());
        assert!(l.masked.contains("r#match"));
    }

    #[test]
    fn char_literal_with_quote_inside() {
        let l = lex(r"let q = '\''; let s = '\\'; next()");
        assert!(l.masked.contains("next()"));
        // Neither escaped char swallowed the rest of the line.
        assert_eq!(l.line_of(l.masked.find("next").unwrap()), 1);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let l = lex("fn f<'a>(x: &'a [u8]) -> &'a str { \"s\" }");
        // The string literal at the end is still found (the lifetimes
        // didn't start a bogus char literal that swallowed it).
        assert_eq!(l.strings.len(), 1);
        assert!(l.masked.contains("&'a [u8]"));
    }

    #[test]
    fn unicode_char_literal() {
        let l = lex("let c = 'é'; let d = '\\u{1F600}'; tail()");
        assert!(l.masked.contains("tail()"));
    }

    #[test]
    fn own_line_detection() {
        let l = lex("    // SAFETY: fine\nunsafe {}");
        assert!(l.comments[0].own_line);
        let l = lex("let x = 1; // trailing\n");
        assert!(!l.comments[0].own_line);
    }
}
