//! The rule engine: walks the workspace sources, runs the enabled rule
//! families over each lexed file, and applies inline allow directives.
//!
//! ## Rules
//!
//! | id              | family      | checks |
//! |-----------------|-------------|--------|
//! | `panic-freedom` | panic       | no `unwrap`/`expect`/panicking macro/indexing in fail-closed code |
//! | `unsafe-audit`  | unsafe      | every `unsafe` is preceded by `// SAFETY:` |
//! | `const-registry`| consts      | magics/versions/op tags defined only in the registry |
//! | `doc-drift`     | consts      | README format tables match the registry values |
//! | `lock-across-io`| concurrency | no lock guard held across I/O / `send` / `publish` |
//! | `time-in-wire`  | concurrency | no `Instant`/`SystemTime` in wire structs or codecs |
//! | `bad-allow`     | (meta)      | malformed or reasonless allow directive |
//! | `unused-allow`  | (meta)      | allow directive that suppressed nothing |
//!
//! ## Allow directives
//!
//! `// fppv-lint: allow(<rule>) -- <reason>` — the reason is mandatory.
//! On its own line the directive covers the next code line; trailing a
//! code line it covers that line. A directive with no reason or that
//! suppresses nothing is itself a diagnostic, so the allowlist can only
//! shrink honestly.

use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

use crate::config::{Config, Render, Scope};
use crate::lexer::{self, is_ident_char, Lexed};
use crate::scan::{self, in_regions};

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    PanicFreedom,
    UnsafeAudit,
    ConstRegistry,
    DocDrift,
    LockAcrossIo,
    TimeInWire,
    BadAllow,
    UnusedAllow,
}

impl Rule {
    pub fn id(self) -> &'static str {
        match self {
            Rule::PanicFreedom => "panic-freedom",
            Rule::UnsafeAudit => "unsafe-audit",
            Rule::ConstRegistry => "const-registry",
            Rule::DocDrift => "doc-drift",
            Rule::LockAcrossIo => "lock-across-io",
            Rule::TimeInWire => "time-in-wire",
            Rule::BadAllow => "bad-allow",
            Rule::UnusedAllow => "unused-allow",
        }
    }

    fn from_id(id: &str) -> Option<Rule> {
        [
            Rule::PanicFreedom,
            Rule::UnsafeAudit,
            Rule::ConstRegistry,
            Rule::DocDrift,
            Rule::LockAcrossIo,
            Rule::TimeInWire,
        ]
        .into_iter()
        .find(|r| r.id() == id)
    }

    fn family(self) -> Option<Family> {
        match self {
            Rule::PanicFreedom => Some(Family::Panic),
            Rule::UnsafeAudit => Some(Family::Unsafe),
            Rule::ConstRegistry | Rule::DocDrift => Some(Family::Consts),
            Rule::LockAcrossIo | Rule::TimeInWire => Some(Family::Concurrency),
            Rule::BadAllow | Rule::UnusedAllow => None,
        }
    }
}

/// A rule family, the unit of enabling (tests run one family at a time
/// against fixture trees; `check` runs all of them).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Family {
    Panic,
    Unsafe,
    Consts,
    Concurrency,
}

pub const ALL_FAMILIES: [Family; 4] = [
    Family::Panic,
    Family::Unsafe,
    Family::Consts,
    Family::Concurrency,
];

#[derive(Debug)]
pub struct Diagnostic {
    /// Path relative to the config root, with forward slashes.
    pub path: String,
    pub line: usize,
    pub rule: Rule,
    pub msg: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path,
            self.line,
            self.rule.id(),
            self.msg
        )
    }
}

/// Every `.rs` file under `crates/*/src` and the umbrella `src/`,
/// sorted for deterministic output.
pub fn source_files(root: &Path) -> Vec<PathBuf> {
    fn walk(dir: &Path, out: &mut Vec<PathBuf>) {
        let Ok(entries) = fs::read_dir(dir) else {
            return;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.is_dir() {
                walk(&path, out);
            } else if path.extension().is_some_and(|e| e == "rs") {
                out.push(path);
            }
        }
    }
    let mut out = Vec::new();
    if let Ok(entries) = fs::read_dir(root.join("crates")) {
        for entry in entries.flatten() {
            walk(&entry.path().join("src"), &mut out);
        }
    }
    walk(&root.join("src"), &mut out);
    out.sort();
    out
}

fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Runs the enabled families over the tree; returns sorted diagnostics
/// (empty = clean).
pub fn run_check(cfg: &Config, families: &[Family]) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let registry = if families.contains(&Family::Consts) {
        match load_registry(cfg) {
            Ok(r) => Some(r),
            Err(msg) => {
                diags.push(Diagnostic {
                    path: cfg.registry_path.clone(),
                    line: 1,
                    rule: Rule::ConstRegistry,
                    msg,
                });
                None
            }
        }
    } else {
        None
    };
    for path in source_files(&cfg.root) {
        check_file(cfg, families, &path, registry.as_ref(), &mut diags);
    }
    if let Some(reg) = &registry {
        doc_drift(cfg, reg, &mut diags);
    }
    diags.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    diags
}

// ---------------------------------------------------------------------------
// Allow directives

struct Directive {
    line: usize,
    covered_line: usize,
    rules: Vec<String>,
    used: bool,
}

/// Parses `fppv-lint:` directives out of the file's comments; malformed
/// ones go straight to `diags` as `bad-allow`.
fn parse_directives(lexed: &Lexed, rel: &str, diags: &mut Vec<Diagnostic>) -> Vec<Directive> {
    let mut out = Vec::new();
    let n_lines = lexed.line_starts.len();
    for c in &lexed.comments {
        let Some(at) = c.text.find("fppv-lint:") else {
            continue;
        };
        let bad = |msg: &str, diags: &mut Vec<Diagnostic>| {
            diags.push(Diagnostic {
                path: rel.to_string(),
                line: c.line,
                rule: Rule::BadAllow,
                msg: msg.to_string(),
            });
        };
        let rest = c.text[at + "fppv-lint:".len()..].trim_start();
        let Some(args) = rest.strip_prefix("allow(").and_then(|r| r.split_once(')')) else {
            bad(
                "malformed directive; expected `fppv-lint: allow(<rule>) -- <reason>`",
                diags,
            );
            continue;
        };
        let (ids, tail) = args;
        let rules: Vec<String> = ids
            .split(',')
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
            .collect();
        if rules.is_empty() {
            bad("allow() names no rule", diags);
            continue;
        }
        let mut known = true;
        for id in &rules {
            if Rule::from_id(id).is_none() {
                bad(&format!("allow() names unknown rule `{id}`"), diags);
                known = false;
            }
        }
        if !known {
            continue;
        }
        let reason = tail
            .trim_start()
            .strip_prefix("--")
            .map(|r| r.trim_matches(|ch: char| ch.is_whitespace() || ch == '*' || ch == '/'))
            .unwrap_or("");
        if reason.is_empty() {
            bad(
                "allow() without a reason; append ` -- <why this is sound>`",
                diags,
            );
        }
        // An own-line directive covers the next code line (skipping
        // blank and comment-only lines); a trailing one covers its own.
        let covered_line = if c.own_line {
            let mut l = c.end_line + 1;
            while l <= n_lines && lexed.masked_line(l).trim().is_empty() {
                l += 1;
            }
            l
        } else {
            c.line
        };
        out.push(Directive {
            line: c.line,
            covered_line,
            rules,
            used: false,
        });
    }
    out
}

// ---------------------------------------------------------------------------
// Per-file driver

struct FileCtx<'a> {
    lexed: &'a Lexed,
    masked: &'a str,
    test_regions: Vec<(usize, usize)>,
    fn_spans: Vec<scan::FnSpan>,
}

fn check_file(
    cfg: &Config,
    families: &[Family],
    path: &Path,
    registry: Option<&Registry>,
    diags: &mut Vec<Diagnostic>,
) {
    let rel = rel_path(&cfg.root, path);
    let Ok(src) = fs::read_to_string(path) else {
        return;
    };
    let lexed = lexer::lex(&src);
    let ctx = FileCtx {
        masked: &lexed.masked,
        test_regions: scan::test_regions(&lexed.masked),
        fn_spans: scan::fn_spans(&lexed.masked),
        lexed: &lexed,
    };

    // (rule, byte offset, message)
    let mut raw: Vec<(Rule, usize, String)> = Vec::new();

    if families.contains(&Family::Panic) {
        if let Some(fc) = cfg
            .fail_closed
            .iter()
            .find(|fc| rel.ends_with(&fc.path_suffix))
        {
            panic_rule(&ctx, &fc.scope, &mut raw);
        }
    }
    if families.contains(&Family::Unsafe) {
        unsafe_rule(&ctx, &mut raw);
    }
    if let Some(reg) = registry {
        if rel != cfg.registry_path {
            consts_rule(&ctx, reg, &mut raw);
        }
    }
    if families.contains(&Family::Concurrency) {
        if cfg.lock_dirs.iter().any(|d| rel.starts_with(d.as_str())) {
            lock_rule(&ctx, &mut raw);
        }
        if cfg.wire_files.iter().any(|w| rel.ends_with(w.as_str())) {
            time_rule(&ctx, &mut raw);
        }
    }

    // Apply directives: suppress covered diagnostics, then report the
    // directives that suppressed nothing.
    let mut directives = parse_directives(&lexed, &rel, diags);
    for (rule, offset, msg) in raw {
        let line = lexed.line_of(offset);
        let covering = directives
            .iter_mut()
            .find(|d| d.covered_line == line && d.rules.iter().any(|r| r == rule.id()));
        match covering {
            Some(d) => d.used = true,
            None => diags.push(Diagnostic {
                path: rel.clone(),
                line,
                rule,
                msg,
            }),
        }
    }
    let enabled = |id: &str| {
        Rule::from_id(id)
            .and_then(Rule::family)
            .is_some_and(|f| families.contains(&f))
    };
    for d in &directives {
        if !d.used && d.rules.iter().all(|r| enabled(r)) {
            diags.push(Diagnostic {
                path: rel.clone(),
                line: d.line,
                rule: Rule::UnusedAllow,
                msg: format!(
                    "allow({}) suppresses nothing; remove it",
                    d.rules.join(", ")
                ),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// Rule 1: panic-freedom

const PANIC_MACROS: [&str; 7] = [
    "panic",
    "unreachable",
    "todo",
    "unimplemented",
    "assert",
    "assert_eq",
    "assert_ne",
];

/// Keywords that can directly precede `[` without it being an index
/// expression (`&mut [0u8; 4]`, `let [a, b] = ..`, `match [a, b]`, ...).
const NONINDEX_KEYWORDS: [&str; 15] = [
    "mut", "ref", "dyn", "as", "in", "let", "return", "break", "else", "match", "move", "static",
    "const", "impl", "where",
];

fn panic_rule(ctx: &FileCtx<'_>, scope: &Scope, raw: &mut Vec<(Rule, usize, String)>) {
    let masked = ctx.masked;
    let b = masked.as_bytes();
    let regions: Vec<(usize, usize)> = match scope {
        Scope::WholeFile => vec![(0, masked.len())],
        Scope::Functions(_) => ctx
            .fn_spans
            .iter()
            .filter(|f| scope.matches_fn(&f.name))
            .map(|f| f.body)
            .collect(),
    };
    let in_scope = |off: usize| in_regions(&regions, off) && !in_regions(&ctx.test_regions, off);
    let next_nonws = |mut i: usize| {
        while i < b.len() && b[i].is_ascii_whitespace() {
            i += 1;
        }
        i
    };

    for (method, note) in [
        ("unwrap", "return a typed error instead"),
        ("expect", "return a typed error instead"),
    ] {
        for at in scan::find_word(masked, method) {
            let preceded = at > 0 && b[at - 1] == b'.';
            let called = b.get(next_nonws(at + method.len())) == Some(&b'(');
            if preceded && called && in_scope(at) {
                raw.push((
                    Rule::PanicFreedom,
                    at,
                    format!(".{method}() in fail-closed code; {note}"),
                ));
            }
        }
    }

    for mac in PANIC_MACROS {
        for at in scan::find_word(masked, mac) {
            if b.get(at + mac.len()) == Some(&b'!') && in_scope(at) {
                raw.push((
                    Rule::PanicFreedom,
                    at,
                    format!("{mac}! in fail-closed code; fail closed with a typed error"),
                ));
            }
        }
    }

    // Indexing / slicing: `expr[...]` can panic; require `.get()` or a
    // reasoned allow. `[..]` (RangeFull) is infallible and skipped.
    for k in 0..b.len() {
        if b[k] != b'[' || !in_scope(k) {
            continue;
        }
        // Previous non-whitespace byte decides expression-vs-type
        // position: an index follows an identifier, `)` or `]`.
        let Some(p) = masked[..k].rfind(|c: char| !c.is_ascii_whitespace()) else {
            continue;
        };
        let pc = b[p];
        if !(is_ident_char(pc) || pc == b')' || pc == b']') {
            continue;
        }
        if is_ident_char(pc) {
            // Walk back over the identifier: lifetimes (`&'a [u8]`) and
            // keyword-prefixed array expressions are not indexing.
            let mut s = p;
            while s > 0 && is_ident_char(b[s - 1]) {
                s -= 1;
            }
            if s > 0 && b[s - 1] == b'\'' {
                continue;
            }
            if NONINDEX_KEYWORDS.contains(&&masked[s..p + 1]) {
                continue;
            }
        }
        // `[..]` takes the whole slice and cannot panic.
        let mut depth = 0usize;
        let mut close = k;
        for (i, &c) in b.iter().enumerate().skip(k) {
            match c {
                b'[' => depth += 1,
                b']' => {
                    depth -= 1;
                    if depth == 0 {
                        close = i;
                        break;
                    }
                }
                _ => {}
            }
        }
        if masked[k + 1..close].trim() == ".." {
            continue;
        }
        raw.push((
            Rule::PanicFreedom,
            k,
            "indexing/slicing in fail-closed code; use .get(..) and handle None".to_string(),
        ));
    }
}

// ---------------------------------------------------------------------------
// Rule 2: unsafe-audit

fn safety_comment_text(text: &str) -> bool {
    text.trim_start_matches(['/', '*', '!'])
        .trim_start()
        .starts_with("SAFETY:")
}

/// True when the `unsafe` at `offset` has a `// SAFETY:` comment
/// immediately before it: on the same line ahead of the keyword, or in
/// the contiguous run of comment/attribute-only lines directly above.
fn has_safety_comment(lexed: &Lexed, offset: usize) -> bool {
    let line = lexed.line_of(offset);
    for c in &lexed.comments {
        if c.line == line && c.offset < offset && safety_comment_text(&c.text) {
            return true;
        }
    }
    let mut l = line;
    while l > 1 {
        l -= 1;
        let run: Vec<&lexer::Comment> = lexed
            .comments
            .iter()
            .filter(|c| c.line <= l && l <= c.end_line)
            .collect();
        if !run.is_empty() {
            if run.iter().any(|c| safety_comment_text(&c.text)) {
                return true;
            }
            // Keep walking up through the comment run.
            let first = run.iter().map(|c| c.line).min().unwrap_or(l);
            l = first;
            // But stop if the line also holds code (trailing comment on
            // a code line ends the run).
            if !lexed.masked_line(l).trim().is_empty() {
                return false;
            }
            continue;
        }
        let text = lexed.masked_line(l);
        let t = text.trim();
        if t.starts_with("#[") || t.starts_with("#![") {
            continue; // attributes may sit between the comment and the item
        }
        return false;
    }
    false
}

fn unsafe_rule(ctx: &FileCtx<'_>, raw: &mut Vec<(Rule, usize, String)>) {
    for site in scan::unsafe_sites(ctx.masked) {
        if !has_safety_comment(ctx.lexed, site.offset) {
            raw.push((
                Rule::UnsafeAudit,
                site.offset,
                format!(
                    "`unsafe` {} without an immediately preceding `// SAFETY:` comment",
                    site.kind.as_str()
                ),
            ));
        }
    }
}

// ---------------------------------------------------------------------------
// Rule 3: const-registry + doc-drift

#[derive(Debug, Clone)]
pub enum ConstVal {
    Bytes(String),
    Int(u128),
    Other,
}

#[derive(Debug)]
pub struct Registry {
    pub by_name: BTreeMap<String, ConstVal>,
    /// Magic byte-string contents → constant name.
    bytes_to_name: BTreeMap<String, String>,
    /// Integer values of `*_MAGIC` constants → constant name.
    int_magics: BTreeMap<u128, String>,
}

fn parse_int(text: &str) -> Option<u128> {
    let t = text.replace('_', "");
    if let Some(hex) = t.strip_prefix("0x") {
        u128::from_str_radix(hex, 16).ok()
    } else if t == "u64::MAX" {
        Some(u64::MAX as u128)
    } else {
        t.parse().ok()
    }
}

/// Parses `pub const NAME: TY = VALUE;` items out of the canonical
/// module.
fn load_registry(cfg: &Config) -> Result<Registry, String> {
    let path = cfg.root.join(&cfg.registry_path);
    let src = fs::read_to_string(&path)
        .map_err(|e| format!("canonical constants module not readable: {e}"))?;
    let lexed = lexer::lex(&src);
    let masked = &lexed.masked;
    let b = masked.as_bytes();
    let mut by_name = BTreeMap::new();
    let mut bytes_to_name = BTreeMap::new();
    let mut int_magics = BTreeMap::new();
    for at in scan::find_word(masked, "const") {
        let mut i = at + "const".len();
        while i < b.len() && b[i].is_ascii_whitespace() {
            i += 1;
        }
        let start = i;
        while i < b.len() && is_ident_char(b[i]) {
            i += 1;
        }
        let name = &masked[start..i];
        if name.is_empty() || name == "fn" {
            continue;
        }
        let Some(eq) = masked[i..].find('=').map(|r| i + r) else {
            continue;
        };
        let Some(semi) = masked[eq..].find(';').map(|r| eq + r) else {
            continue;
        };
        // Read the value from the *raw* source: string contents are
        // blanked in the mask.
        let value = src[eq + 1..semi].trim();
        let val = if let Some(rest) = value.strip_prefix("b\"") {
            ConstVal::Bytes(rest.trim_end_matches('"').to_string())
        } else if let Some(i) = parse_int(value) {
            ConstVal::Int(i)
        } else {
            ConstVal::Other
        };
        match &val {
            ConstVal::Bytes(s) => {
                bytes_to_name.insert(s.clone(), name.to_string());
            }
            ConstVal::Int(i) if name.ends_with("_MAGIC") => {
                int_magics.insert(*i, name.to_string());
            }
            _ => {}
        }
        by_name.insert(name.to_string(), val);
    }
    if by_name.is_empty() {
        return Err("canonical constants module defines no constants".to_string());
    }
    Ok(Registry {
        by_name,
        bytes_to_name,
        int_magics,
    })
}

fn consts_rule(ctx: &FileCtx<'_>, reg: &Registry, raw: &mut Vec<(Rule, usize, String)>) {
    let masked = ctx.masked;
    let b = masked.as_bytes();

    // Duplicate magic literals (string or byte-string).
    for s in &ctx.lexed.strings {
        if let Some(name) = reg.bytes_to_name.get(&s.content) {
            raw.push((
                Rule::ConstRegistry,
                s.offset,
                format!("magic literal duplicates protocol_consts::{name}; use the constant"),
            ));
        }
    }

    // Duplicate hex literals of packed magics.
    let mut i = 0;
    while i + 1 < b.len() {
        if b[i] == b'0' && b[i + 1] == b'x' && (i == 0 || !is_ident_char(b[i - 1])) {
            let start = i;
            let mut j = i + 2;
            while j < b.len() && (b[j].is_ascii_hexdigit() || b[j] == b'_') {
                j += 1;
            }
            if let Some(v) = parse_int(&masked[start..j]) {
                if let Some(name) = reg.int_magics.get(&v) {
                    raw.push((
                        Rule::ConstRegistry,
                        start,
                        format!("magic value duplicates protocol_consts::{name}; use the constant"),
                    ));
                }
            }
            i = j;
        } else {
            i += 1;
        }
    }

    // Re-definitions of registry names, and op tags defined elsewhere.
    for at in scan::find_word(masked, "const") {
        let mut i = at + "const".len();
        while i < b.len() && b[i].is_ascii_whitespace() {
            i += 1;
        }
        let start = i;
        while i < b.len() && is_ident_char(b[i]) {
            i += 1;
        }
        let name = &masked[start..i];
        if name.is_empty() {
            continue;
        }
        if reg.by_name.contains_key(name) {
            raw.push((
                Rule::ConstRegistry,
                at,
                format!("redefines protocol_consts::{name}; `use` or re-export it instead"),
            ));
        } else if name.starts_with("OP_") {
            // `const OP_*: u8` outside the registry: a new op tag that
            // the registry (and the README) would never hear about.
            let mut j = i;
            while j < b.len() && b[j].is_ascii_whitespace() {
                j += 1;
            }
            if b.get(j) == Some(&b':') && masked[j + 1..].trim_start().starts_with("u8") {
                raw.push((
                    Rule::ConstRegistry,
                    at,
                    format!("op tag {name} defined outside protocol_consts"),
                ));
            }
        }
    }
}

fn doc_drift(cfg: &Config, reg: &Registry, diags: &mut Vec<Diagnostic>) {
    let readme = match fs::read_to_string(cfg.root.join(&cfg.readme_path)) {
        Ok(s) => s,
        Err(e) => {
            diags.push(Diagnostic {
                path: cfg.readme_path.clone(),
                line: 1,
                rule: Rule::DocDrift,
                msg: format!("README not readable: {e}"),
            });
            return;
        }
    };
    for chk in &cfg.readme_checks {
        let Some(val) = reg.by_name.get(&chk.const_name) else {
            diags.push(Diagnostic {
                path: cfg.registry_path.clone(),
                line: 1,
                rule: Rule::DocDrift,
                msg: format!(
                    "doc-drift check references missing constant {}",
                    chk.const_name
                ),
            });
            continue;
        };
        let rendered = match (chk.render, val) {
            (Render::Ascii, ConstVal::Bytes(s)) => s.clone(),
            (Render::Dec, ConstVal::Int(i)) => i.to_string(),
            (Render::Hex, ConstVal::Int(i)) => format!("{i:X}"),
            _ => {
                diags.push(Diagnostic {
                    path: cfg.registry_path.clone(),
                    line: 1,
                    rule: Rule::DocDrift,
                    msg: format!(
                        "constant {} has an unexpected shape for its doc-drift check",
                        chk.const_name
                    ),
                });
                continue;
            }
        };
        let expected = chk.template.replace("{}", &rendered);
        if !readme.contains(&expected) {
            diags.push(Diagnostic {
                path: cfg.readme_path.clone(),
                line: 1,
                rule: Rule::DocDrift,
                msg: format!(
                    "README drifted from protocol_consts::{}: expected to find `{expected}`",
                    chk.const_name
                ),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// Rule 4: concurrency hygiene

/// Calls that must not happen under a held lock guard: blocking I/O,
/// channel handoffs, and snapshot publication.
const FLAGGED_CALLS: [&str; 11] = [
    "send",
    "recv",
    "write_all",
    "flush",
    "read_exact",
    "sync_all",
    "sync_data",
    "write_frame",
    "read_frame",
    "connect",
    "publish",
];

fn flagged_call_in(masked: &str, range: (usize, usize)) -> Option<(usize, &'static str)> {
    let b = masked.as_bytes();
    let mut best: Option<(usize, &'static str)> = None;
    for name in FLAGGED_CALLS {
        for at in scan::find_word(&masked[range.0..range.1], name) {
            let abs = range.0 + at;
            let mut j = abs + name.len();
            while j < b.len() && b[j].is_ascii_whitespace() {
                j += 1;
            }
            if b.get(j) == Some(&b'(') && best.is_none_or(|(o, _)| abs < o) {
                best = Some((abs, name));
            }
        }
    }
    best
}

fn lock_rule(ctx: &FileCtx<'_>, raw: &mut Vec<(Rule, usize, String)>) {
    let masked = ctx.masked;
    let b = masked.as_bytes();
    for method in ["lock", "read", "write"] {
        for at in scan::find_word(masked, method) {
            if at == 0 || b[at - 1] != b'.' || in_regions(&ctx.test_regions, at) {
                continue;
            }
            // Guard-producing calls take no arguments: `.lock()`,
            // RwLock's `.read()` / `.write()`. `r.read(&mut buf)` is
            // I/O, not a guard.
            let mut i = at + method.len();
            if b.get(i) != Some(&b'(') {
                continue;
            }
            i += 1;
            while i < b.len() && b[i].is_ascii_whitespace() {
                i += 1;
            }
            if b.get(i) != Some(&b')') {
                continue;
            }
            let call_end = i + 1;
            let stmt_start = masked[..at]
                .rfind([';', '{', '}'])
                .map(|p| p + 1)
                .unwrap_or(0);
            let head = masked[stmt_start..at].trim_start();
            let mut k = call_end;
            while k < b.len() && b[k].is_ascii_whitespace() {
                k += 1;
            }
            if head.starts_with("let ") && b.get(k) == Some(&b';') {
                // `let guard = x.lock();` — the guard lives to the end
                // of the enclosing block (or an explicit drop).
                let name: String = {
                    let rest = head["let ".len()..].trim_start();
                    let rest = rest.strip_prefix("mut ").unwrap_or(rest).trim_start();
                    rest.bytes()
                        .take_while(|&c| is_ident_char(c))
                        .map(char::from)
                        .collect()
                };
                let scope_end = guard_scope_end(masked, k, &name);
                if let Some((off, call)) = flagged_call_in(masked, (k, scope_end)) {
                    if !in_regions(&ctx.test_regions, off) {
                        raw.push((
                            Rule::LockAcrossIo,
                            off,
                            format!(
                                "{call}() while `{name}` (a .{method}() guard) is held; \
                                 drop the guard first"
                            ),
                        ));
                    }
                }
            } else {
                // Same-statement chain: `x.lock().recv()` holds the
                // temporary guard across the call.
                let stmt_end = masked[call_end..]
                    .find([';', '{', '}'])
                    .map(|p| call_end + p)
                    .unwrap_or(masked.len());
                if let Some((off, call)) = flagged_call_in(masked, (call_end, stmt_end)) {
                    raw.push((
                        Rule::LockAcrossIo,
                        off,
                        format!(
                            "{call}() chained on a temporary .{method}() guard; \
                             the lock is held for the whole call"
                        ),
                    ));
                }
            }
        }
    }
}

/// End of the scope a `let guard = ...;` binding lives in: the close of
/// the enclosing block, or an explicit `drop(name)`.
fn guard_scope_end(masked: &str, from: usize, name: &str) -> usize {
    let b = masked.as_bytes();
    let mut depth = 0isize;
    let mut i = from;
    while i < b.len() {
        match b[i] {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth < 0 {
                    return i;
                }
            }
            b'd' if masked[i..].starts_with("drop") => {
                let j = i + 4;
                let inner = masked[j..].trim_start();
                if (i == 0 || !is_ident_char(b[i - 1]))
                    && inner.starts_with('(')
                    && inner[1..].trim_start().starts_with(name)
                {
                    return i;
                }
            }
            _ => {}
        }
        i += 1;
    }
    b.len()
}

fn time_rule(ctx: &FileCtx<'_>, raw: &mut Vec<(Rule, usize, String)>) {
    let masked = ctx.masked;
    let mut regions: Vec<(usize, usize)> = Vec::new();
    // Wire-facing struct bodies...
    for at in scan::find_word(masked, "struct") {
        let b = masked.as_bytes();
        let mut i = at + "struct".len();
        while i < b.len() && b[i].is_ascii_whitespace() {
            i += 1;
        }
        let start = i;
        while i < b.len() && is_ident_char(b[i]) {
            i += 1;
        }
        if masked[start..i].starts_with("Wire") {
            regions.push((at, scan::item_end(masked, i)));
        }
    }
    // ...and codec function bodies.
    for f in &ctx.fn_spans {
        let codec = ["encode_", "decode_", "put_", "take_"]
            .iter()
            .any(|p| f.name.starts_with(p))
            || f.name == "write_frame"
            || f.name.starts_with("read_frame");
        if codec {
            regions.push(f.body);
        }
    }
    for word in ["Instant", "SystemTime"] {
        for at in scan::find_word(masked, word) {
            if in_regions(&regions, at) {
                raw.push((
                    Rule::TimeInWire,
                    at,
                    format!(
                        "{word} in a wire struct/codec; wall-clock types do not serialize \
                         (carry ms offsets or epochs instead)"
                    ),
                ));
            }
        }
    }
}
