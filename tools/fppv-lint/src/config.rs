//! What the rules check and where — the declared fail-closed surface,
//! the canonical constants module, the README drift table, and the
//! crates subject to the concurrency heuristics.
//!
//! [`Config::default_for`] encodes the real workspace's policy; tests
//! build custom configs to point the same rule code at fixture trees.

use std::path::PathBuf;

/// Which part of a fail-closed file the panic-freedom rule covers.
#[derive(Debug, Clone)]
pub enum Scope {
    WholeFile,
    /// Only the bodies of the named functions. A trailing `*` matches
    /// by prefix (`decode_*`).
    Functions(Vec<String>),
}

impl Scope {
    pub fn matches_fn(&self, name: &str) -> bool {
        match self {
            Scope::WholeFile => true,
            Scope::Functions(pats) => pats.iter().any(|p| match p.strip_suffix('*') {
                Some(prefix) => name.starts_with(prefix),
                None => name == p,
            }),
        }
    }
}

/// One fail-closed module: a path suffix plus the scope within it.
#[derive(Debug, Clone)]
pub struct FailClosed {
    pub path_suffix: String,
    pub scope: Scope,
}

/// How a registry constant's value is rendered into its README pattern.
#[derive(Debug, Clone, Copy)]
pub enum Render {
    /// Byte-string magics as ASCII (`FPPVWAL1`).
    Ascii,
    /// Integers in decimal.
    Dec,
    /// Integers as uppercase hex without underscores (`46505056`).
    Hex,
}

/// One doc-drift check: the README must contain `template` with `{}`
/// replaced by the registry constant's rendered value.
#[derive(Debug, Clone)]
pub struct ReadmeCheck {
    pub const_name: String,
    pub template: String,
    pub render: Render,
}

#[derive(Debug, Clone)]
pub struct Config {
    /// Workspace root; all paths below are relative to it.
    pub root: PathBuf,
    /// The canonical constants module (rule `const-registry`).
    pub registry_path: String,
    pub readme_path: String,
    pub readme_checks: Vec<ReadmeCheck>,
    pub fail_closed: Vec<FailClosed>,
    /// Directory prefixes whose files get the lock-across-I/O check.
    pub lock_dirs: Vec<String>,
    /// Path suffixes of files holding wire/file-format codecs (rule
    /// `time-in-wire`).
    pub wire_files: Vec<String>,
}

fn check(name: &str, template: &str, render: Render) -> ReadmeCheck {
    ReadmeCheck {
        const_name: name.to_string(),
        template: template.to_string(),
        render,
    }
}

impl Config {
    /// The real workspace policy, rooted at `root`.
    pub fn default_for(root: impl Into<PathBuf>) -> Self {
        let fns = |names: &[&str]| Scope::Functions(names.iter().map(|s| s.to_string()).collect());
        Config {
            root: root.into(),
            registry_path: "crates/core/src/protocol_consts.rs".into(),
            readme_path: "README.md".into(),
            readme_checks: vec![
                check("NET_MAGIC", "0x{}", Render::Hex),
                check("PROTOCOL_VERSION", "version-{} frames", Render::Dec),
                check("IDX1_MAGIC", "{}", Render::Ascii),
                check("IDX2_MAGIC", "{}", Render::Ascii),
                check("IDX3_MAGIC", "{}", Render::Ascii),
                check("IDX3_VERSION", "u32 version={}", Render::Dec),
                check("WAL_MAGIC", "{}", Render::Ascii),
                check("WAL_VERSION", "version u32 (={})", Render::Dec),
                check("MANIFEST_MAGIC", "{}", Render::Ascii),
                check("OP_QUERY", "`OP_QUERY`={}", Render::Dec),
                check("OP_STATS", "`OP_STATS`={}", Render::Dec),
                check("OP_PRIME0", "`OP_PRIME0`={}", Render::Dec),
                check("OP_EXPAND", "`OP_EXPAND`={}", Render::Dec),
                check("OP_UPDATE", "`OP_UPDATE`={}", Render::Dec),
            ],
            fail_closed: vec![
                FailClosed {
                    path_suffix: "crates/core/src/mapfile.rs".into(),
                    scope: Scope::WholeFile,
                },
                FailClosed {
                    path_suffix: "crates/core/src/wal.rs".into(),
                    scope: Scope::WholeFile,
                },
                FailClosed {
                    path_suffix: "crates/core/src/atomic_io.rs".into(),
                    scope: Scope::WholeFile,
                },
                // The codec's *open* path must reject corrupt input with
                // a typed error; `get()`'s materialize-on-miss contract
                // is separate and out of scope.
                FailClosed {
                    path_suffix: "crates/core/src/codec.rs".into(),
                    scope: fns(&["open", "decode_blob", "read_varint", "from_tag"]),
                },
                // Frame decode: a malformed frame must produce a protocol
                // error on that connection, never a server panic.
                FailClosed {
                    path_suffix: "crates/server/src/net.rs".into(),
                    scope: fns(&[
                        "decode_*",
                        "read_frame",
                        "read_frame_stalling",
                        "take_entry_list",
                        "take",
                        "finish",
                        "u8",
                        "u16",
                        "u32",
                        "u64",
                        "f64",
                    ]),
                },
                // Router read paths: a bad shard id or a dead backend is
                // a routing error, never a router panic.
                FailClosed {
                    path_suffix: "crates/router/src/backend.rs".into(),
                    scope: fns(&[
                        "prime0",
                        "expand",
                        "probe",
                        "discover_hello",
                        "single_attempt",
                        "hedged",
                        "take_pooled",
                        "return_client",
                        "spawn_attempt",
                        "check_alive",
                    ]),
                },
            ],
            lock_dirs: vec!["crates/server/src".into(), "crates/router/src".into()],
            wire_files: vec![
                "crates/server/src/net.rs".into(),
                "crates/core/src/wal.rs".into(),
                "crates/core/src/codec.rs".into(),
                "crates/cluster/src/store.rs".into(),
                "crates/cluster/src/shard.rs".into(),
            ],
        }
    }
}
