//! Known-good fixture: guards dropped before I/O, wire types carrying
//! plain integers, wall clocks only outside codec/wire contexts.

use std::sync::{mpsc, Mutex};
use std::time::Instant;

pub struct WireHello {
    pub stamp_ms: u64,
}

pub fn serve(m: &Mutex<Vec<u8>>, tx: &mpsc::Sender<u8>) {
    let guard = m.lock();
    let len = 1u8;
    drop(guard);
    tx.send(len).ok();
}

pub fn dequeue(m: &Mutex<mpsc::Receiver<u8>>) -> Option<u8> {
    let rx = m.lock();
    None.or(Some(0)).map(|_| 0)
}

pub fn stats_probe() -> u64 {
    // A wall clock outside wire structs and codec functions is fine.
    Instant::now().elapsed().as_millis() as u64
}
