//! Known-bad fixture: a lock held across a channel send, a chained
//! guard, and wall-clock types in wire-facing code.

use std::sync::{mpsc, Mutex};
use std::time::Instant;

pub struct WireHello {
    pub stamp: Instant,
}

pub fn serve(m: &Mutex<Vec<u8>>, tx: &mpsc::Sender<u8>) {
    let guard = m.lock();
    tx.send(1).ok();
    drop(guard);
}

pub fn chained(m: &Mutex<mpsc::Receiver<u8>>) {
    let _ = m.lock().recv();
}

pub fn decode_hello(_buf: &[u8]) -> u64 {
    let t = Instant::now();
    t.elapsed().as_millis() as u64
}
