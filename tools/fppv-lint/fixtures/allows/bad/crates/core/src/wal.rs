//! Known-bad fixture for the allow machinery itself: a reasonless
//! directive and one that suppresses nothing.

pub fn first(v: &[u8]) -> u8 {
    // fppv-lint: allow(panic-freedom)
    v[0]
}

pub fn harmless() -> u8 {
    // fppv-lint: allow(panic-freedom) -- nothing on the next line panics
    0
}
