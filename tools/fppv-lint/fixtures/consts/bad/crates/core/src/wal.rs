//! Known-bad fixture: every way a protocol constant can leak out of the
//! registry.

// Redefinition of a registry name.
const WAL_VERSION: u32 = 1;

// A new op tag minted outside the registry.
const OP_PING: u8 = 9;

pub fn header() -> Vec<u8> {
    let mut v = Vec::new();
    // Byte-string literal duplicating a registry magic.
    v.extend_from_slice(b"FPPVWAL1");
    v
}

pub fn packed() -> u32 {
    // Hex literal duplicating a packed magic value.
    0x4650_5056
}
