//! Fixture registry, identical to the bad tree's.

pub const WAL_MAGIC: &[u8; 8] = b"FPPVWAL1";
pub const WAL_VERSION: u32 = 1;
pub const NET_MAGIC: u32 = 0x4650_5056;
pub const OP_QUERY: u8 = 0;
