//! Known-good fixture: consumes the registry instead of duplicating it.

use crate::protocol_consts::{WAL_MAGIC, WAL_VERSION};

pub fn header() -> Vec<u8> {
    let mut v = Vec::new();
    v.extend_from_slice(WAL_MAGIC);
    v.extend_from_slice(&WAL_VERSION.to_le_bytes());
    v
}
