//! Known-good fixture: every `unsafe` site carries a `// SAFETY:`
//! comment, in each accepted position.

pub struct Wrapper(pub *const u8);

// SAFETY: the pointer is never dereferenced by this fixture.
unsafe impl Send for Wrapper {}

pub fn first_word(v: &[u64]) -> u8 {
    // SAFETY: a `&[u64]` is non-dangling and u8 has no alignment
    // requirement, so reading one byte through the cast pointer is sound
    // whenever the slice is non-empty — which the caller guarantees.
    unsafe { *v.as_ptr().cast::<u8>() }
}

pub fn same_line(v: &[u64]) -> u8 {
    /* SAFETY: as above. */ unsafe { *v.as_ptr().cast::<u8>() }
}

#[allow(dead_code)]
// SAFETY: comments may sit above attributes too.
pub unsafe fn trusted(v: *const u8) -> u8 {
    // SAFETY: the caller promises `v` is valid for reads.
    unsafe { *v }
}
