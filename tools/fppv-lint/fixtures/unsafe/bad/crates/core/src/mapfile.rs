//! Known-bad fixture: `unsafe` without `// SAFETY:` comments.

pub struct Wrapper(pub *const u8);

unsafe impl Send for Wrapper {}

pub fn first_word(v: &[u64]) -> u8 {
    unsafe { *v.as_ptr().cast::<u8>() }
}
