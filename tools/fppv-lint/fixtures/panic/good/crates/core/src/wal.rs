//! Known-good fixture: checked reads, a reasoned allow, and test-only
//! panics — none of which the rule may flag.

pub fn parse(bytes: &[u8]) -> Option<u32> {
    let arr: [u8; 4] = bytes.get(..4)?.try_into().ok()?;
    Some(u32::from_le_bytes(arr))
}

const TABLE: [u32; 4] = [0, 1, 2, 3];

pub fn masked_lookup(i: u32) -> u32 {
    // fppv-lint: allow(panic-freedom) -- index masked to 0..=3 and the table has 4 entries
    TABLE[(i & 3) as usize]
}

pub fn whole(bytes: &[u8]) -> &[u8] {
    // RangeFull cannot panic; no allow needed.
    &bytes[..]
}

#[cfg(test)]
mod tests {
    #[test]
    fn parses() {
        assert_eq!(super::parse(&[1, 0, 0, 0]), Some(1));
        assert_eq!(super::masked_lookup(7), 3);
    }
}
