//! Known-bad fixture: every panic-freedom construct the rule must catch.

pub fn parse(bytes: &[u8]) -> u32 {
    let len = u32::from_le_bytes(bytes[..4].try_into().unwrap());
    assert!(len > 0, "empty record");
    if len > 10 {
        panic!("record too large");
    }
    len
}

#[cfg(test)]
mod tests {
    // Panicking constructs are fine inside test code: the rule must not
    // fire on any of these.
    #[test]
    fn parses() {
        assert_eq!(super::parse(&[1, 0, 0, 0]), 1);
        let v = vec![1u8];
        let _ = v[0];
        let _ = Some(3).unwrap();
    }
}
