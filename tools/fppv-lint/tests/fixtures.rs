//! Per-rule fixture tests: each rule family must fail its known-bad
//! tree with the expected diagnostics and pass its known-good tree
//! cleanly. The fixtures live under `fixtures/<family>/{bad,good}/` and
//! mimic real crate paths so the path-scoped configs engage.

use std::path::PathBuf;

use fppv_lint::config::{Config, FailClosed, ReadmeCheck, Render, Scope};
use fppv_lint::rules::{run_check, Rule};
use fppv_lint::Family;

fn fixture_root(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name)
}

fn base_config(root: PathBuf) -> Config {
    Config {
        root,
        registry_path: "crates/core/src/protocol_consts.rs".into(),
        readme_path: "README.md".into(),
        readme_checks: Vec::new(),
        fail_closed: Vec::new(),
        lock_dirs: Vec::new(),
        wire_files: Vec::new(),
    }
}

fn panic_config(tree: &str) -> Config {
    let mut cfg = base_config(fixture_root(tree));
    cfg.fail_closed.push(FailClosed {
        path_suffix: "crates/core/src/wal.rs".into(),
        scope: Scope::WholeFile,
    });
    cfg
}

#[test]
fn panic_bad_flags_each_construct() {
    let diags = run_check(&panic_config("panic/bad"), &[Family::Panic]);
    let msgs: Vec<&str> = diags.iter().map(|d| d.msg.as_str()).collect();
    assert!(
        diags.iter().all(|d| d.rule == Rule::PanicFreedom),
        "unexpected rules: {diags:?}"
    );
    assert!(msgs.iter().any(|m| m.contains(".unwrap()")), "{msgs:?}");
    assert!(msgs.iter().any(|m| m.contains("assert!")), "{msgs:?}");
    assert!(msgs.iter().any(|m| m.contains("panic!")), "{msgs:?}");
    assert!(
        msgs.iter().any(|m| m.contains("indexing/slicing")),
        "{msgs:?}"
    );
    // The `#[cfg(test)]` module uses all the same constructs and must
    // contribute nothing: exactly one diagnostic per non-test construct.
    assert_eq!(diags.len(), 4, "{diags:?}");
}

#[test]
fn panic_good_is_clean() {
    let diags = run_check(&panic_config("panic/good"), &[Family::Panic]);
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn unsafe_bad_flags_undocumented_sites() {
    let cfg = base_config(fixture_root("unsafe/bad"));
    let diags = run_check(&cfg, &[Family::Unsafe]);
    assert_eq!(diags.len(), 2, "{diags:?}");
    assert!(diags.iter().all(|d| d.rule == Rule::UnsafeAudit));
    assert!(diags.iter().any(|d| d.msg.contains("`unsafe` impl")));
    assert!(diags.iter().any(|d| d.msg.contains("`unsafe` block")));
}

#[test]
fn unsafe_good_is_clean() {
    let cfg = base_config(fixture_root("unsafe/good"));
    let diags = run_check(&cfg, &[Family::Unsafe]);
    assert!(diags.is_empty(), "{diags:?}");
}

fn consts_config(tree: &str) -> Config {
    let mut cfg = base_config(fixture_root(tree));
    cfg.readme_checks = vec![
        ReadmeCheck {
            const_name: "WAL_MAGIC".into(),
            template: "{}".into(),
            render: Render::Ascii,
        },
        ReadmeCheck {
            const_name: "WAL_VERSION".into(),
            template: "version u32 (={})".into(),
            render: Render::Dec,
        },
    ];
    cfg
}

#[test]
fn consts_bad_flags_duplicates_and_drift() {
    let diags = run_check(&consts_config("consts/bad"), &[Family::Consts]);
    let registry_dups: Vec<_> = diags
        .iter()
        .filter(|d| d.rule == Rule::ConstRegistry)
        .collect();
    let drift: Vec<_> = diags.iter().filter(|d| d.rule == Rule::DocDrift).collect();
    assert!(
        registry_dups
            .iter()
            .any(|d| d.msg.contains("redefines protocol_consts::WAL_VERSION")),
        "{diags:?}"
    );
    assert!(
        registry_dups
            .iter()
            .any(|d| d.msg.contains("op tag OP_PING defined outside")),
        "{diags:?}"
    );
    assert!(
        registry_dups.iter().any(|d| d
            .msg
            .contains("magic literal duplicates protocol_consts::WAL_MAGIC")),
        "{diags:?}"
    );
    assert!(
        registry_dups.iter().any(|d| d
            .msg
            .contains("magic value duplicates protocol_consts::NET_MAGIC")),
        "{diags:?}"
    );
    assert_eq!(registry_dups.len(), 4, "{diags:?}");
    // The fixture README documents version 2 against a registry value of 1.
    assert_eq!(drift.len(), 1, "{diags:?}");
    assert!(drift[0].msg.contains("WAL_VERSION"), "{diags:?}");
}

#[test]
fn consts_good_is_clean() {
    let diags = run_check(&consts_config("consts/good"), &[Family::Consts]);
    assert!(diags.is_empty(), "{diags:?}");
}

fn concurrency_config(tree: &str) -> Config {
    let mut cfg = base_config(fixture_root(tree));
    cfg.lock_dirs = vec!["crates/server/src".into()];
    cfg.wire_files = vec!["crates/server/src/net.rs".into()];
    cfg
}

#[test]
fn concurrency_bad_flags_guards_and_clocks() {
    let diags = run_check(
        &concurrency_config("concurrency/bad"),
        &[Family::Concurrency],
    );
    let locks: Vec<_> = diags
        .iter()
        .filter(|d| d.rule == Rule::LockAcrossIo)
        .collect();
    let clocks: Vec<_> = diags
        .iter()
        .filter(|d| d.rule == Rule::TimeInWire)
        .collect();
    assert!(
        locks.iter().any(|d| d.msg.contains("send() while `guard`")),
        "{diags:?}"
    );
    assert!(
        locks
            .iter()
            .any(|d| d.msg.contains("recv() chained on a temporary")),
        "{diags:?}"
    );
    assert_eq!(locks.len(), 2, "{diags:?}");
    // One Instant in the wire struct body, one in a decode_* body.
    assert_eq!(clocks.len(), 2, "{diags:?}");
}

#[test]
fn concurrency_good_is_clean() {
    let diags = run_check(
        &concurrency_config("concurrency/good"),
        &[Family::Concurrency],
    );
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn allow_machinery_reports_reasonless_and_unused_directives() {
    let diags = run_check(&panic_config("allows/bad"), &[Family::Panic]);
    assert!(
        diags
            .iter()
            .any(|d| d.rule == Rule::BadAllow && d.msg.contains("without a reason")),
        "{diags:?}"
    );
    assert!(
        diags
            .iter()
            .any(|d| d.rule == Rule::UnusedAllow && d.msg.contains("suppresses nothing")),
        "{diags:?}"
    );
    // The reasonless directive still suppresses its indexing diagnostic
    // (it is reported as bad-allow, not twice), so nothing else fires.
    assert_eq!(diags.len(), 2, "{diags:?}");
}
