//! The self-gate: the real workspace must pass every rule family, and
//! the committed unsafe inventory must match a fresh render. This is the
//! same check CI runs via `cargo run -p fppv-lint -- check`.

use std::path::PathBuf;

use fppv_lint::{inventory, run_check, Config, ALL_FAMILIES};

fn workspace_config() -> Config {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves");
    Config::default_for(root)
}

#[test]
fn workspace_passes_every_rule_family() {
    let cfg = workspace_config();
    let diags = run_check(&cfg, &ALL_FAMILIES);
    assert!(
        diags.is_empty(),
        "fppv-lint violations in the tree:\n{}",
        diags
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn committed_unsafe_inventory_is_fresh() {
    let cfg = workspace_config();
    let committed = cfg.root.join("UNSAFE_INVENTORY.md");
    if let Err(msg) = inventory::check(&cfg, &committed) {
        panic!("{msg}");
    }
}
