//! # FastPPV — Incremental and Accuracy-Aware Personalized PageRank
//!
//! Umbrella crate re-exporting the whole FastPPV workspace: a from-scratch
//! Rust reproduction of *Zhu, Fang, Chang, Ying. "Incremental and
//! Accuracy-Aware Personalized PageRank through Scheduled Approximation",
//! PVLDB 6(6), 2013*.
//!
//! ```
//! use fastppv::graph::toy;
//!
//! let g = toy::graph();
//! assert_eq!(g.num_nodes(), 8);
//! ```
//!
//! See the `README.md` for a tour and `DESIGN.md` for the system inventory.

/// Graph substrate: CSR graphs, builders, generators, PageRank.
pub use fastppv_graph as graph;

/// The paper's contribution: scheduled approximation of PPVs.
pub use fastppv_core as core;

/// Baselines: exact power iteration, Monte Carlo fingerprints, HubRankP.
pub use fastppv_baselines as baselines;

/// Accuracy metrics: Kendall's τ, precision@k, RAG, L1 similarity.
pub use fastppv_metrics as metrics;

/// Disk-based processing: clustering, cluster store, fault-counted queries.
pub use fastppv_cluster as cluster;

/// Concurrent serving: shared engine, worker-pooled batching, hot-PPV cache.
pub use fastppv_server as server;

/// Scatter/gather fan-out: fault-tolerant routing over sharded indexes.
pub use fastppv_router as router;
