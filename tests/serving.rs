//! Serve-while-updating test suite: the guarantees the epoch-snapshot
//! service rests on.
//!
//! 1. **Hammer**: N threads query (mixing the single-request path and
//!    pooled batches) while `apply_update` fires repeatedly from another
//!    thread. Every response must *exactly* equal a from-scratch answer on
//!    one of the published graphs — no torn reads, no half-applied
//!    updates — and once the last update is in, no response (cached or
//!    not) may carry pre-update scores.
//! 2. The same contract holds for the flat-arena deployment, whose update
//!    path is copy-on-write (clone, patch, publish).
//! 3. The TCP front-end serves answers identical (≤ 1e-12) to a direct
//!    engine over the same snapshot, keeps serving across updates, and
//!    turns out-of-range ids into per-request errors.
//!
//! CI runs this file twice — `RUST_TEST_THREADS=1` and default
//! parallelism — so scheduling-order flakiness surfaces there, not in
//! users' terminals.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use fastppv::core::dynamic::{refresh_flat_index_snapshot_delta, DeltaConfig};
use fastppv::core::offline::{build_flat_index, build_index};
use fastppv::core::query::StoppingCondition;
use fastppv::core::{select_hubs, Config, FlatIndex, HubPolicy, HubSet, PpvStore, QueryEngine};
use fastppv::graph::gen::barabasi_albert;
use fastppv::graph::{Graph, GraphBuilder, NodeId, SparseVector};
use fastppv::server::net::{Client, WireRequest};
use fastppv::server::{QueryService, Request, ServiceOptions};

const NODES: usize = 250;
const HUBS: usize = 25;
const UPDATES: usize = 3;
const ETAS: [usize; 2] = [2, 3];

/// The evolving graph sequence: `graphs[0]` is the seed, each successor
/// inserts one edge from `tail` (a non-hub) to a fresh target.
fn graph_sequence(hubs: &HubSet, seed: u64) -> (Vec<Graph>, NodeId) {
    let g0 = barabasi_albert(NODES, 3, seed);
    let tail = (0..NODES as u32).find(|&v| !hubs.is_hub(v)).unwrap();
    let mut graphs = vec![g0];
    for i in 0..UPDATES {
        let prev = graphs.last().unwrap();
        let mut b = GraphBuilder::new(NODES);
        for (s, t) in prev.edges() {
            b.add_edge(s, t);
        }
        b.add_edge(tail, (tail + 41 + 13 * i as u32) % NODES as u32);
        graphs.push(b.build());
    }
    (graphs, tail)
}

/// Query sample: every 10th node, plus the updated tail itself.
fn query_sample(tail: NodeId) -> Vec<NodeId> {
    let mut qs: Vec<NodeId> = (0..NODES as u32).step_by(10).collect();
    qs.push(tail);
    qs
}

/// From-scratch ground truth: `truth[epoch]` maps `(query, eta)` to the
/// exact scores an independent engine computes on that epoch's graph.
fn ground_truth<S: PpvStore>(
    stores: &[S],
    graphs: &[Graph],
    hubs: &HubSet,
    config: &Config,
    queries: &[NodeId],
) -> Vec<Vec<((NodeId, usize), SparseVector)>> {
    stores
        .iter()
        .zip(graphs)
        .map(|(store, graph)| {
            let engine = QueryEngine::new(graph, hubs, store, *config);
            let mut ws = engine.workspace();
            let mut map = Vec::new();
            for &q in queries {
                for eta in ETAS {
                    let r = engine.query_with(&mut ws, q, &StoppingCondition::iterations(eta));
                    map.push(((q, eta), r.scores));
                }
            }
            map
        })
        .collect()
}

fn lookup(truth: &[((NodeId, usize), SparseVector)], q: NodeId, eta: usize) -> &SparseVector {
    &truth
        .iter()
        .find(|((tq, te), _)| *tq == q && *te == eta)
        .expect("query in sample")
        .1
}

/// The epoch(s) whose ground truth exactly matches `scores` (a response
/// may legitimately match several epochs when the query is unaffected).
fn matching_epochs(
    truth: &[Vec<((NodeId, usize), SparseVector)>],
    q: NodeId,
    eta: usize,
    scores: &SparseVector,
) -> Vec<usize> {
    truth
        .iter()
        .enumerate()
        .filter(|(_, t)| lookup(t, q, eta) == scores)
        .map(|(e, _)| e)
        .collect()
}

/// The hammer itself, generic over the store layout. `service` must be
/// freshly built over `graphs[0]`; `truth[i]` is the from-scratch answer
/// key for `graphs[i]`.
fn hammer<S: PpvStore + Send + Sync>(
    service: &QueryService<S>,
    graphs: &[Graph],
    tail: NodeId,
    queries: &[NodeId],
    truth: &[Vec<((NodeId, usize), SparseVector)>],
    apply: impl Fn(&QueryService<S>, Graph, &[NodeId]),
) {
    let stop = AtomicBool::new(false);
    std::thread::scope(|scope| {
        // Two single-request hammer threads…
        for t in 0..2usize {
            let stop = &stop;
            scope.spawn(move || {
                let mut served = 0usize;
                while !stop.load(Ordering::Acquire) {
                    for (i, &q) in queries.iter().enumerate() {
                        let eta = ETAS[(i + t) % ETAS.len()];
                        let r = service.query(Request::iterations(q, eta));
                        assert!(
                            !matching_epochs(truth, q, eta, &r.scores).is_empty(),
                            "query {q} η={eta}: response matches no published epoch \
                             (torn read or stale cache)"
                        );
                        served += 1;
                    }
                }
                assert!(served > 0);
            });
        }
        // …one pooled-batch hammer thread…
        {
            let stop = &stop;
            scope.spawn(move || {
                while !stop.load(Ordering::Acquire) {
                    let requests: Vec<Request> = queries
                        .iter()
                        .map(|&q| Request::iterations(q, ETAS[0]))
                        .collect();
                    let responses = service.process_batch(requests);
                    // A batch pins one snapshot: every response must match
                    // the *same* epoch, not merely some epoch each.
                    let mut common: Option<Vec<usize>> = None;
                    for r in &responses {
                        let epochs = matching_epochs(truth, r.query, ETAS[0], &r.scores);
                        assert!(!epochs.is_empty(), "batch response matches no epoch");
                        common = Some(match common {
                            None => epochs,
                            Some(prev) => prev.into_iter().filter(|e| epochs.contains(e)).collect(),
                        });
                    }
                    assert!(
                        common.map(|c| !c.is_empty()).unwrap_or(true),
                        "pooled batch mixed snapshots"
                    );
                }
            });
        }
        // …while the updater publishes each successor graph.
        for (i, g) in graphs.iter().enumerate().skip(1) {
            std::thread::sleep(Duration::from_millis(40));
            apply(service, g.clone(), &[tail]);
            assert_eq!(service.epoch(), i as u64, "one epoch per update");
        }
        std::thread::sleep(Duration::from_millis(40));
        stop.store(true, Ordering::Release);
    });

    // Post-invalidation: every response — and in particular every *cached*
    // response — must carry final-epoch scores, never resurrected ones.
    let last = truth.last().unwrap();
    for &q in queries {
        for eta in ETAS {
            let fresh = service.query(Request::iterations(q, eta));
            assert_eq!(
                *fresh.scores,
                *lookup(last, q, eta),
                "query {q} η={eta}: post-update response is not the final graph's answer"
            );
            let hit = service.query(Request::iterations(q, eta));
            assert!(hit.cached, "repeat deterministic request must hit");
            assert_eq!(*hit.scores, *lookup(last, q, eta));
        }
    }
}

#[test]
fn hammer_memory_service_updates_concurrent_with_queries() {
    let config = Config::default().with_epsilon(1e-6);
    let g0 = barabasi_albert(NODES, 3, 71);
    let hubs = select_hubs(&g0, HubPolicy::ExpectedUtility, HUBS, 0);
    let (graphs, tail) = graph_sequence(&hubs, 71);
    let queries = query_sample(tail);
    let stores: Vec<_> = graphs
        .iter()
        .map(|g| build_index(g, &hubs, &config).0)
        .collect();
    let truth = ground_truth(&stores, &graphs, &hubs, &config, &queries);
    let service = QueryService::new(
        Arc::new(graphs[0].clone()),
        Arc::new(hubs),
        Arc::new(stores.into_iter().next().unwrap()),
        config,
        ServiceOptions {
            workers: 3,
            queue_capacity: 16,
            cache_capacity: 256,
        },
    );
    hammer(&service, &graphs, tail, &queries, &truth, |s, g, tails| {
        s.apply_update(g, tails);
    });
}

#[test]
fn hammer_flat_service_copy_on_write_updates() {
    let config = Config::default().with_epsilon(1e-6);
    let g0 = barabasi_albert(NODES, 3, 72);
    let hubs = select_hubs(&g0, HubPolicy::ExpectedUtility, HUBS, 0);
    let (graphs, tail) = graph_sequence(&hubs, 72);
    let queries = query_sample(tail);
    let stores: Vec<FlatIndex> = graphs
        .iter()
        .map(|g| build_flat_index(g, &hubs, &config, 1).0)
        .collect();
    let truth = ground_truth(&stores, &graphs, &hubs, &config, &queries);
    let service = QueryService::new(
        Arc::new(graphs[0].clone()),
        Arc::new(hubs),
        Arc::new(stores.into_iter().next().unwrap()),
        config,
        ServiceOptions {
            workers: 3,
            queue_capacity: 16,
            cache_capacity: 256,
        },
    );
    // Pin the epoch-0 snapshot for the whole run: copy-on-write must leave
    // it bit-for-bit intact through every update.
    let pinned = service.snapshot();
    hammer(&service, &graphs, tail, &queries, &truth, |s, g, tails| {
        s.apply_update(g, tails);
    });
    let engine = pinned.engine(config);
    for &q in &queries {
        let r = engine.query(q, &StoppingCondition::iterations(ETAS[0]));
        assert_eq!(
            r.scores,
            *lookup(&truth[0], q, ETAS[0]),
            "pinned pre-update snapshot drifted under COW updates"
        );
    }
}

#[test]
fn flat_service_publish_shares_chunks_with_pinned_snapshot() {
    // Ten disjoint BA communities: an edge insert inside community 0 can
    // only dirty that community's hubs, so the bulk of the arena stays
    // live and untouched — the dead fraction never crosses the
    // compaction threshold and the COW publish must Arc-share chunks.
    let (k, per) = (10usize, 100usize);
    let communities = |seed: u64| {
        let mut b = GraphBuilder::new(k * per);
        for c in 0..k {
            let g = barabasi_albert(per, 3, seed + c as u64);
            let off = (c * per) as u32;
            for (s, t) in g.edges() {
                b.add_edge(s + off, t + off);
            }
        }
        b.build()
    };
    let config = Config::default().with_epsilon(1e-6);
    let g0 = communities(73);
    let hubs = select_hubs(&g0, HubPolicy::ExpectedUtility, 40, 0);
    let tail = (0..per as u32).find(|&v| !hubs.is_hub(v)).unwrap();
    let mut b = GraphBuilder::new(k * per);
    for (s, t) in g0.edges() {
        b.add_edge(s, t);
    }
    b.add_edge(tail, (tail + 41) % per as u32);
    let g1 = b.build();
    let store = build_flat_index(&g0, &hubs, &config, 1).0;
    let service = QueryService::new(
        Arc::new(g0.clone()),
        Arc::new(hubs),
        Arc::new(store),
        config,
        ServiceOptions {
            workers: 1,
            queue_capacity: 4,
            cache_capacity: 16,
        },
    );
    let pinned = service.snapshot();
    // Capture the pinned arena's bytes up front: after the update the
    // same Arc must still read back bit-for-bit identical.
    let before: Vec<(NodeId, Vec<(NodeId, u64)>)> = pinned
        .store()
        .hub_ids()
        .iter()
        .map(|&h| {
            let bits = pinned
                .store()
                .load(h)
                .expect("indexed hub")
                .entries
                .entries()
                .iter()
                .map(|&(v, s)| (v, s.to_bits()))
                .collect();
            (h, bits)
        })
        .collect();

    service.apply_update(g1, &[tail]);
    let published = service.store();

    // The publish is chunked copy-on-write: untouched chunks of the new
    // arena are the *same* Arc allocations as the pinned one — no deep
    // copy — while dirty hubs went to fresh tail chunks.
    let shared = published.shared_chunk_count(pinned.store());
    assert!(
        shared > 0,
        "published arena shares no chunks with the snapshot it was derived \
         from: the deep-clone publish stall is back"
    );
    assert!(
        published.bytes_cloned() < pinned.store().arena_bytes() as u64,
        "publish deep-copied at least the whole arena ({} bytes cloned, \
         arena is {})",
        published.bytes_cloned(),
        pinned.store().arena_bytes()
    );

    // And the pinned snapshot still reads exactly what it read before.
    for (h, bits) in &before {
        let now: Vec<(NodeId, u64)> = pinned
            .store()
            .load(*h)
            .expect("indexed hub")
            .entries
            .entries()
            .iter()
            .map(|&(v, s)| (v, s.to_bits()))
            .collect();
        assert_eq!(now, *bits, "pinned hub {h} drifted under a COW publish");
    }
}

#[test]
fn hammer_flat_service_delta_patched_updates() {
    let config = Config::default().with_epsilon(1e-6);
    let delta = DeltaConfig::default().with_budget(0.05);
    let g0 = barabasi_albert(NODES, 3, 74);
    let hubs = select_hubs(&g0, HubPolicy::ExpectedUtility, HUBS, 0);
    let (graphs, tail) = graph_sequence(&hubs, 74);
    let queries = query_sample(tail);
    // The delta refresh is deterministic, so the published store chain is
    // known in advance: epoch i's store is epoch i-1's patched under the
    // same DeltaConfig the service runs. Ground truth per epoch comes from
    // an independent engine over exactly those stores — every hammered
    // answer must land on one of them, bit for bit.
    let mut stores: Vec<FlatIndex> = vec![build_flat_index(&graphs[0], &hubs, &config, 1).0];
    for i in 1..graphs.len() {
        let (next, stats) = refresh_flat_index_snapshot_delta(
            &stores[i - 1],
            &graphs[i - 1],
            &graphs[i],
            &hubs,
            &[tail],
            &config,
            &delta,
        );
        assert!(
            stats.delta_patched > 0 || stats.recomputed > 0,
            "the inserted edge must dirty at least one hub"
        );
        assert!(stats.budget_watermark <= delta.budget);
        stores.push(next);
    }
    let truth = ground_truth(&stores, &graphs, &hubs, &config, &queries);
    let service = QueryService::new(
        Arc::new(graphs[0].clone()),
        Arc::new(hubs),
        Arc::new(stores.into_iter().next().unwrap()),
        config,
        ServiceOptions {
            workers: 3,
            queue_capacity: 16,
            cache_capacity: 256,
        },
    )
    .with_delta_config(delta);
    hammer(&service, &graphs, tail, &queries, &truth, |s, g, tails| {
        s.apply_update(g, tails);
    });
}

/// L1 distance between a wire entry list and a sparse vector.
fn l1_diff_entries(entries: &[(NodeId, f64)], b: &SparseVector) -> f64 {
    let mut d: f64 = entries.iter().map(|&(v, s)| (s - b.get(v)).abs()).sum();
    for &(v, s) in b.entries() {
        if !entries.iter().any(|&(e, _)| e == v) {
            d += s.abs();
        }
    }
    d
}

#[test]
fn loopback_socket_serves_across_updates() {
    let config = Config::default().with_epsilon(1e-6);
    let g0 = barabasi_albert(NODES, 3, 73);
    let hubs = select_hubs(&g0, HubPolicy::ExpectedUtility, HUBS, 0);
    let (graphs, tail) = graph_sequence(&hubs, 73);
    let queries = query_sample(tail);
    let stores: Vec<_> = graphs
        .iter()
        .map(|g| build_index(g, &hubs, &config).0)
        .collect();
    let truth = ground_truth(&stores, &graphs, &hubs, &config, &queries);
    let service = Arc::new(QueryService::new(
        Arc::new(graphs[0].clone()),
        Arc::new(hubs),
        Arc::new(stores.into_iter().next().unwrap()),
        config,
        ServiceOptions {
            workers: 2,
            queue_capacity: 16,
            cache_capacity: 64,
        },
    ));
    let server = fastppv::server::net::serve(
        Arc::clone(&service),
        std::net::TcpListener::bind("127.0.0.1:0").unwrap(),
    )
    .unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    assert_eq!(client.num_nodes(), NODES as u64);

    // Pre-update: full vectors over the wire match epoch-0 truth ≤ 1e-12
    // (bit-exact, in fact — the wire carries f64 bits verbatim).
    let requests: Vec<WireRequest> = queries
        .iter()
        .map(|&q| WireRequest::iterations(q, ETAS[0] as u32))
        .collect();
    let responses = client.request_batch(&requests).unwrap();
    for (r, &q) in responses.iter().zip(&queries) {
        let a = r.answer().expect("in-range id is served");
        assert!(
            l1_diff_entries(&a.entries, lookup(&truth[0], q, ETAS[0])) <= 1e-12,
            "socket answer for {q} diverges from the direct engine"
        );
    }

    // Updates land while the connection stays open; every answer matches
    // a published epoch, and after the last update, exactly the final one.
    for g in graphs.iter().skip(1) {
        service.apply_update(g.clone(), &[tail]);
        let responses = client.request_batch(&requests).unwrap();
        for (r, &q) in responses.iter().zip(&queries) {
            let a = r.answer().unwrap();
            let exact: SparseVector = a.entries.iter().copied().collect();
            assert!(
                !matching_epochs(&truth, q, ETAS[0], &exact).is_empty(),
                "socket answer for {q} matches no published epoch"
            );
        }
    }
    let responses = client.request_batch(&requests).unwrap();
    let last = truth.last().unwrap();
    for (r, &q) in responses.iter().zip(&queries) {
        let a = r.answer().unwrap();
        assert!(
            l1_diff_entries(&a.entries, lookup(last, q, ETAS[0])) <= 1e-12,
            "post-update socket answer for {q} is not the final graph's"
        );
    }

    // Out-of-range ids are per-request errors; the connection survives.
    let mixed = client
        .request_batch(&[
            WireRequest::iterations(queries[0], 2),
            WireRequest::iterations(NODES as u32, 2),
        ])
        .unwrap();
    assert!(mixed[0].answer().is_some());
    assert!(mixed[1].error().unwrap().contains("out of range"));

    drop(client);
    server.shutdown();
}

#[test]
fn expired_deadline_yields_partial_but_certified_answer_without_perturbing_batchmates() {
    use fastppv::baselines::{exact_ppv, ExactOptions};
    use std::time::Instant;

    let config = Config::default().with_epsilon(1e-6);
    let g0 = barabasi_albert(NODES, 3, 75);
    let hubs = select_hubs(&g0, HubPolicy::ExpectedUtility, HUBS, 0);
    let queries = query_sample(0);
    let (store, _) = build_index(&g0, &hubs, &config);
    let graph = Arc::new(g0);
    let truth = ground_truth(
        std::slice::from_ref(&store),
        std::slice::from_ref(&graph),
        &hubs,
        &config,
        &queries,
    );
    let service = QueryService::new(
        Arc::clone(&graph),
        Arc::new(hubs),
        Arc::new(store),
        config,
        ServiceOptions {
            workers: 3,
            queue_capacity: 16,
            cache_capacity: 64,
        },
    );

    // One request in the middle of a pooled batch arrives with its
    // deadline already spent; its neighbors carry none.
    let victim = queries.len() / 2;
    let eta = ETAS[1];
    let batch = |stamp: Instant| -> Vec<Request> {
        queries
            .iter()
            .enumerate()
            .map(|(i, &q)| {
                let r = Request::iterations(q, eta);
                if i == victim {
                    r.with_deadline(stamp)
                } else {
                    r
                }
            })
            .collect()
    };
    let responses = service.process_batch(batch(Instant::now()));

    // The victim is answered, not errored: fewer increments than asked,
    // and φ still a true bound against an exact offline recompute.
    let v = &responses[victim];
    assert!(
        v.iterations < eta,
        "an expired deadline must cut iterations"
    );
    let exact = exact_ppv(&graph, v.query, ExactOptions::default());
    let gap: f64 = graph
        .nodes()
        .map(|n| exact[n as usize] - v.scores.get(n))
        .sum();
    assert!(
        gap <= v.l1_error + 1e-9,
        "partial φ {} does not bound the true gap {gap}",
        v.l1_error
    );

    // Batchmates are untouched: full-η answers, exactly the epoch truth.
    for (i, r) in responses.iter().enumerate() {
        if i == victim {
            continue;
        }
        assert_eq!(
            *r.scores,
            *lookup(&truth[0], r.query, eta),
            "query {}: a neighbor's expired deadline perturbed this answer",
            r.query
        );
    }

    // Deadline-carrying requests are uncacheable in both directions: the
    // partial answer is never stored, and a deadline request never reads
    // the memo (a full cached vector would overshoot the time budget's
    // contract of "best effort by the deadline" with a stale-keyed hit).
    let again = service.process_batch(batch(Instant::now()));
    assert!(
        !again[victim].cached,
        "a deadline request must bypass the hot-PPV cache"
    );
    let full = service.query(Request::iterations(queries[victim], eta));
    assert!(
        !full.cached,
        "the partial deadline answer leaked into the cache"
    );
    assert_eq!(*full.scores, *lookup(&truth[0], full.query, eta));
}

#[test]
fn service_stays_sync_with_snapshot_state() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<QueryService<fastppv::core::MemoryIndex>>();
    assert_send_sync::<QueryService<FlatIndex>>();
    assert_send_sync::<fastppv::server::ServingState<FlatIndex>>();
}
