//! Proves the acceptance criterion "zero per-iteration heap allocations in
//! `IncrementalState::step` on the `FlatIndex` path" with a counting global
//! allocator.
//!
//! This file deliberately holds a single test: the allocation counter is
//! process-global, and a lone test keeps other threads from muddying the
//! measurement window.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use fastppv::core::offline::build_flat_index;
use fastppv::core::query::StoppingCondition;
use fastppv::core::{select_hubs, Config, HubPolicy, QueryEngine};
use fastppv::graph::gen::barabasi_albert;

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn steps_allocate_nothing_on_flat_path_with_warm_workspace() {
    let g = barabasi_albert(2000, 4, 42);
    let hubs = select_hubs(&g, HubPolicy::ExpectedUtility, 80, 0);
    // δ = 0 keeps the frontier alive long enough to measure many steps.
    let config = Config::default().with_epsilon(1e-6).with_delta(0.0);
    let (flat, _) = build_flat_index(&g, &hubs, &config, 1);
    let engine = QueryEngine::new(&g, &hubs, &flat, config);
    let mut ws = engine.workspace();
    // Pick a hub query: iteration 0 is a pure view into the arena, so the
    // whole session exercises only the flat hot path.
    let q = hubs.ids()[0];

    // Warm-up: grows the touched lists / frontier buffer to this query's
    // working set (first-time capacity growth is a per-workspace cost, not
    // a per-iteration one).
    let warm = engine.query_with(&mut ws, q, &StoppingCondition::iterations(6));
    assert!(
        warm.iterations >= 3,
        "workload too shallow to measure steps"
    );

    let mut session = engine.session_in(&mut ws, q);
    let mut steps = 0usize;
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    while steps < 6 && session.step() {
        steps += 1;
    }
    let during = ALLOCATIONS.load(Ordering::Relaxed) - before;
    assert!(steps >= 3, "frontier exhausted after {steps} steps");
    assert_eq!(
        during, 0,
        "{during} heap allocations across {steps} warm steps on the flat path"
    );

    // Sanity check that the counter is actually live.
    let probe = ALLOCATIONS.load(Ordering::Relaxed);
    std::hint::black_box(Vec::<u64>::with_capacity(32));
    assert!(ALLOCATIONS.load(Ordering::Relaxed) > probe);
}
