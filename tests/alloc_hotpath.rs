//! Proves two acceptance criteria with a counting global allocator:
//!
//! * zero per-iteration heap allocations in `IncrementalState::step` on
//!   the `FlatIndex` path (hub sources — iteration 0 is an arena view);
//! * O(1) amortized allocations for a **cold non-hub query** on the fused
//!   extract+solve path (`PrimeComputer::prime_ppv_into`): once the
//!   workspace is warm, starting a session computes the whole prime PPV
//!   on the fly with the session bookkeeping's single allocation, and
//!   every subsequent step allocates nothing.
//!
//! This file deliberately holds a single test: the allocation counter is
//! process-global, and a lone test keeps other threads from muddying the
//! measurement window.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use fastppv::core::offline::build_flat_index;
use fastppv::core::query::StoppingCondition;
use fastppv::core::{select_hubs, Config, HubPolicy, QueryEngine};
use fastppv::graph::gen::barabasi_albert;

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: pure pass-through to the `System` allocator (plus a side-effect-
// free counter bump), so `System`'s allocation guarantees carry over.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: forwarded verbatim — the caller upholds `alloc`'s contract.
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: forwarded verbatim — `ptr`/`layout` came from this
        // allocator, which is `System` underneath.
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: forwarded verbatim — the caller upholds `realloc`'s contract.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn steps_allocate_nothing_on_flat_path_with_warm_workspace() {
    let g = barabasi_albert(2000, 4, 42);
    let hubs = select_hubs(&g, HubPolicy::ExpectedUtility, 80, 0);
    // δ = 0 keeps the frontier alive long enough to measure many steps.
    let config = Config::default().with_epsilon(1e-6).with_delta(0.0);
    let (flat, _) = build_flat_index(&g, &hubs, &config, 1);
    let engine = QueryEngine::new(&g, &hubs, &flat, config);
    let mut ws = engine.workspace();
    // Pick a hub query: iteration 0 is a pure view into the arena, so the
    // whole session exercises only the flat hot path.
    let q = hubs.ids()[0];

    // Warm-up: grows the touched lists / frontier buffer to this query's
    // working set (first-time capacity growth is a per-workspace cost, not
    // a per-iteration one).
    let warm = engine.query_with(&mut ws, q, &StoppingCondition::iterations(6));
    assert!(
        warm.iterations >= 3,
        "workload too shallow to measure steps"
    );

    let mut session = engine.session_in(&mut ws, q);
    let mut steps = 0usize;
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    while steps < 6 && session.step() {
        steps += 1;
    }
    let during = ALLOCATIONS.load(Ordering::Relaxed) - before;
    assert!(steps >= 3, "frontier exhausted after {steps} steps");
    assert_eq!(
        during, 0,
        "{during} heap allocations across {steps} warm steps on the flat path"
    );
    drop(session);

    // Phase 2: a cold non-hub source. Iteration 0 must run the fused
    // extract+solve inside the workspace's reused arena: no PrimeSubgraph,
    // no materialized PrimePpv. After one warmup query (which grows the
    // arena buffers to this source's footprint), starting a session costs
    // a small constant number of allocations — the session's stats vector
    // and nothing proportional to the subgraph — and steps cost zero.
    let q_cold = (0..2000u32).find(|&v| !hubs.is_hub(v)).expect("non-hub");
    let warm_cold = engine.query_with(&mut ws, q_cold, &StoppingCondition::iterations(6));
    assert!(
        warm_cold.iterations >= 3,
        "non-hub workload too shallow to measure steps"
    );

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let mut session = engine.session_in(&mut ws, q_cold);
    let session_allocs = ALLOCATIONS.load(Ordering::Relaxed) - before;
    assert!(
        session_allocs <= 2,
        "{session_allocs} heap allocations to start a warm cold-source \
         session (fused extract+solve must stay inside the arena)"
    );
    let mut steps = 0usize;
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    while steps < 6 && session.step() {
        steps += 1;
    }
    let during = ALLOCATIONS.load(Ordering::Relaxed) - before;
    assert!(steps >= 3, "non-hub frontier exhausted after {steps} steps");
    assert_eq!(
        during, 0,
        "{during} heap allocations across {steps} warm non-hub steps"
    );

    // Sanity check that the counter is actually live.
    let probe = ALLOCATIONS.load(Ordering::Relaxed);
    std::hint::black_box(Vec::<u64>::with_capacity(32));
    assert!(ALLOCATIONS.load(Ordering::Relaxed) > probe);
}
