//! Router fault matrix: shards dying mid-batch, slow-loris stragglers
//! hedged around, epoch skew injected between merge iterations, and a
//! property-based certification check — with one dead shard, the
//! inflated φ must still upper-bound the true L1 gap to the full-cluster
//! answer.
//!
//! Rounds scale with `FASTPPV_FAULT_ROUNDS` (CI turns it up; the local
//! default keeps the suite fast).

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use fastppv::cluster::{cluster_graph, slice_store, ClusteringOptions, ShardMap};
use fastppv::core::query::StoppingCondition;
use fastppv::core::{build_index, select_hubs, Config, HubPolicy, HubSet, MemoryIndex};
use fastppv::graph::gen::{barabasi_albert, synth_events};
use fastppv::graph::vec::ScoreScratch;
use fastppv::graph::{Graph, NodeId};
use fastppv::router::{
    merge_query, two_phase_publish, BackendError, Health, LocalBackend, Router, RouterConfig,
    RouterOptions, SubBackend, TcpBackend, TcpBackendOptions, UpdateBackend,
};
use fastppv::server::net::{
    serve, ClientOptions, SubReply, WireExpand, WirePrime0, WireRequest, WireResponse,
};
use fastppv::server::{QueryService, ServiceOptions};
use proptest::prelude::*;

/// Chaos rounds, scaled by `FASTPPV_FAULT_ROUNDS` in CI.
fn rounds(default: usize) -> usize {
    std::env::var("FASTPPV_FAULT_ROUNDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

struct Fixture {
    graph: Arc<Graph>,
    hubs: Arc<HubSet>,
    index: MemoryIndex,
    config: Config,
}

fn fixture(nodes: usize, hub_count: usize, seed: u64) -> Fixture {
    let config = Config::default().with_epsilon(1e-5);
    let g = barabasi_albert(nodes, 3, seed);
    let hubs = Arc::new(select_hubs(&g, HubPolicy::ExpectedUtility, hub_count, 0));
    let graph = Arc::new(g);
    let (index, _) = build_index(&graph, &hubs, &config);
    Fixture {
        graph,
        hubs,
        index,
        config,
    }
}

fn shard_services(fx: &Fixture, map: &ShardMap) -> Vec<Arc<QueryService<MemoryIndex>>> {
    (0..map.num_shards())
        .map(|s| {
            let slice = slice_store(&fx.index, &fx.hubs, map, s);
            Arc::new(QueryService::new(
                Arc::clone(&fx.graph),
                Arc::clone(&fx.hubs),
                Arc::new(slice),
                fx.config,
                ServiceOptions {
                    workers: 2,
                    ..ServiceOptions::default()
                },
            ))
        })
        .collect()
}

fn router_cfg(fx: &Fixture) -> RouterConfig {
    RouterConfig {
        alpha: fx.config.alpha,
        delta: fx.config.delta,
        num_nodes: fx.graph.num_nodes(),
    }
}

fn non_hub_queries(fx: &Fixture, count: usize) -> Vec<NodeId> {
    let n = fx.graph.num_nodes();
    (0..n as NodeId)
        .filter(|&v| !fx.hubs.is_hub(v))
        .step_by((n / count).max(1))
        .take(count)
        .collect()
}

// ---------------------------------------------------------------------------
// Shard death mid-batch
// ---------------------------------------------------------------------------

/// A shard dying halfway through a batch never produces a client-visible
/// error: every response stays a certified `Answer` (possibly degraded,
/// with φ inflated to cover the dead shard's mass), and the first fresh
/// query after the shard returns is clean again.
#[test]
fn shard_death_mid_batch_degrades_never_errors() {
    let fx = fixture(900, 60, 21);
    let map = ShardMap::round_robin(fx.graph.num_nodes(), 4);
    let backend = LocalBackend::new(shard_services(&fx, &map));
    let router = Router::new(backend, map, router_cfg(&fx), RouterOptions::default());
    let queries = non_hub_queries(&fx, 8);

    for round in 0..rounds(3) {
        let dead = round % 4;
        let mut degraded = 0u32;
        for (i, &q) in queries.iter().enumerate() {
            if i == queries.len() / 2 {
                router.backend().set_dead(dead, true);
            }
            // Distinct (query, η) per round so the answer cache cannot
            // mask the dead shard.
            let request = WireRequest::iterations(q, 2 + (round % 2) as u32);
            match router.serve_request(&request) {
                WireResponse::Answer(a) => {
                    assert!(
                        (0.0..=1.0).contains(&a.l1_error),
                        "round {round} q {q}: φ {} out of range",
                        a.l1_error
                    );
                    if a.degraded {
                        assert!(!a.exhausted, "degraded answers never claim exhaustion");
                        degraded += 1;
                    }
                }
                other => panic!("round {round} q {q}: client-visible failure {other:?}"),
            }
        }
        router.backend().set_dead(dead, false);
        // Revived: a fresh (uncached) query must be clean again.
        let fresh = WireRequest::iterations(queries[round % queries.len()], 3);
        match router.serve_request(&fresh) {
            WireResponse::Answer(a) => {
                assert!(!a.degraded, "round {round}: still degraded after revival")
            }
            other => panic!("round {round}: failure after revival: {other:?}"),
        }
        let _ = degraded; // how many were degraded depends on hub ownership
    }
    let stats = router.stats();
    assert_eq!(stats.shed, 0, "iteration-stop requests are never shed");
}

/// With *every* shard down the router sheds with a typed, retryable
/// `Overloaded` — not a hang, not a protocol error — and recovers as
/// soon as any shard returns.
#[test]
fn all_shards_down_sheds_with_retry_hint() {
    let fx = fixture(400, 24, 5);
    let map = ShardMap::round_robin(fx.graph.num_nodes(), 2);
    let backend = LocalBackend::new(shard_services(&fx, &map));
    let router = Router::new(backend, map, router_cfg(&fx), RouterOptions::default());
    let q = non_hub_queries(&fx, 1)[0];

    router.backend().set_dead(0, true);
    router.backend().set_dead(1, true);
    match router.serve_request(&WireRequest::iterations(q, 1)) {
        WireResponse::Overloaded { retry_after_ms } => assert!(retry_after_ms > 0),
        other => panic!("expected Overloaded, got {other:?}"),
    }
    assert_eq!(router.stats().shed, 1);

    router.backend().set_dead(1, false);
    match router.serve_request(&WireRequest::iterations(q, 1)) {
        WireResponse::Answer(a) => assert!((0.0..=1.0).contains(&a.l1_error)),
        other => panic!("one live shard must be enough: {other:?}"),
    }
}

/// An unattainable accuracy contract is shed honestly: with a shard dead,
/// an L1-target request whose inflated φ misses the target comes back
/// `Overloaded`, while the same request with an achievable target (or an
/// iteration stop) is served degraded.
#[test]
fn unattainable_l1_target_is_shed_not_silently_missed() {
    let fx = fixture(900, 40, 9);
    // Cluster-derived map: whole clusters per shard makes it easy to find
    // queries whose border mass concentrates on one shard.
    let clustering = cluster_graph(&fx.graph, 8, ClusteringOptions::default());
    let map = ShardMap::from_clustering(&clustering, 3);
    let backend = LocalBackend::new(shard_services(&fx, &map));
    let router = Router::new(backend, map, router_cfg(&fx), RouterOptions::default());

    // Find a query that degrades under a dead shard (its φ inflates).
    let mut hit = None;
    'outer: for dead in 0..3 {
        for &q in &non_hub_queries(&fx, 12) {
            router.backend().set_dead(dead, true);
            let resp = router.serve_request(&WireRequest::iterations(q, 4));
            router.backend().set_dead(dead, false);
            let clean = router.serve_request(&WireRequest::iterations(q, 4));
            if let (WireResponse::Answer(d), WireResponse::Answer(c)) = (resp, clean) {
                if d.degraded && d.l1_error > c.l1_error + 1e-9 {
                    hit = Some((dead, q, d.l1_error, c.l1_error));
                    break 'outer;
                }
            }
        }
    }
    let (dead, q, phi_degraded, phi_clean) =
        hit.expect("some query must degrade when its border shard dies");

    router.backend().set_dead(dead, true);
    // Target between the clean φ and the inflated φ: achievable by the
    // full cluster, unattainable degraded → shed.
    let target = (phi_clean + phi_degraded) / 2.0;
    match router.serve_request(&WireRequest::l1_error(q, target)) {
        WireResponse::Overloaded { retry_after_ms } => assert!(retry_after_ms > 0),
        other => panic!("unattainable target must shed, got {other:?}"),
    }
    // A lax target is served, degraded flag raised, φ within contract.
    match router.serve_request(&WireRequest::l1_error(q, phi_degraded + 0.1)) {
        WireResponse::Answer(a) => {
            assert!(a.degraded);
            assert!(a.l1_error <= phi_degraded + 0.1 + 1e-12);
        }
        other => panic!("attainable target must serve, got {other:?}"),
    }
    router.backend().set_dead(dead, false);
}

// ---------------------------------------------------------------------------
// Epoch skew injected mid-merge
// ---------------------------------------------------------------------------

/// Forwards to a [`LocalBackend`] but runs a full two-phase publish right
/// before the first expand — the merge's pinned epoch is stale from that
/// point on, so every shard refuses with epoch skew and the merge must
/// retry once from scratch on the new epoch.
struct SkewInject<'a> {
    inner: &'a LocalBackend<MemoryIndex>,
    events: Vec<fastppv::graph::gen::EdgeEvent>,
    armed: AtomicBool,
}

impl SubBackend for SkewInject<'_> {
    fn num_shards(&self) -> usize {
        SubBackend::num_shards(self.inner)
    }

    fn prime0(
        &self,
        shard: usize,
        query: NodeId,
        expect_epoch: Option<u64>,
    ) -> Result<SubReply<WirePrime0>, BackendError> {
        self.inner.prime0(shard, query, expect_epoch)
    }

    fn expand(
        &self,
        shard: usize,
        sublist: &[(NodeId, f64)],
        expect_epoch: Option<u64>,
    ) -> Result<SubReply<WireExpand>, BackendError> {
        if self.armed.swap(false, Ordering::SeqCst) {
            let target = UpdateBackend::epoch(self.inner, 0).unwrap() + 1;
            two_phase_publish(self.inner, target, &self.events).expect("publish");
        }
        self.inner.expand(shard, sublist, expect_epoch)
    }
}

#[test]
fn epoch_skew_mid_merge_is_retried_once_and_never_mixes_epochs() {
    let fx = fixture(700, 45, 33);
    let map = ShardMap::round_robin(fx.graph.num_nodes(), 3);
    let backend = LocalBackend::new(shard_services(&fx, &map));
    let cfg = router_cfg(&fx);
    let events = synth_events(&fx.graph, 12, 0.25, 99);
    let q = non_hub_queries(&fx, 1)[0];
    let stop = StoppingCondition::iterations(3);
    let mut scratch = ScoreScratch::new(fx.graph.num_nodes());

    let inject = SkewInject {
        inner: &backend,
        events,
        armed: AtomicBool::new(true),
    };
    let merged = merge_query(&inject, &map, &cfg, q, &stop, &mut scratch)
        .expect("one retry must absorb a single mid-merge publish");
    assert!(
        !inject.armed.load(Ordering::SeqCst),
        "publish must have fired"
    );
    assert_eq!(merged.epoch, 1, "retry must land on the committed epoch");
    assert!(!merged.degraded);

    // The retried answer is bit-identical to a clean merge at epoch 1:
    // no partial from epoch 0 leaked into it.
    let clean = merge_query(&backend, &map, &cfg, q, &stop, &mut scratch).unwrap();
    assert_eq!(clean.epoch, 1);
    assert_eq!(merged.scores, clean.scores);
    assert_eq!(merged.l1_error, clean.l1_error);
    assert_eq!(merged.iterations, clean.iterations);
}

// ---------------------------------------------------------------------------
// Slow loris over TCP: hedging + circuit breaker
// ---------------------------------------------------------------------------

/// A TCP proxy whose *first* accepted connection forwards the server
/// hello and then goes silent (the classic stalled-but-connected shard);
/// every later connection forwards both directions faithfully.
fn stalling_proxy(upstream: SocketAddr) -> SocketAddr {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    std::thread::spawn(move || {
        let mut first = true;
        for conn in listener.incoming() {
            let Ok(client) = conn else { break };
            let stall = std::mem::take(&mut first);
            let Ok(server) = TcpStream::connect(upstream) else {
                continue;
            };
            let (mut c_in, mut s_out) = (client.try_clone().unwrap(), server.try_clone().unwrap());
            std::thread::spawn(move || {
                let _ = std::io::copy(&mut c_in, &mut s_out);
            });
            let (mut s_in, mut c_out) = (server, client);
            std::thread::spawn(move || {
                if stall {
                    // Forward exactly one frame (the hello), then hang.
                    let mut len = [0u8; 4];
                    if s_in.read_exact(&mut len).is_err() {
                        return;
                    }
                    let n = u32::from_le_bytes(len) as usize;
                    let mut body = vec![0u8; n];
                    if s_in.read_exact(&mut body).is_err() {
                        return;
                    }
                    let _ = c_out.write_all(&len);
                    let _ = c_out.write_all(&body);
                    let _ = c_out.flush();
                    std::thread::sleep(Duration::from_secs(20));
                } else {
                    let _ = std::io::copy(&mut s_in, &mut c_out);
                }
            });
        }
    });
    addr
}

/// A shard that accepts, greets, and then stalls is hedged around: the
/// duplicate sub-request on a fresh connection answers fast, the merge
/// never waits out the stalled socket, and the shard stays healthy.
#[test]
fn slow_loris_shard_is_hedged_around() {
    let fx = fixture(500, 30, 17);
    let map = ShardMap::round_robin(fx.graph.num_nodes(), 2);
    let services = shard_services(&fx, &map);
    let l0 = TcpListener::bind("127.0.0.1:0").unwrap();
    let l1 = TcpListener::bind("127.0.0.1:0").unwrap();
    let a1 = l1.local_addr().unwrap();
    let s0 = serve(Arc::clone(&services[0]), l0).unwrap();
    let s1 = serve(Arc::clone(&services[1]), l1).unwrap();
    // Shard 1 sits behind the stalling proxy.
    let proxied = stalling_proxy(a1);

    let backend = TcpBackend::new(
        vec![s0.local_addr(), proxied],
        TcpBackendOptions {
            client: ClientOptions {
                read_timeout: Some(Duration::from_secs(3)),
                ..ClientOptions::default()
            },
            hedge_delay_floor: Duration::from_millis(50),
            sub_request_timeout: Duration::from_secs(8),
            ..TcpBackendOptions::default()
        },
    );
    let q = non_hub_queries(&fx, 1)[0];
    let started = Instant::now();
    let reply = backend.prime0(1, q, None).expect("hedge must win");
    assert!(matches!(reply, SubReply::Ok(_)), "{reply:?}");
    assert!(
        started.elapsed() < Duration::from_secs(3),
        "hedge took {:?} — the stalled socket was waited out",
        started.elapsed()
    );
    assert!(backend.hedges_sent() >= 1, "no hedge was issued");
    assert_eq!(backend.health().health(1), Health::Up);

    // The whole merge path across both shards stays fast, too.
    let cfg = router_cfg(&fx);
    let mut scratch = ScoreScratch::new(fx.graph.num_nodes());
    let merged = merge_query(
        &backend,
        &map,
        &cfg,
        q,
        &StoppingCondition::iterations(2),
        &mut scratch,
    )
    .unwrap();
    assert!(!merged.degraded);

    s0.shutdown();
    s1.shutdown();
}

/// A shard whose address refuses connections walks Up → Suspect → Down;
/// once the breaker is open, requests fail fast without touching a
/// socket until the backoff window expires.
#[test]
fn connection_refused_opens_breaker_and_fails_fast() {
    // Grab a port that nothing listens on.
    let dead_addr = {
        let l = TcpListener::bind("127.0.0.1:0").unwrap();
        l.local_addr().unwrap()
    };
    let backend = TcpBackend::new(
        vec![dead_addr],
        TcpBackendOptions {
            client: ClientOptions {
                connect_timeout: Some(Duration::from_millis(300)),
                read_timeout: Some(Duration::from_millis(300)),
                ..ClientOptions::default()
            },
            ..TcpBackendOptions::default()
        },
    );
    for _ in 0..3 {
        assert!(backend.probe(0).is_err());
    }
    assert_eq!(backend.health().health(0), Health::Down);
    let started = Instant::now();
    assert!(matches!(
        backend.prime0(0, 0, None),
        Err(BackendError::ShardDown(0))
    ));
    assert!(
        started.elapsed() < Duration::from_millis(100),
        "open breaker must fail fast, took {:?}",
        started.elapsed()
    );
}

// ---------------------------------------------------------------------------
// Property: certified degradation on random graphs and partitions
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// For random graphs, random shard maps, and one random dead shard:
    /// the degraded estimate stays an entry-wise lower bound of the
    /// full-cluster answer, and its inflated φ upper-bounds the true L1
    /// gap — certified partial answers never overstate their accuracy.
    #[test]
    fn degraded_phi_upper_bounds_true_gap(
        nodes in 150usize..400,
        seed in 0u64..1_000,
        num_shards in 2u32..5,
        dead_pick in 0u32..64,
        eta in 0u32..4,
        clustered in any::<bool>(),
    ) {
        let fx = fixture(nodes, (nodes / 10).max(6), seed);
        let map = if clustered {
            let clustering = cluster_graph(&fx.graph, 6, ClusteringOptions::default());
            ShardMap::from_clustering(&clustering, num_shards)
        } else {
            ShardMap::round_robin(nodes, num_shards)
        };
        let backend = LocalBackend::new(shard_services(&fx, &map));
        let cfg = router_cfg(&fx);
        let dead = (dead_pick % num_shards) as usize;
        let stop = StoppingCondition::iterations(eta as usize);
        let mut scratch = ScoreScratch::new(nodes);

        for &q in non_hub_queries(&fx, 3).iter() {
            backend.set_dead(dead, true);
            let partial = merge_query(&backend, &map, &cfg, q, &stop, &mut scratch).unwrap();
            backend.set_dead(dead, false);
            let full = merge_query(&backend, &map, &cfg, q, &stop, &mut scratch).unwrap();

            prop_assert!((0.0..=1.0 + 1e-12).contains(&partial.l1_error));
            prop_assert!(partial.l1_error + 1e-12 >= full.l1_error);
            let mut gap = 0.0;
            let mut pi = partial.scores.iter().peekable();
            for &(v, sf) in &full.scores {
                match pi.peek() {
                    Some(&&(pv, sp)) if pv == v => {
                        prop_assert!(sp <= sf + 1e-12, "node {v}: partial above full");
                        gap += sf - sp;
                        pi.next();
                    }
                    _ => gap += sf,
                }
            }
            prop_assert!(pi.peek().is_none(), "partial support must stay within full");
            prop_assert!(
                gap <= partial.l1_error + 1e-12,
                "q {q} dead {dead}: gap {gap} > certified φ {}",
                partial.l1_error
            );
        }
    }
}
