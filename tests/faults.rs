//! Fault-injection harness: the service must degrade, not die.
//!
//! Four attack surfaces, each paired with the invariant that survives it:
//!
//! 1. **Protocol garbage** — torn length headers, absurd frame lengths,
//!    well-framed nonsense payloads. The connection that sent them may be
//!    dropped; the *next* well-behaved client always gets a correct
//!    answer.
//! 2. **Slow loris + churn** — connections that stall mid-frame or
//!    connect and vanish. Stalled connections are cut at the frame-stall
//!    timeout; good clients keep their latency.
//! 3. **Snapshot isolation under fire** — duplicated queries inside one
//!    batch must agree bit-for-bit while updates publish new epochs
//!    concurrently (no epoch mixing inside a batch).
//! 4. **Overload** — with the service pinned past its shed watermark,
//!    every rejection carries a positive retry hint and every admitted
//!    answer (degraded or not) keeps φ a true bound against an exact
//!    offline recompute; once the load drains the service admits at full
//!    accuracy again.
//!
//! Rounds scale with `FASTPPV_FAULT_ROUNDS` (CI turns it up; the local
//! default keeps the suite fast). Mid-batch SIGKILL of a real server
//! process lives in `crates/cli/tests/cli.rs`, next to the binary.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use fastppv::baselines::{exact_ppv, ExactOptions};
use fastppv::core::offline::build_index;
use fastppv::core::query::StoppingCondition;
use fastppv::core::{select_hubs, Config, HubPolicy, MemoryIndex};
use fastppv::graph::gen::barabasi_albert;
use fastppv::graph::{Graph, GraphBuilder};
use fastppv::server::net::{serve, serve_with_options, Client, NetOptions, WireRequest};
use fastppv::server::{Admission, OverloadOptions, QueryService, Request, ServiceOptions};
use proptest::prelude::*;

/// Chaos rounds, scaled by `FASTPPV_FAULT_ROUNDS` in CI.
fn rounds(default: usize) -> usize {
    std::env::var("FASTPPV_FAULT_ROUNDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn fixture(
    nodes: usize,
    hubs: usize,
    seed: u64,
    options: ServiceOptions,
) -> (Arc<Graph>, Arc<QueryService<MemoryIndex>>) {
    let config = Config::default().with_epsilon(1e-6);
    let g = barabasi_albert(nodes, 3, seed);
    let hub_set = select_hubs(&g, HubPolicy::ExpectedUtility, hubs, 0);
    let (index, _) = build_index(&g, &hub_set, &config);
    let graph = Arc::new(g);
    let service = Arc::new(QueryService::new(
        Arc::clone(&graph),
        Arc::new(hub_set),
        Arc::new(index),
        config,
        options,
    ));
    (graph, service)
}

/// A batch that parks the worker pool for a while: unbounded iterations
/// under a wall-clock limit, across enough requests that the in-flight
/// count stays above any watermark for the batch's whole duration.
fn pin_batch(n: usize, hold: Duration) -> Vec<Request> {
    (0..n as u32)
        .map(|q| Request {
            query: q,
            stop: StoppingCondition {
                max_iterations: None,
                l1_target: None,
                time_limit: Some(hold),
            },
            deadline: None,
        })
        .collect()
}

#[test]
fn torn_and_garbage_frames_never_take_the_server_down() {
    let (_graph, service) = fixture(
        200,
        20,
        11,
        ServiceOptions {
            workers: 2,
            queue_capacity: 64,
            cache_capacity: 32,
        },
    );
    let server = serve_with_options(
        service,
        TcpListener::bind("127.0.0.1:0").unwrap(),
        NetOptions {
            frame_stall_timeout: Duration::from_millis(200),
            ..NetOptions::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();
    let attacks: Vec<Vec<u8>> = vec![
        // Connect and say nothing.
        vec![],
        // Torn length header.
        vec![0x01],
        // Absurd frame length (greater than MAX_FRAME_BYTES).
        0xFFFF_FFFFu32.to_le_bytes().to_vec(),
        // Valid header, torn payload.
        {
            let mut v = 8u32.to_le_bytes().to_vec();
            v.extend_from_slice(&[0xDE, 0xAD]);
            v
        },
        // Complete frame of well-framed nonsense.
        {
            let mut v = 6u32.to_le_bytes().to_vec();
            v.extend_from_slice(&[9, 9, 9, 9, 9, 9]);
            v
        },
    ];
    for round in 0..rounds(20) {
        let attack = &attacks[round % attacks.len()];
        // The attacker may be hung up on mid-write; that is the point.
        let s = TcpStream::connect(addr).unwrap();
        let _ = (&s).write_all(attack);
        drop(s);
        // After every attack, a well-behaved client gets a correct answer
        // on a fresh connection.
        let mut client = Client::connect(addr).unwrap();
        let r = client
            .request_one(WireRequest::iterations((round % 200) as u32, 2))
            .unwrap();
        let a = r.answer().expect("healthy answer after protocol garbage");
        assert!(a.l1_error < 1.0, "φ must be a real certificate");
    }
    server.shutdown();
}

#[test]
fn slow_loris_and_connection_churn_do_not_starve_good_clients() {
    let (_graph, service) = fixture(
        200,
        20,
        12,
        ServiceOptions {
            workers: 2,
            queue_capacity: 64,
            cache_capacity: 0,
        },
    );
    let server = serve_with_options(
        service,
        TcpListener::bind("127.0.0.1:0").unwrap(),
        NetOptions {
            frame_stall_timeout: Duration::from_millis(100),
            ..NetOptions::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();
    // Stalled connections: half a frame header, then silence.
    let loris: Vec<TcpStream> = (0..8)
        .map(|_| {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(&[0x02, 0x00]).unwrap();
            s
        })
        .collect();
    // Churn: connections that come and go without ever speaking.
    for _ in 0..rounds(30) {
        drop(TcpStream::connect(addr).unwrap());
    }
    // Good-client goodput while the loris connections stall.
    let mut client = Client::connect(addr).unwrap();
    for i in 0..rounds(50) {
        let started = Instant::now();
        let r = client
            .request_one(WireRequest::iterations((i % 200) as u32, 2))
            .unwrap();
        assert!(r.answer().is_some());
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "good client starved behind slow-loris connections"
        );
    }
    // The server cut every stalled connection at the frame-stall timeout —
    // it never keeps them on life support.
    for mut s in loris {
        s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        let mut buf = [0u8; 64];
        loop {
            match s.read(&mut buf) {
                Ok(0) => break,    // clean EOF: the server hung up
                Ok(_) => continue, // draining the hello
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::ConnectionReset
                            | std::io::ErrorKind::BrokenPipe
                            | std::io::ErrorKind::ConnectionAborted
                    ) =>
                {
                    break
                }
                Err(e) => panic!("server kept a stalled connection open: {e}"),
            }
        }
    }
    server.shutdown();
}

#[test]
fn duplicate_queries_in_a_batch_agree_while_updates_land() {
    const NODES: usize = 250;
    let (graph, service) = fixture(
        NODES,
        25,
        13,
        ServiceOptions {
            workers: 3,
            queue_capacity: 64,
            // No cache: duplicates must agree because the batch pins one
            // snapshot, not because they hit the same memo entry.
            cache_capacity: 0,
        },
    );
    let server = serve(
        Arc::clone(&service),
        TcpListener::bind("127.0.0.1:0").unwrap(),
    )
    .unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    let stop = AtomicBool::new(false);
    std::thread::scope(|scope| {
        let svc = Arc::clone(&service);
        let stop = &stop;
        let seed_graph = Arc::clone(&graph);
        scope.spawn(move || {
            let mut cur = (*seed_graph).clone();
            let mut i = 0u32;
            while !stop.load(Ordering::Acquire) {
                let tail = (i * 7 + 3) % NODES as u32;
                let head = (i * 13 + 11) % NODES as u32;
                let mut b = GraphBuilder::new(NODES);
                for (s, t) in cur.edges() {
                    b.add_edge(s, t);
                }
                b.add_edge(tail, head);
                let next = b.build();
                svc.apply_update(next.clone(), &[tail]);
                cur = next;
                i += 1;
                std::thread::sleep(Duration::from_millis(3));
            }
        });
        for round in 0..rounds(40) {
            let qs: Vec<u32> = (0..8u32)
                .map(|k| (round as u32 * 31 + k * 17) % NODES as u32)
                .collect();
            // Each query appears twice in the same batch.
            let requests: Vec<WireRequest> = qs
                .iter()
                .chain(qs.iter())
                .map(|&q| WireRequest::iterations(q, 2))
                .collect();
            let responses = client.request_batch(&requests).unwrap();
            for k in 0..qs.len() {
                let a = responses[k].answer().unwrap();
                let b = responses[k + qs.len()].answer().unwrap();
                let bits = |e: &[(u32, f64)]| -> Vec<(u32, u64)> {
                    e.iter().map(|&(v, s)| (v, s.to_bits())).collect()
                };
                assert_eq!(
                    bits(&a.entries),
                    bits(&b.entries),
                    "duplicate query {} in one batch answered from two \
                     different epochs (snapshot mixing)",
                    qs[k]
                );
            }
        }
        stop.store(true, Ordering::Release);
    });
    server.shutdown();
}

#[test]
fn sheds_carry_positive_retry_hints_and_admitted_answers_stay_certified() {
    let config = Config::default().with_epsilon(1e-6);
    let g = barabasi_albert(400, 3, 14);
    let hub_set = select_hubs(&g, HubPolicy::ExpectedUtility, 40, 0);
    let (index, _) = build_index(&g, &hub_set, &config);
    let graph = Arc::new(g);
    let service = Arc::new(
        QueryService::new(
            Arc::clone(&graph),
            Arc::new(hub_set),
            Arc::new(index),
            config,
            ServiceOptions {
                workers: 2,
                queue_capacity: 64,
                cache_capacity: 0,
            },
        )
        .with_overload(OverloadOptions {
            degrade_in_flight: 2,
            shed_in_flight: 2,
            degraded_max_iterations: 1,
            ..OverloadOptions::default()
        }),
    );
    let server = serve(
        Arc::clone(&service),
        TcpListener::bind("127.0.0.1:0").unwrap(),
    )
    .unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();

    let probes: Vec<u32> = (0..10u32).map(|k| k * 37 % 400).collect();
    let exact: Vec<Vec<f64>> = probes
        .iter()
        .map(|&q| exact_ppv(&graph, q, ExactOptions::default()))
        .collect();

    let mut sheds = 0usize;
    let mut admitted = 0usize;
    let storm_over = AtomicBool::new(false);
    std::thread::scope(|scope| {
        // The pin thread keeps the pool parked above the shed watermark by
        // re-submitting time-limited batches until the probe side is done.
        let svc = Arc::clone(&service);
        let storm = &storm_over;
        scope.spawn(move || {
            while !storm.load(Ordering::Acquire) {
                svc.process_batch(pin_batch(8, Duration::from_millis(60)));
            }
        });
        let deadline = Instant::now() + Duration::from_secs(20);
        let want = rounds(6).max(3);
        let mut i = 0usize;
        while sheds < want && Instant::now() < deadline {
            // Only fire while the pin is visibly inside the service;
            // between pin batches a probe may be admitted — also checked.
            while service.load_stats().in_flight < 2 && Instant::now() < deadline {
                std::thread::yield_now();
            }
            let k = i % probes.len();
            i += 1;
            let r = client
                .request_one(WireRequest::iterations(probes[k], 3))
                .unwrap();
            if let Some(retry) = r.retry_after() {
                assert!(
                    retry > Duration::ZERO,
                    "a zero retry hint invites a retry storm"
                );
                sheds += 1;
            } else {
                let a = r.answer().expect("admitted request must answer");
                // Admitted under pressure — possibly degraded, still a
                // certificate: φ bounds the gap to the exact answer.
                let gap: f64 = graph
                    .nodes()
                    .map(|v| {
                        exact[k][v as usize]
                            - a.entries
                                .iter()
                                .find(|&&(e, _)| e == v)
                                .map_or(0.0, |&(_, s)| s)
                    })
                    .sum();
                assert!(
                    gap <= a.l1_error + 1e-9,
                    "admitted φ {} does not bound the true gap {gap}",
                    a.l1_error
                );
                admitted += 1;
            }
        }
        storm_over.store(true, Ordering::Release);
    });
    assert!(
        sheds >= 3,
        "the pinned service never shed ({sheds} sheds, {admitted} admitted)"
    );
    assert_eq!(service.load_stats().shed, sheds as u64);

    // Recovery: load drained, the same request is admitted undegraded.
    while service.load_stats().in_flight > 0 {
        std::thread::yield_now();
    }
    let r = client
        .request_one(WireRequest::iterations(probes[0], 3))
        .unwrap();
    let a = r.answer().expect("post-storm request must be admitted");
    assert!(!a.degraded, "regime must return to Normal once load drains");
    server.shutdown();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Certified degradation, property-checked: with the degrade watermark
    /// at 1 every query caps itself, and the returned φ must still bound
    /// the gap to an exact offline recompute — a degraded answer is a
    /// looser bound, never a wrong one.
    #[test]
    fn degraded_answers_keep_phi_a_true_bound(q in 0u32..200, eta in 2usize..6) {
        let (graph, service) = degraded_fixture();
        let r = service.query(Request::iterations(q, eta));
        prop_assert!(r.degraded, "η={eta} above the cap must be flagged");
        prop_assert!(r.iterations <= 1, "degraded cap is one increment");
        let exact = exact_ppv(graph, q, ExactOptions::default());
        let gap: f64 = graph.nodes().map(|v| exact[v as usize] - r.scores.get(v)).sum();
        prop_assert!(
            gap <= r.l1_error + 1e-9,
            "degraded φ {} does not bound the true gap {gap}", r.l1_error
        );
        prop_assert!(r.l1_error <= 1.0 + 1e-12);
    }

    /// Shed admission decisions carry exactly the configured (positive)
    /// retry hint, for any hint the options accept.
    #[test]
    fn shed_admissions_echo_the_configured_retry_hint(retry_ms in 1u64..120_000) {
        let (_graph, service) = fixture(
            150,
            12,
            16,
            ServiceOptions { workers: 1, queue_capacity: 16, cache_capacity: 0 },
        );
        // Rebuild with the case's overload policy.
        let service = Arc::try_unwrap(service)
            .unwrap_or_else(|_| panic!("sole owner"))
            .with_overload(OverloadOptions {
                degrade_in_flight: 1,
                shed_in_flight: 1,
                retry_after: Duration::from_millis(retry_ms),
                ..OverloadOptions::default()
            });
        let mut observed = None;
        let done = AtomicBool::new(false);
        std::thread::scope(|scope| {
            let svc = &service;
            let done_ref = &done;
            scope.spawn(move || {
                while !done_ref.load(Ordering::Acquire) {
                    svc.process_batch(pin_batch(4, Duration::from_millis(40)));
                }
            });
            let deadline = Instant::now() + Duration::from_secs(10);
            while observed.is_none() && Instant::now() < deadline {
                if service.load_stats().in_flight < 1 {
                    std::thread::yield_now();
                    continue;
                }
                if let Admission::Shed { retry_after } = service.admission() {
                    observed = Some(retry_after);
                }
            }
            done.store(true, Ordering::Release);
        });
        let retry = observed.expect("pinned service must shed");
        prop_assert!(retry > Duration::ZERO);
        prop_assert_eq!(retry, Duration::from_millis(retry_ms));
    }
}

/// Shared fixture for the degradation proptest: building the index per
/// case would dominate the suite.
fn degraded_fixture() -> &'static (Arc<Graph>, Arc<QueryService<MemoryIndex>>) {
    use std::sync::OnceLock;
    static FIXTURE: OnceLock<(Arc<Graph>, Arc<QueryService<MemoryIndex>>)> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let config = Config::default().with_epsilon(1e-6);
        let g = barabasi_albert(200, 3, 15);
        let hub_set = select_hubs(&g, HubPolicy::ExpectedUtility, 20, 0);
        let (index, _) = build_index(&g, &hub_set, &config);
        let graph = Arc::new(g);
        let service = Arc::new(
            QueryService::new(
                Arc::clone(&graph),
                Arc::new(hub_set),
                Arc::new(index),
                config,
                ServiceOptions {
                    workers: 1,
                    queue_capacity: 16,
                    cache_capacity: 0,
                },
            )
            .with_overload(OverloadOptions {
                degrade_in_flight: 1,
                shed_in_flight: 1000,
                degraded_max_iterations: 1,
                ..OverloadOptions::default()
            }),
        );
        (graph, service)
    })
}
