//! Multi-node queries (Linearity Theorem) and dynamic index maintenance,
//! exercised end-to-end on generated graphs.

use fastppv::baselines::exact::{exact_ppv, ExactOptions};
use fastppv::core::dynamic::refresh_index;
use fastppv::core::linearity::query_multi;
use fastppv::core::query::{QueryEngine, StoppingCondition};
use fastppv::core::{build_index_parallel, select_hubs, Config, HubPolicy};
use fastppv::graph::gen::{SocialNetwork, SocialParams};
use fastppv::graph::{Graph, GraphBuilder, NodeId};

fn dataset(seed: u64) -> Graph {
    SocialNetwork::generate(
        SocialParams {
            nodes: 1_200,
            ..Default::default()
        },
        seed,
    )
    .graph
}

#[test]
fn multi_node_query_matches_weighted_exact() {
    let g = dataset(1);
    let config = Config::default()
        .with_epsilon(1e-10)
        .with_delta(0.0)
        .with_clip(0.0);
    let hubs = select_hubs(&g, HubPolicy::ExpectedUtility, 120, 0);
    let (index, _) = build_index_parallel(&g, &hubs, &config, 2);
    let engine = QueryEngine::new(&g, &hubs, &index, config);
    let seeds = [(10u32, 1.0), (500, 2.0), (1100, 1.0)];
    let res = query_multi(&engine, &seeds, &StoppingCondition::l1_error(1e-7));
    let mut expected = vec![0.0; g.num_nodes()];
    for &(q, w) in &seeds {
        let e = exact_ppv(&g, q, ExactOptions::default());
        for (acc, x) in expected.iter_mut().zip(&e) {
            *acc += (w / 4.0) * x;
        }
    }
    for v in 0..g.num_nodes() as NodeId {
        assert!(
            (res.scores.get(v) - expected[v as usize]).abs() < 1e-5,
            "node {v}"
        );
    }
    assert!(res.l1_error < 1e-6);
}

#[test]
fn refresh_after_insertions_matches_rebuild_and_serves_queries() {
    let g = dataset(2);
    let config = Config::default().with_epsilon(1e-6);
    let hubs = select_hubs(&g, HubPolicy::ExpectedUtility, 120, 0);
    let (index, _) = build_index_parallel(&g, &hubs, &config, 2);

    // Insert three edges from non-hub tails.
    let tails: Vec<NodeId> = (0..1200u32).filter(|&v| !hubs.is_hub(v)).take(3).collect();
    let new_edges: Vec<(NodeId, NodeId)> = tails.iter().map(|&u| (u, (u + 601) % 1200)).collect();
    let mut b = GraphBuilder::new(1200);
    for (u, v) in g.edges() {
        if u == v && tails.contains(&u) {
            continue; // drop dangling-fix self-loop when a real edge arrives
        }
        b.add_edge(u, v);
    }
    for &(u, v) in &new_edges {
        b.add_edge(u, v);
    }
    let g2 = b.build();

    let (refreshed, stats) = refresh_index(&index, &g, &g2, &hubs, &tails, &config);
    let (rebuilt, _) = build_index_parallel(&g2, &hubs, &config, 2);
    assert!(stats.recomputed + stats.reused == hubs.len());
    for &h in hubs.ids() {
        assert_eq!(
            refreshed.get(h).unwrap().entries,
            rebuilt.get(h).unwrap().entries,
            "hub {h}"
        );
    }

    // Queries over the refreshed index match queries over the rebuilt one.
    let stop = StoppingCondition::iterations(2);
    let e1 = QueryEngine::new(&g2, &hubs, &refreshed, config);
    let e2 = QueryEngine::new(&g2, &hubs, &rebuilt, config);
    for &q in &[tails[0], 7, 900] {
        assert_eq!(e1.query(q, &stop).scores, e2.query(q, &stop).scores);
    }
}

#[test]
fn refresh_with_no_changes_reuses_everything() {
    let g = dataset(3);
    let config = Config::default();
    let hubs = select_hubs(&g, HubPolicy::ExpectedUtility, 60, 0);
    let (index, _) = build_index_parallel(&g, &hubs, &config, 2);
    let (refreshed, stats) = refresh_index(&index, &g, &g, &hubs, &[], &config);
    assert_eq!(stats.recomputed, 0);
    assert_eq!(stats.reused, hubs.len());
    for &h in hubs.ids() {
        assert_eq!(
            refreshed.get(h).unwrap().entries,
            index.get(h).unwrap().entries
        );
    }
}
