//! End-to-end integration: offline precomputation → online queries →
//! accuracy against exact ground truth, across both generated datasets and
//! both index backends.

use fastppv::baselines::exact::{exact_ppv, ExactOptions};
use fastppv::core::index::{DiskIndex, PpvStore};
use fastppv::core::query::{QueryEngine, StoppingCondition};
use fastppv::core::{build_index_parallel, select_hubs, Config, HubPolicy};
use fastppv::graph::gen::{BibNetwork, DblpParams, SocialNetwork, SocialParams};
use fastppv::graph::Graph;
use fastppv::metrics::AccuracyReport;

fn temp_path(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!(
        "fastppv-e2e-{}-{}-{name}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos()
    ));
    p
}

fn check_dataset(graph: &Graph, hub_count: usize, queries: &[u32]) {
    // Small test graphs spread hub mass thinly; scale δ down accordingly
    // (the paper's δ = 0.005 targets million-node graphs).
    let config = Config::default().with_epsilon(1e-6).with_delta(1e-4);
    let hubs = select_hubs(graph, HubPolicy::ExpectedUtility, hub_count, 0);
    let (index, stats) = build_index_parallel(graph, &hubs, &config, 4);
    assert_eq!(stats.hubs, hubs.len());
    let engine = QueryEngine::new(graph, &hubs, &index, config);
    let mut reports = Vec::new();
    for &q in queries {
        let exact = exact_ppv(graph, q, ExactOptions::default());
        let result = engine.query(q, &StoppingCondition::iterations(3));
        // The reported φ upper-bounds the true full-vector gap.
        let true_gap = result.scores.l1_distance_dense(&exact);
        assert!(
            result.l1_error >= true_gap - 1e-6,
            "q {q}: φ {} < true gap {true_gap}",
            result.l1_error
        );
        reports.push(AccuracyReport::compute(&exact, &result.scores, 10));
    }
    let mean = AccuracyReport::mean(&reports);
    // Sanity thresholds for tiny test graphs (top-10 is dominated by
    // near-ties at this scale); paper-level accuracy is measured by the
    // bench harness at real scale.
    assert!(mean.precision > 0.55, "precision {mean:?}");
    assert!(mean.rag > 0.93, "rag {mean:?}");
    assert!(mean.l1_similarity > 0.9, "l1 {mean:?}");
}

#[test]
fn dblp_like_end_to_end() {
    let net = BibNetwork::generate(
        DblpParams {
            papers: 3_000,
            venues: 30,
            ..Default::default()
        },
        1,
    );
    let n = net.graph.num_nodes();
    check_dataset(
        &net.graph,
        n / 25,
        &[5, 500, 2222, 4000u32.min(n as u32 - 1)],
    );
}

#[test]
fn social_like_end_to_end() {
    let net = SocialNetwork::generate(
        SocialParams {
            nodes: 4_000,
            ..Default::default()
        },
        2,
    );
    check_dataset(&net.graph, 500, &[1, 123, 3999]);
}

#[test]
fn disk_index_serves_identical_results() {
    let net = SocialNetwork::generate(
        SocialParams {
            nodes: 2_000,
            ..Default::default()
        },
        3,
    );
    let graph = &net.graph;
    let config = Config::default().with_epsilon(1e-6);
    let hubs = select_hubs(graph, HubPolicy::ExpectedUtility, 200, 0);
    let (mem_index, _) = build_index_parallel(graph, &hubs, &config, 2);
    let path = temp_path("index.fppv");
    mem_index.write_to_file(&path).unwrap();
    let disk_index = DiskIndex::open(&path, 16).unwrap();
    assert_eq!(disk_index.hub_count(), mem_index.hub_count());
    assert_eq!(disk_index.total_entries(), mem_index.total_entries());

    let stop = StoppingCondition::iterations(2);
    let mem_engine = QueryEngine::new(graph, &hubs, &mem_index, config);
    let disk_engine = QueryEngine::new(graph, &hubs, &disk_index, config);
    for q in [0u32, 77, 1500, 1999] {
        let a = mem_engine.query(q, &stop);
        let b = disk_engine.query(q, &stop);
        assert_eq!(a.iterations, b.iterations, "q {q}");
        // Scores agree to f32 storage precision.
        assert!(
            (a.l1_error - b.l1_error).abs() < 1e-4,
            "q {q}: {} vs {}",
            a.l1_error,
            b.l1_error
        );
        for (&(va, sa), &(vb, sb)) in a.scores.entries().iter().zip(b.scores.entries()) {
            assert_eq!(va, vb);
            assert!((sa - sb).abs() < 1e-4);
        }
    }
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn hub_queries_and_non_hub_queries_both_work() {
    let net = SocialNetwork::generate(
        SocialParams {
            nodes: 1_500,
            ..Default::default()
        },
        4,
    );
    let graph = &net.graph;
    let config = Config::default().with_epsilon(1e-7).with_delta(1e-4);
    let hubs = select_hubs(graph, HubPolicy::ExpectedUtility, 150, 0);
    let (index, _) = build_index_parallel(graph, &hubs, &config, 2);
    let engine = QueryEngine::new(graph, &hubs, &index, config);
    let hub_q = hubs.ids()[0];
    let non_hub_q = (0..1500u32).find(|&v| !hubs.is_hub(v)).unwrap();
    for q in [hub_q, non_hub_q] {
        let exact = exact_ppv(graph, q, ExactOptions::default());
        let r = engine.query(q, &StoppingCondition::iterations(4));
        let report = AccuracyReport::compute(&exact, &r.scores, 10);
        assert!(report.precision >= 0.4, "q {q}: {report:?}");
        assert!(report.rag >= 0.85, "q {q}: {report:?}");
    }
}

#[test]
fn multi_seed_determinism() {
    // The whole pipeline is deterministic for a fixed seed.
    let make = || {
        let net = SocialNetwork::generate(
            SocialParams {
                nodes: 1_000,
                ..Default::default()
            },
            5,
        );
        let config = Config::default();
        let hubs = select_hubs(&net.graph, HubPolicy::ExpectedUtility, 100, 0);
        let (index, _) = build_index_parallel(&net.graph, &hubs, &config, 3);
        let engine = QueryEngine::new(&net.graph, &hubs, &index, config);
        engine.query(42, &StoppingCondition::iterations(2)).scores
    };
    assert_eq!(make(), make());
}
