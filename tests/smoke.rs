//! Smoke test of the README / `examples/quickstart.rs` path: generate a
//! graph, build an index offline, query online, tighten accuracy. The
//! examples themselves are compiled by `cargo build --examples` in CI; this
//! runs the same library calls at a debug-friendly scale so a broken
//! quickstart fails `cargo test` too.

use fastppv::core::query::StoppingCondition;
use fastppv::core::{build_index_parallel, select_hubs, Config, HubPolicy, QueryEngine};
use fastppv::graph::gen::barabasi_albert;

#[test]
fn quickstart_path_runs_to_completion() {
    let graph = barabasi_albert(2_000, 4, 42);
    assert_eq!(graph.num_nodes(), 2_000);
    assert!(graph.num_edges() > 0);

    let config = Config::default().with_epsilon(1e-5).with_delta(5e-4);
    let hubs = select_hubs(&graph, HubPolicy::ExpectedUtility, 100, 0);
    let (index, stats) = build_index_parallel(&graph, &hubs, &config, 4);
    assert_eq!(stats.hubs, 100);
    assert!(stats.total_entries > 0);
    assert!(stats.storage_bytes > 0);

    let engine = QueryEngine::new(&graph, &hubs, &index, config);
    let query = 1_234;
    let result = engine.query(query, &StoppingCondition::iterations(2));
    assert!(result.iterations <= 2);
    assert!(
        result.l1_error > 0.0 && result.l1_error < 1.0,
        "φ = {}",
        result.l1_error
    );
    let top = result.top_k(10);
    assert_eq!(top.len(), 10);
    assert!(
        top.windows(2).all(|w| w[0].1 >= w[1].1),
        "top-k must be sorted by score"
    );

    // Accuracy-targeted query: φ is known at query time (Eq. 6), so the
    // stopping condition can promise an error bound without ground truth.
    // The δ/clip truncation of the fast config above floors φ, so the
    // guaranteed-accuracy path indexes with truncation off (as in the
    // quickstart's step 4).
    let accurate = Config::default()
        .with_epsilon(1e-7)
        .with_delta(0.0)
        .with_clip(0.0);
    let (index, _) = build_index_parallel(&graph, &hubs, &accurate, 4);
    let engine = QueryEngine::new(&graph, &hubs, &index, accurate);
    let precise = engine.query(query, &StoppingCondition::l1_error(0.01));
    assert!(
        precise.l1_error <= 0.01 + 1e-12,
        "requested φ ≤ 0.01, got {}",
        precise.l1_error
    );
    assert!(precise.iterations >= result.iterations);
}
