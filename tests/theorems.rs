//! The paper's formal claims, checked on random graphs (the unit tests
//! cover the toy example; here the same statements are exercised across
//! sizes, seeds and hub fractions).

use fastppv::baselines::exact::{exact_ppv, ExactOptions};
use fastppv::baselines::naive::partition_by_hub_length_with_pruned;
use fastppv::core::error::l1_error_bound;
use fastppv::core::query::{QueryEngine, StoppingCondition};
use fastppv::core::{build_index_parallel, select_hubs, Config, HubPolicy};
use fastppv::graph::gen::{barabasi_albert, erdos_renyi};

/// Untruncated configuration: Theorems 1/2 and Eq. 6 hold exactly.
fn exact_config() -> Config {
    Config::default()
        .with_epsilon(1e-12)
        .with_delta(0.0)
        .with_clip(0.0)
}

#[test]
fn theorem_1_monotone_convergence_to_exact() {
    for seed in [1u64, 2, 3] {
        let g = barabasi_albert(250, 3, seed);
        let config = exact_config();
        let hubs = select_hubs(&g, HubPolicy::ExpectedUtility, 25, 0);
        let (index, _) = build_index_parallel(&g, &hubs, &config, 2);
        let engine = QueryEngine::new(&g, &hubs, &index, config);
        let q = (seed * 37 % 250) as u32;
        let exact = exact_ppv(&g, q, ExactOptions::default());
        let mut session = engine.session(q);
        let mut prev_scores = session.estimate().clone();
        for _ in 0..30 {
            // Estimates never exceed the exact PPV (they sum tour subsets).
            for &(v, s) in session.estimate().entries() {
                assert!(s <= exact[v as usize] + 1e-9, "seed {seed} node {v}");
            }
            if !session.step() {
                break;
            }
            for &(v, s) in prev_scores.entries() {
                assert!(
                    session.estimate().get(v) >= s - 1e-12,
                    "monotonicity broken at node {v}"
                );
            }
            prev_scores = session.estimate().clone();
        }
        // After enough iterations the estimate matches the exact PPV
        // (φ decays geometrically; 30 iterations reach ~1e-6).
        assert!(
            session.l1_error() < 1e-5,
            "seed {seed}: {}",
            session.l1_error()
        );
    }
}

#[test]
fn theorem_2_bound_holds_across_graph_families() {
    for (name, g) in [
        ("ba", barabasi_albert(300, 3, 7)),
        ("er", erdos_renyi(300, 1500, 7)),
    ] {
        let config = exact_config();
        let hubs = select_hubs(&g, HubPolicy::ExpectedUtility, 30, 0);
        let (index, _) = build_index_parallel(&g, &hubs, &config, 2);
        let engine = QueryEngine::new(&g, &hubs, &index, config);
        for q in [0u32, 111, 299] {
            let mut session = engine.session(q);
            for k in 0..8 {
                assert!(
                    session.l1_error() <= l1_error_bound(0.15, k) + 1e-9,
                    "{name} q {q} k {k}"
                );
                if !session.step() {
                    break;
                }
            }
        }
    }
}

#[test]
fn eq_6_reported_error_equals_true_gap() {
    let g = barabasi_albert(200, 3, 11);
    let config = exact_config();
    let hubs = select_hubs(&g, HubPolicy::PageRank, 20, 0);
    let (index, _) = build_index_parallel(&g, &hubs, &config, 2);
    let engine = QueryEngine::new(&g, &hubs, &index, config);
    for q in [3u32, 50, 170] {
        let exact = exact_ppv(&g, q, ExactOptions::default());
        let mut session = engine.session(q);
        for _ in 0..5 {
            let reported = session.l1_error();
            let true_gap = session.estimate().l1_distance_dense(&exact);
            assert!(
                (reported - true_gap).abs() < 1e-6,
                "q {q}: reported {reported} true {true_gap}"
            );
            if !session.step() {
                break;
            }
        }
    }
}

#[test]
fn increments_equal_naive_partitions_on_random_graphs() {
    // Theorem 3/4 (tour assembly): per-iteration increments must equal the
    // hub-length tour partitions — checked against literal enumeration.
    for seed in [5u64, 6] {
        let g = erdos_renyi(40, 120, seed);
        let config = exact_config();
        let hubs = select_hubs(&g, HubPolicy::OutDegree, 6, 0);
        let (index, _) = build_index_parallel(&g, &hubs, &config, 1);
        let (parts, pruned) = partition_by_hub_length_with_pruned(&g, 0, hubs.mask(), 0.15, 1e-9);
        let engine = QueryEngine::new(&g, &hubs, &index, config);
        let result = engine.query(0, &StoppingCondition::iterations(4));
        // The naive side prunes whole tour subtrees once their walk
        // probability drops below the threshold, so each of its partitions
        // is missing some mass — but a computable amount: a subtree pruned
        // at hub length l only loses tours of hub length ≥ l, so partition
        // L is short by at most Σ_{l ≤ L} pruned[l].
        let total_pruned: f64 = pruned.iter().sum();
        assert!(
            (0.0..0.1).contains(&total_pruned),
            "seed {seed}: pruned mass {total_pruned} leaves no test signal"
        );
        // Sanity-tie the per-level bookkeeping to the exact PPV: the true
        // missing mass never exceeds the accumulated per-level bounds.
        let exact = exact_ppv(&g, 0, ExactOptions::default());
        let enumerated: f64 = parts.iter().map(|p| p.iter().sum::<f64>()).sum();
        let true_missing = exact.iter().sum::<f64>() - enumerated;
        assert!(
            (-1e-9..=total_pruned + 1e-9).contains(&true_missing),
            "seed {seed}: missing {true_missing} vs pruned bound {total_pruned}"
        );
        let mut budget = 0.0; // Σ_{l ≤ L} pruned[l], grown level by level
        for stat in &result.iteration_stats {
            budget += pruned.get(stat.iteration).copied().unwrap_or(0.0);
            let expected: f64 = parts
                .get(stat.iteration)
                .map(|p| p.iter().sum())
                .unwrap_or(0.0);
            let gap = stat.increment_mass - expected;
            // The engine's increment can only exceed the pruned naive
            // partition (up to its own ε=1e-12 truncation), and never by
            // more than the pruned mass attributable to levels ≤ this one.
            assert!(
                (-1e-6..=budget + 1e-9).contains(&gap),
                "seed {seed} level {}: {} vs {expected} (budget {budget:.3e})",
                stat.iteration,
                stat.increment_mass
            );
        }
    }
}

#[test]
fn truncated_configs_stay_conservative() {
    // With ε/δ/clip truncation the estimate remains an underestimate and φ
    // remains a valid upper bound on the true L1 gap.
    let g = barabasi_albert(300, 3, 13);
    let config = Config::default(); // paper defaults, truncation on
    let hubs = select_hubs(&g, HubPolicy::ExpectedUtility, 30, 0);
    let (index, _) = build_index_parallel(&g, &hubs, &config, 2);
    let engine = QueryEngine::new(&g, &hubs, &index, config);
    for q in [10u32, 150] {
        let exact = exact_ppv(&g, q, ExactOptions::default());
        let r = engine.query(q, &StoppingCondition::iterations(3));
        for &(v, s) in r.scores.entries() {
            assert!(s <= exact[v as usize] + 1e-9);
        }
        let true_gap = r.scores.l1_distance_dense(&exact);
        assert!(r.l1_error >= true_gap - 1e-9);
    }
}
