//! Property-based tests (proptest) over the core data structures and the
//! full pipeline on small random graphs.

use fastppv::baselines::exact::{exact_ppv, ExactOptions};
use fastppv::core::error::l1_error_bound;
use fastppv::core::index::{DiskIndex, MemoryIndex, PpvStore, PrimePpv};
use fastppv::core::query::{QueryEngine, StoppingCondition};
use fastppv::core::{build_index_parallel, Config, HubSet};
use fastppv::graph::builder::from_edges;
use fastppv::graph::{NodeId, SparseVector};
use fastppv::metrics::{kendall_tau, precision_at_k, rag, AccuracyReport};
use proptest::prelude::*;

/// Strategy: a small random directed graph as (n, edge list).
fn small_graph() -> impl Strategy<Value = (usize, Vec<(NodeId, NodeId)>)> {
    (4usize..20).prop_flat_map(|n| {
        let edges = prop::collection::vec((0..n as NodeId, 0..n as NodeId), 1..60);
        (Just(n), edges)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn sparse_vector_axpy_matches_dense((xs, ys, coeff) in (
        prop::collection::vec((0u32..50, -10.0..10.0f64), 0..30),
        prop::collection::vec((0u32..50, -10.0..10.0f64), 0..30),
        -4.0..4.0f64,
    )) {
        let a = SparseVector::from_unsorted(xs.clone());
        let b = SparseVector::from_unsorted(ys.clone());
        let mut c = a.clone();
        c.axpy(coeff, &b);
        for v in 0..50u32 {
            let expected = a.get(v) + coeff * b.get(v);
            prop_assert!((c.get(v) - expected).abs() < 1e-9);
        }
        // Entries stay strictly sorted.
        prop_assert!(c.entries().windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn fastppv_converges_to_exact_on_random_graphs(
        (n, edges) in small_graph(),
        hub_bits in prop::collection::vec(any::<bool>(), 20),
    ) {
        let g = from_edges(n, &edges);
        let hub_ids: Vec<NodeId> = (0..n as NodeId)
            .filter(|&v| hub_bits.get(v as usize).copied().unwrap_or(false))
            .collect();
        let hubs = HubSet::from_ids(n, hub_ids);
        let config = Config::exhaustive();
        let (index, _) = build_index_parallel(&g, &hubs, &config, 1);
        let engine = QueryEngine::new(&g, &hubs, &index, config);
        let q = (edges[0].0 as usize % n) as NodeId;
        let exact = exact_ppv(&g, q, ExactOptions::default());
        let result = engine.query(q, &StoppingCondition::l1_error(1e-8));
        for v in 0..n as NodeId {
            prop_assert!(
                (result.scores.get(v) - exact[v as usize]).abs() < 1e-5,
                "node {} of {}: {} vs {}", v, n, result.scores.get(v), exact[v as usize]
            );
        }
    }

    #[test]
    fn index_codec_round_trips(
        hubs in prop::collection::btree_map(0u32..500, prop::collection::vec(
            (0u32..1000, 1e-6..1.0f64), 0..40), 1..10),
    ) {
        let mut index = MemoryIndex::new(500);
        for (&h, entries) in &hubs {
            index.insert(h, PrimePpv {
                entries: SparseVector::from_unsorted(entries.clone()),
            });
        }
        let mut path = std::env::temp_dir();
        path.push(format!(
            "fastppv-prop-{}-{}.idx",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        index.write_to_file(&path).unwrap();
        let disk = DiskIndex::open(&path, 4).unwrap();
        prop_assert_eq!(disk.hub_count(), index.hub_count());
        for &h in hubs.keys() {
            let a = index.get(h).unwrap();
            let b = disk.get(h).unwrap();
            prop_assert_eq!(a.len(), b.len());
            for (&(va, sa), &(vb, sb)) in
                a.entries.entries().iter().zip(b.entries.entries())
            {
                prop_assert_eq!(va, vb);
                prop_assert!((sa - sb).abs() <= sa.abs() * 1e-6 + 1e-9);
            }
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn metric_invariants(
        exact in prop::collection::vec(0.0..1.0f64, 5..40),
        approx_entries in prop::collection::vec((0u32..40, 0.0..1.0f64), 1..30),
        k in 1usize..12,
    ) {
        let approx = SparseVector::from_unsorted(
            approx_entries.into_iter()
                .filter(|&(v, _)| (v as usize) < 5.max(exact.len()))
                .filter(|&(v, _)| (v as usize) < exact.len())
                .collect(),
        );
        let tau = kendall_tau(&exact, &approx, k);
        prop_assert!((-1.0..=1.0).contains(&tau), "tau {}", tau);
        let p = precision_at_k(&exact, &approx, k);
        prop_assert!((0.0..=1.0).contains(&p));
        let r = rag(&exact, &approx, k);
        prop_assert!((0.0..=1.0 + 1e-9).contains(&r), "rag {}", r);
        // Self-comparison is perfect.
        let self_sparse = SparseVector::from_sorted(
            exact.iter().enumerate()
                .filter(|&(_, &s)| s > 0.0)
                .map(|(i, &s)| (i as u32, s)).collect(),
        );
        let report = AccuracyReport::compute(&exact, &self_sparse, k);
        prop_assert!(report.kendall > 0.999);
        prop_assert!(report.precision > 0.999);
        prop_assert!((report.rag - 1.0).abs() < 1e-9);
    }

    #[test]
    fn estimates_sum_below_one(
        (n, edges) in small_graph(),
    ) {
        // No PPV estimate may ever exceed total probability 1.
        let g = from_edges(n, &edges);
        let hubs = HubSet::from_ids(n, vec![1.min(n as u32 - 1)]);
        let config = Config::default();
        let (index, _) = build_index_parallel(&g, &hubs, &config, 1);
        let engine = QueryEngine::new(&g, &hubs, &index, config);
        for q in 0..(n as NodeId).min(4) {
            let r = engine.query(q, &StoppingCondition::iterations(5));
            prop_assert!(r.scores.l1_norm() <= 1.0 + 1e-9);
        }
    }
}

// The Theorem 2 claims (φ is a true upper bound on the L1 gap, and with
// truncation off φ(k) ≤ (1-α)^{k+2}) are the accuracy contract the whole
// scheduled-approximation design rests on, so they get a deeper sweep than
// the structural properties above.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn phi_is_always_a_valid_upper_bound(
        (n, edges) in small_graph(),
        eta in 0usize..4,
    ) {
        let g = from_edges(n, &edges);
        let hubs = HubSet::from_ids(n, vec![0, (n as NodeId) / 2]);
        let config = Config::default(); // truncation on
        let (index, _) = build_index_parallel(&g, &hubs, &config, 1);
        let engine = QueryEngine::new(&g, &hubs, &index, config);
        let q = (n as NodeId) - 1;
        let exact = exact_ppv(&g, q, ExactOptions::default());
        let result = engine.query(q, &StoppingCondition::iterations(eta));
        let true_gap = result.scores.l1_distance_dense(&exact);
        prop_assert!(result.l1_error >= true_gap - 1e-6);
    }

    #[test]
    fn theorem_2_bound_with_truncation_off(
        (n, edges) in small_graph(),
        hub_bits in prop::collection::vec(any::<bool>(), 20),
    ) {
        // Theorem 2: with truncation off, φ(k) ≤ (1-α)^{k+2} for every
        // query, hub set, and graph — each iteration k covers the tour
        // partition T^k in full, and the uncovered tail decays
        // geometrically.
        let g = from_edges(n, &edges);
        let hub_ids: Vec<NodeId> = (0..n as NodeId)
            .filter(|&v| hub_bits.get(v as usize).copied().unwrap_or(false))
            .collect();
        let hubs = HubSet::from_ids(n, hub_ids);
        let config = Config::exhaustive();
        let alpha = config.alpha;
        let (index, _) = build_index_parallel(&g, &hubs, &config, 1);
        let engine = QueryEngine::new(&g, &hubs, &index, config);
        let q = (edges[0].1 as usize % n) as NodeId;
        let mut session = engine.session(q);
        for k in 0..6usize {
            prop_assert!(
                session.l1_error() <= l1_error_bound(alpha, k) + 1e-9,
                "k {}: φ {} > bound {}",
                k,
                session.l1_error(),
                l1_error_bound(alpha, k)
            );
            if !session.step() {
                break;
            }
        }
    }
}
