//! Baseline integration: the three methods agree with ground truth at their
//! respective accuracy knobs, on the generated evaluation datasets.

use fastppv::baselines::exact::{exact_ppv, ExactOptions};
use fastppv::baselines::hubrank::{
    build_hubrank_index, hubrank_query, select_hubs_by_benefit, HubRankOptions,
};
use fastppv::baselines::montecarlo::{
    build_fingerprint_index, montecarlo_query, MonteCarloOptions,
};
use fastppv::graph::gen::{SocialNetwork, SocialParams};
use fastppv::graph::{pagerank, PageRankOptions, ScoreScratch};
use fastppv::metrics::AccuracyReport;

fn dataset() -> fastppv::graph::Graph {
    SocialNetwork::generate(
        SocialParams {
            nodes: 2_500,
            ..Default::default()
        },
        8,
    )
    .graph
}

#[test]
fn hubrank_accuracy_improves_with_tighter_push() {
    let g = dataset();
    let pr = pagerank(&g, PageRankOptions::default());
    let hubs = select_hubs_by_benefit(250, &pr);
    let index = build_hubrank_index(
        &g,
        &hubs,
        HubRankOptions {
            offline_residual: 1e-3,
            ..Default::default()
        },
    );
    let queries = [13u32, 444, 2100];
    let gap = |push: f64| -> f64 {
        let mut total = 0.0;
        for &q in &queries {
            let exact = exact_ppv(&g, q, ExactOptions::default());
            let r = hubrank_query(&g, &index, q, push, 0.15);
            total += r.estimate.l1_distance_dense(&exact);
        }
        total / queries.len() as f64
    };
    let loose = gap(0.2);
    let tight = gap(0.01);
    assert!(tight < loose, "tight {tight} loose {loose}");
    assert!(tight < 0.1, "tight {tight}");
}

#[test]
fn montecarlo_error_shrinks_with_samples() {
    let g = dataset();
    let mut scratch = ScoreScratch::new(g.num_nodes());
    let opts = MonteCarloOptions::default();
    let q = 99;
    let exact = exact_ppv(&g, q, ExactOptions::default());
    let mut gap = |n: usize| {
        montecarlo_query(&g, None, q, n, opts, &mut scratch)
            .estimate
            .l1_distance_dense(&exact)
    };
    let small = gap(500);
    let large = gap(50_000);
    assert!(large < small, "large {large} small {small}");
}

#[test]
fn all_methods_rank_the_top_nodes_correctly() {
    let g = dataset();
    let pr = pagerank(&g, PageRankOptions::default());
    let hubs = select_hubs_by_benefit(250, &pr);
    let hr_index = build_hubrank_index(
        &g,
        &hubs,
        HubRankOptions {
            offline_residual: 1e-3,
            ..Default::default()
        },
    );
    let mc_index = build_fingerprint_index(
        &g,
        &hubs,
        MonteCarloOptions {
            fingerprints_per_hub: 4_000,
            ..Default::default()
        },
    );
    let mut scratch = ScoreScratch::new(g.num_nodes());
    for q in [55u32, 1300] {
        let exact = exact_ppv(&g, q, ExactOptions::default());
        let hr = hubrank_query(&g, &hr_index, q, 0.05, 0.15);
        let hr_report = AccuracyReport::compute(&exact, &hr.estimate, 10);
        assert!(hr_report.precision >= 0.7, "hubrank q {q}: {hr_report:?}");
        let mc = montecarlo_query(
            &g,
            Some(&mc_index),
            q,
            20_000,
            MonteCarloOptions::default(),
            &mut scratch,
        );
        let mc_report = AccuracyReport::compute(&exact, &mc.estimate, 10);
        assert!(mc_report.precision >= 0.6, "mc q {q}: {mc_report:?}");
        assert!(mc_report.rag >= 0.9, "mc q {q}: {mc_report:?}");
    }
}

#[test]
fn fingerprint_reuse_does_not_bias_the_estimate() {
    // With and without hub reuse, the MC estimate converges to the same
    // distribution (reuse trades variance structure for speed, not bias).
    let g = dataset();
    let pr = pagerank(&g, PageRankOptions::default());
    let hubs = select_hubs_by_benefit(100, &pr);
    let index = build_fingerprint_index(
        &g,
        &hubs,
        MonteCarloOptions {
            fingerprints_per_hub: 30_000,
            ..Default::default()
        },
    );
    let mut scratch = ScoreScratch::new(g.num_nodes());
    let q = 321;
    let exact = exact_ppv(&g, q, ExactOptions::default());
    let with_reuse = montecarlo_query(
        &g,
        Some(&index),
        q,
        60_000,
        MonteCarloOptions::default(),
        &mut scratch,
    );
    let gap = with_reuse.estimate.l1_distance_dense(&exact);
    assert!(gap < 0.15, "gap {gap}");
    assert!(with_reuse.hub_hits > 0 || !with_reuse.estimate.is_empty());
}
