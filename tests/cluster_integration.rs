//! Disk-based pipeline integration: clustering → cluster store → fault-
//! counted queries, compared against the in-memory engine — plus the
//! scatter/gather router's exactness oracle: the same index sliced
//! across shards and merged by `fastppv::router` must reproduce the
//! single-process answer to ≤ 1e-12 for every stopping condition.

use std::sync::Arc;

use fastppv::cluster::partition::{cluster_graph, ClusteringOptions};
use fastppv::cluster::query::{disk_query, DiskQueryWorkspace};
use fastppv::cluster::store::{write_clustered_graph, DiskGraph};
use fastppv::cluster::{slice_store, ShardMap};
use fastppv::core::index::DiskIndex;
use fastppv::core::query::{QueryEngine, StoppingCondition};
use fastppv::core::{build_index_parallel, select_hubs, Config, HubPolicy, MemoryIndex};
use fastppv::graph::gen::{BibNetwork, DblpParams};
use fastppv::graph::vec::ScoreScratch;
use fastppv::graph::Graph;
use fastppv::router::{merge_query, LocalBackend, RouterConfig};
use fastppv::server::{QueryService, ServiceOptions};

fn temp_path(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!(
        "fastppv-clint-{}-{}-{name}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos()
    ));
    p
}

#[test]
fn fully_disk_resident_pipeline_matches_memory() {
    let net = BibNetwork::generate(
        DblpParams {
            papers: 1_500,
            venues: 20,
            ..Default::default()
        },
        6,
    );
    let graph = &net.graph;
    let n = graph.num_nodes();
    let config = Config::default().with_epsilon(1e-6).with_clip(0.0);
    let hubs = select_hubs(graph, HubPolicy::ExpectedUtility, n / 25, 0);
    let (index, _) = build_index_parallel(graph, &hubs, &config, 2);

    // Graph and PPV index both on disk.
    let clg = temp_path("graph.clg");
    let idx = temp_path("index.fppv");
    let clustering = cluster_graph(graph, 12, ClusteringOptions::default());
    write_clustered_graph(graph, &clustering, &clg).unwrap();
    index.write_to_file(&idx).unwrap();

    let mut disk = DiskGraph::open(&clg, 1).unwrap();
    let disk_index = DiskIndex::open(&idx, 32).unwrap();
    let mut ws = DiskQueryWorkspace::new(n);
    let mem_engine = QueryEngine::new(graph, &hubs, &index, config);
    let stop = StoppingCondition::iterations(2);

    let queries: Vec<u32> = (0..n as u32)
        .filter(|&v| !hubs.is_hub(v))
        .step_by(n / 5)
        .take(4)
        .collect();
    for &q in &queries {
        let mem = mem_engine.query(q, &stop);
        let dsk = disk_query(
            &mut disk,
            &hubs,
            &disk_index,
            &config,
            q,
            &stop,
            None,
            &mut ws,
        );
        // f32 index storage rounds scores; structure must be identical.
        assert_eq!(mem.scores.len(), dsk.result.scores.len(), "q {q}");
        for (&(va, sa), &(vb, sb)) in mem.scores.entries().iter().zip(dsk.result.scores.entries()) {
            assert_eq!(va, vb, "q {q}");
            assert!((sa - sb).abs() < 1e-4, "q {q} node {va}: {sa} vs {sb}");
        }
    }
    std::fs::remove_file(&clg).unwrap();
    std::fs::remove_file(&idx).unwrap();
}

#[test]
fn fault_cap_bounds_io_and_keeps_phi_sound() {
    let net = BibNetwork::generate(
        DblpParams {
            papers: 1_000,
            venues: 15,
            ..Default::default()
        },
        7,
    );
    let graph = &net.graph;
    let n = graph.num_nodes();
    let config = Config::default().with_epsilon(1e-7);
    // Few hubs -> large prime subgraphs -> many cluster touches.
    let hubs = select_hubs(graph, HubPolicy::ExpectedUtility, 10, 0);
    let (index, _) = build_index_parallel(graph, &hubs, &config, 2);
    let clg = temp_path("capped.clg");
    let clustering = cluster_graph(graph, 20, ClusteringOptions::default());
    write_clustered_graph(graph, &clustering, &clg).unwrap();
    let mut disk = DiskGraph::open(&clg, 1).unwrap();
    let mut ws = DiskQueryWorkspace::new(n);
    let q = (0..n as u32).find(|&v| !hubs.is_hub(v)).unwrap();
    let stop = StoppingCondition::iterations(1);

    let mut last_faults = u64::MAX;
    for cap in [20u64, 5, 1] {
        let res = disk_query(
            &mut disk,
            &hubs,
            &index,
            &config,
            q,
            &stop,
            Some(cap),
            &mut ws,
        );
        assert!(res.faults <= cap, "cap {cap}: faults {}", res.faults);
        assert!(res.faults <= last_faults);
        last_faults = res.faults;
        // φ stays in [0, 1]: truncation only increases reported error.
        assert!(res.result.l1_error >= 0.0 && res.result.l1_error <= 1.0);
    }
    std::fs::remove_file(&clg).unwrap();
}

/// Slices `index` across `num_shards` in-process shard services by a
/// clustering-derived ownership map and returns the backend + map. Each
/// shard holds only its owned hubs' prime PPVs but the full graph and
/// hub set (prime-PPV decomposition must block at every hub).
fn sharded_backend(
    graph: &Arc<Graph>,
    hubs: &Arc<fastppv::core::HubSet>,
    index: &MemoryIndex,
    config: Config,
    num_shards: u32,
) -> (LocalBackend<MemoryIndex>, ShardMap) {
    let clustering = cluster_graph(graph, 10, ClusteringOptions::default());
    let map = ShardMap::from_clustering(&clustering, num_shards);
    let services: Vec<_> = (0..num_shards)
        .map(|s| {
            let slice = slice_store(index, hubs, &map, s);
            Arc::new(QueryService::new(
                Arc::clone(graph),
                Arc::clone(hubs),
                Arc::new(slice),
                config,
                ServiceOptions {
                    workers: 2,
                    ..ServiceOptions::default()
                },
            ))
        })
        .collect();
    (LocalBackend::new(services), map)
}

/// The router's exactness oracle: scattering an index across shards and
/// merging must reproduce the single-process engine bit-for-bit up to
/// floating-point reassociation (≤ 1e-12 — the per-shard partial sums
/// re-associate the additions), for iteration-count and L1-target stops
/// alike, on hub and non-hub queries.
#[test]
fn router_merge_matches_single_process_for_every_stop() {
    let net = BibNetwork::generate(
        DblpParams {
            papers: 1_200,
            venues: 18,
            ..Default::default()
        },
        11,
    );
    let graph = Arc::new(net.graph);
    let n = graph.num_nodes();
    let config = Config::default().with_epsilon(1e-6);
    let hubs = Arc::new(select_hubs(&graph, HubPolicy::ExpectedUtility, n / 25, 0));
    let (index, _) = build_index_parallel(&graph, &hubs, &config, 2);
    let (backend, map) = sharded_backend(&graph, &hubs, &index, config, 3);
    let cfg = RouterConfig {
        alpha: config.alpha,
        delta: config.delta,
        num_nodes: n,
    };
    let engine = QueryEngine::new(&graph, &hubs, &index, config);
    let mut scratch = ScoreScratch::new(n);

    let mut stops: Vec<StoppingCondition> = (0..=3).map(StoppingCondition::iterations).collect();
    stops.extend([0.5, 0.2, 0.05].map(StoppingCondition::l1_error));
    // A spread of non-hub queries plus a couple of hubs (their prime0
    // comes straight off the owning shard's stored PPV).
    let mut queries: Vec<u32> = (0..n as u32)
        .filter(|&v| !hubs.is_hub(v))
        .step_by(n / 5)
        .take(4)
        .collect();
    queries.extend(hubs.ids().iter().copied().take(2));

    for &q in &queries {
        for stop in &stops {
            let single = engine.query(q, stop);
            let merged = merge_query(&backend, &map, &cfg, q, stop, &mut scratch)
                .unwrap_or_else(|e| panic!("q {q}: merge failed: {e}"));
            assert!(!merged.degraded, "q {q}: no shard was down");
            assert!(merged.shards_skipped.is_empty(), "q {q}");
            assert_eq!(merged.iterations, single.iterations, "q {q} stop {stop:?}");
            assert_eq!(merged.exhausted, single.exhausted, "q {q} stop {stop:?}");
            assert!(
                (merged.l1_error - single.l1_error).abs() <= 1e-12,
                "q {q} stop {stop:?}: φ {} vs {}",
                merged.l1_error,
                single.l1_error
            );
            assert_eq!(
                merged.scores.len(),
                single.scores.len(),
                "q {q} stop {stop:?}"
            );
            for (&(va, sa), &(vb, sb)) in merged.scores.iter().zip(single.scores.entries()) {
                assert_eq!(va, vb, "q {q} stop {stop:?}");
                assert!(
                    (sa - sb).abs() <= 1e-12,
                    "q {q} stop {stop:?} node {va}: {sa} vs {sb}"
                );
            }
        }
    }
}

/// Certified degradation: with one shard dead, every answer the merge
/// still produces must carry a φ that upper-bounds its true L1 distance
/// to the *full-cluster* answer under the same stop — the dropped border
/// mass is charged into φ, never silently lost.
#[test]
fn router_degraded_phi_bounds_gap_to_full_answer() {
    let net = BibNetwork::generate(
        DblpParams {
            papers: 1_000,
            venues: 15,
            ..Default::default()
        },
        13,
    );
    let graph = Arc::new(net.graph);
    let n = graph.num_nodes();
    let config = Config::default().with_epsilon(1e-6);
    let hubs = Arc::new(select_hubs(&graph, HubPolicy::ExpectedUtility, n / 20, 0));
    let (index, _) = build_index_parallel(&graph, &hubs, &config, 2);
    let (backend, map) = sharded_backend(&graph, &hubs, &index, config, 4);
    let cfg = RouterConfig {
        alpha: config.alpha,
        delta: config.delta,
        num_nodes: n,
    };
    let mut scratch = ScoreScratch::new(n);
    let stop = StoppingCondition::iterations(3);
    let queries: Vec<u32> = (0..n as u32)
        .filter(|&v| !hubs.is_hub(v))
        .step_by(n / 6)
        .take(5)
        .collect();

    for dead in 0..4 {
        backend.set_dead(dead, true);
        for &q in &queries {
            let partial = merge_query(&backend, &map, &cfg, q, &stop, &mut scratch)
                .unwrap_or_else(|e| panic!("q {q} dead {dead}: {e}"));
            backend.set_dead(dead, false);
            let full = merge_query(&backend, &map, &cfg, q, &stop, &mut scratch).unwrap();
            backend.set_dead(dead, true);
            assert!(!full.degraded);
            // The partial estimate stays an entry-wise lower bound of the
            // full one, and the inflated φ covers the gap.
            let mut gap = 0.0;
            let mut pi = partial.scores.iter().peekable();
            for &(v, sf) in &full.scores {
                match pi.peek() {
                    Some(&&(pv, sp)) if pv == v => {
                        assert!(sp <= sf + 1e-12, "q {q} node {v}: partial above full");
                        gap += sf - sp;
                        pi.next();
                    }
                    _ => gap += sf,
                }
            }
            assert!(
                pi.peek().is_none(),
                "q {q}: partial answer has entries the full one lacks"
            );
            assert!(
                gap <= partial.l1_error + 1e-12,
                "q {q} dead {dead}: gap {gap} exceeds certified φ {}",
                partial.l1_error
            );
            assert!(
                partial.l1_error >= full.l1_error - 1e-12,
                "q {q} dead {dead}"
            );
            if partial.degraded {
                assert!(
                    !partial.exhausted,
                    "degraded answers never claim exhaustion"
                );
            }
        }
        backend.set_dead(dead, false);
    }
}

#[test]
fn clustering_quality_larger_cluster_count_shrinks_working_set() {
    let net = BibNetwork::generate(
        DblpParams {
            papers: 2_000,
            venues: 25,
            ..Default::default()
        },
        9,
    );
    let graph = &net.graph;
    let mut prev_ws = f64::INFINITY;
    for k in [5usize, 20, 60] {
        let clustering = cluster_graph(graph, k, ClusteringOptions::default());
        let clg = temp_path(&format!("ws-{k}.clg"));
        write_clustered_graph(graph, &clustering, &clg).unwrap();
        let disk = DiskGraph::open(&clg, 1).unwrap();
        let ws = disk.largest_cluster_bytes() as f64 / disk.total_cluster_bytes() as f64;
        assert!(ws <= prev_ws + 0.05, "k {k}: {ws} vs {prev_ws}");
        prev_ws = ws;
        std::fs::remove_file(&clg).unwrap();
    }
    assert!(prev_ws < 0.35, "60 clusters must shrink the working set");
}
