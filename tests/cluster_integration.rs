//! Disk-based pipeline integration: clustering → cluster store → fault-
//! counted queries, compared against the in-memory engine.

use fastppv::cluster::partition::{cluster_graph, ClusteringOptions};
use fastppv::cluster::query::{disk_query, DiskQueryWorkspace};
use fastppv::cluster::store::{write_clustered_graph, DiskGraph};
use fastppv::core::index::DiskIndex;
use fastppv::core::query::{QueryEngine, StoppingCondition};
use fastppv::core::{build_index_parallel, select_hubs, Config, HubPolicy};
use fastppv::graph::gen::{BibNetwork, DblpParams};

fn temp_path(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!(
        "fastppv-clint-{}-{}-{name}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos()
    ));
    p
}

#[test]
fn fully_disk_resident_pipeline_matches_memory() {
    let net = BibNetwork::generate(
        DblpParams {
            papers: 1_500,
            venues: 20,
            ..Default::default()
        },
        6,
    );
    let graph = &net.graph;
    let n = graph.num_nodes();
    let config = Config::default().with_epsilon(1e-6).with_clip(0.0);
    let hubs = select_hubs(graph, HubPolicy::ExpectedUtility, n / 25, 0);
    let (index, _) = build_index_parallel(graph, &hubs, &config, 2);

    // Graph and PPV index both on disk.
    let clg = temp_path("graph.clg");
    let idx = temp_path("index.fppv");
    let clustering = cluster_graph(graph, 12, ClusteringOptions::default());
    write_clustered_graph(graph, &clustering, &clg).unwrap();
    index.write_to_file(&idx).unwrap();

    let mut disk = DiskGraph::open(&clg, 1).unwrap();
    let disk_index = DiskIndex::open(&idx, 32).unwrap();
    let mut ws = DiskQueryWorkspace::new(n);
    let mem_engine = QueryEngine::new(graph, &hubs, &index, config);
    let stop = StoppingCondition::iterations(2);

    let queries: Vec<u32> = (0..n as u32)
        .filter(|&v| !hubs.is_hub(v))
        .step_by(n / 5)
        .take(4)
        .collect();
    for &q in &queries {
        let mem = mem_engine.query(q, &stop);
        let dsk = disk_query(
            &mut disk,
            &hubs,
            &disk_index,
            &config,
            q,
            &stop,
            None,
            &mut ws,
        );
        // f32 index storage rounds scores; structure must be identical.
        assert_eq!(mem.scores.len(), dsk.result.scores.len(), "q {q}");
        for (&(va, sa), &(vb, sb)) in mem.scores.entries().iter().zip(dsk.result.scores.entries()) {
            assert_eq!(va, vb, "q {q}");
            assert!((sa - sb).abs() < 1e-4, "q {q} node {va}: {sa} vs {sb}");
        }
    }
    std::fs::remove_file(&clg).unwrap();
    std::fs::remove_file(&idx).unwrap();
}

#[test]
fn fault_cap_bounds_io_and_keeps_phi_sound() {
    let net = BibNetwork::generate(
        DblpParams {
            papers: 1_000,
            venues: 15,
            ..Default::default()
        },
        7,
    );
    let graph = &net.graph;
    let n = graph.num_nodes();
    let config = Config::default().with_epsilon(1e-7);
    // Few hubs -> large prime subgraphs -> many cluster touches.
    let hubs = select_hubs(graph, HubPolicy::ExpectedUtility, 10, 0);
    let (index, _) = build_index_parallel(graph, &hubs, &config, 2);
    let clg = temp_path("capped.clg");
    let clustering = cluster_graph(graph, 20, ClusteringOptions::default());
    write_clustered_graph(graph, &clustering, &clg).unwrap();
    let mut disk = DiskGraph::open(&clg, 1).unwrap();
    let mut ws = DiskQueryWorkspace::new(n);
    let q = (0..n as u32).find(|&v| !hubs.is_hub(v)).unwrap();
    let stop = StoppingCondition::iterations(1);

    let mut last_faults = u64::MAX;
    for cap in [20u64, 5, 1] {
        let res = disk_query(
            &mut disk,
            &hubs,
            &index,
            &config,
            q,
            &stop,
            Some(cap),
            &mut ws,
        );
        assert!(res.faults <= cap, "cap {cap}: faults {}", res.faults);
        assert!(res.faults <= last_faults);
        last_faults = res.faults;
        // φ stays in [0, 1]: truncation only increases reported error.
        assert!(res.result.l1_error >= 0.0 && res.result.l1_error <= 1.0);
    }
    std::fs::remove_file(&clg).unwrap();
}

#[test]
fn clustering_quality_larger_cluster_count_shrinks_working_set() {
    let net = BibNetwork::generate(
        DblpParams {
            papers: 2_000,
            venues: 25,
            ..Default::default()
        },
        9,
    );
    let graph = &net.graph;
    let mut prev_ws = f64::INFINITY;
    for k in [5usize, 20, 60] {
        let clustering = cluster_graph(graph, k, ClusteringOptions::default());
        let clg = temp_path(&format!("ws-{k}.clg"));
        write_clustered_graph(graph, &clustering, &clg).unwrap();
        let disk = DiskGraph::open(&clg, 1).unwrap();
        let ws = disk.largest_cluster_bytes() as f64 / disk.total_cluster_bytes() as f64;
        assert!(ws <= prev_ws + 0.05, "k {k}: {ws} vs {prev_ws}");
        prev_ws = ws;
        std::fs::remove_file(&clg).unwrap();
    }
    assert!(prev_ws < 0.35, "60 clusters must shrink the working set");
}
