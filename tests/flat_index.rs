//! The flat SoA arena versus the slot-map store: equivalence, determinism,
//! dynamic patching, and a round-trip property test.

use fastppv::core::dynamic::{refresh_flat_index, refresh_index};
use fastppv::core::index::{FlatIndex, MemoryIndex, PpvStore, PrimePpv};
use fastppv::core::offline::{build_flat_index, build_index};
use fastppv::core::query::{QueryEngine, StoppingCondition};
use fastppv::core::{select_hubs, Config, HubPolicy, HubSet};
use fastppv::graph::gen::barabasi_albert;
use fastppv::graph::{Graph, GraphBuilder, NodeId, SparseVector};
use proptest::prelude::*;

fn ba2k_setup() -> (Graph, HubSet, MemoryIndex, FlatIndex) {
    let g = barabasi_albert(2000, 4, 42);
    let hubs = select_hubs(&g, HubPolicy::ExpectedUtility, 80, 0);
    let config = Config::default().with_epsilon(1e-6);
    let (memory, _) = build_index(&g, &hubs, &config);
    let flat = FlatIndex::from_memory(&memory, &hubs);
    (g, hubs, memory, flat)
}

fn assert_scores_close(a: &SparseVector, b: &SparseVector, tol: f64, ctx: &str) {
    assert_eq!(a.len(), b.len(), "{ctx}: support sizes differ");
    for (&(va, sa), &(vb, sb)) in a.entries().iter().zip(b.entries()) {
        assert_eq!(va, vb, "{ctx}: node ids diverge");
        assert!(
            (sa - sb).abs() <= tol,
            "{ctx}: node {va}: {sa} vs {sb} (gap {})",
            (sa - sb).abs()
        );
    }
}

#[test]
fn flat_matches_memory_on_ba2k_all_stopping_conditions() {
    let (g, hubs, memory, flat) = ba2k_setup();
    let config = Config::default().with_epsilon(1e-6);
    let mem_engine = QueryEngine::new(&g, &hubs, &memory, config);
    let flat_engine = QueryEngine::new(&g, &hubs, &flat, config);
    let mut mem_ws = mem_engine.workspace();
    let mut flat_ws = flat_engine.workspace();
    // A hub query, high-degree non-hubs, and arbitrary nodes.
    let mut queries: Vec<NodeId> = vec![hubs.ids()[0], hubs.ids()[40]];
    queries.extend((0..2000u32).filter(|v| !hubs.is_hub(*v)).step_by(311));
    let stops: Vec<(&str, StoppingCondition)> = vec![
        ("eta0", StoppingCondition::iterations(0)),
        ("eta2", StoppingCondition::iterations(2)),
        ("eta6", StoppingCondition::iterations(6)),
        ("l1=0.05", StoppingCondition::l1_error(0.05)),
        ("l1=1e-4", StoppingCondition::l1_error(1e-4)),
        (
            "combined",
            StoppingCondition::l1_error(1e-3).or_iterations(4),
        ),
    ];
    for &q in &queries {
        for (label, stop) in &stops {
            let a = mem_engine.query_with(&mut mem_ws, q, stop);
            let b = flat_engine.query_with(&mut flat_ws, q, stop);
            let ctx = format!("q {q}, stop {label}");
            assert_eq!(a.iterations, b.iterations, "{ctx}: iterations");
            assert_eq!(a.exhausted, b.exhausted, "{ctx}: exhaustion");
            assert!(
                (a.l1_error - b.l1_error).abs() <= 1e-12,
                "{ctx}: φ {} vs {}",
                a.l1_error,
                b.l1_error
            );
            assert_scores_close(&a.scores, &b.scores, 1e-12, &ctx);
        }
        // Certified top-k agrees too.
        let ka = mem_engine.query_top_k(q, 5, 10);
        let kb = flat_engine.query_top_k(q, 5, 10);
        assert_eq!(ka.certified, kb.certified, "q {q} topk certification");
        assert_eq!(ka.nodes.len(), kb.nodes.len());
        for (&(va, sa), &(vb, sb)) in ka.nodes.iter().zip(&kb.nodes) {
            assert_eq!(va, vb, "q {q} topk node order");
            assert!((sa - sb).abs() <= 1e-12);
        }
    }
}

#[test]
fn bench_inputs_are_byte_identical_across_builds() {
    // The BENCH determinism contract: two independent builds of the same
    // deployment serve bit-identical result streams and serialize to
    // byte-identical index files (timing fields are the only thing a
    // repeated benchmark run may legitimately change).
    let g = barabasi_albert(2000, 4, 42);
    let hubs = select_hubs(&g, HubPolicy::ExpectedUtility, 80, 0);
    let config = Config::default().with_epsilon(1e-6);
    let (flat_a, _) = build_flat_index(&g, &hubs, &config, 1);
    let (flat_b, _) = build_flat_index(&g, &hubs, &config, 2);
    let queries = fastppv_bench::workload::sample_queries_zipf(&g, 64, 1.0, 42);
    let da = fastppv_bench::hotpath::results_digest(&g, &hubs, &flat_a, config, &queries, 2);
    let db = fastppv_bench::hotpath::results_digest(&g, &hubs, &flat_b, config, &queries, 2);
    assert_eq!(da, db, "result digests differ across independent builds");

    let mut pa = std::env::temp_dir();
    pa.push(format!("fastppv-flatdet-a-{}.idx", std::process::id()));
    let mut pb = std::env::temp_dir();
    pb.push(format!("fastppv-flatdet-b-{}.idx", std::process::id()));
    flat_a.write_to_file(&pa).unwrap();
    flat_b.write_to_file(&pb).unwrap();
    let bytes_a = std::fs::read(&pa).unwrap();
    let bytes_b = std::fs::read(&pb).unwrap();
    std::fs::remove_file(&pa).unwrap();
    std::fs::remove_file(&pb).unwrap();
    assert_eq!(bytes_a, bytes_b, "serialized arenas differ");
}

fn add_edges(graph: &Graph, new_edges: &[(NodeId, NodeId)]) -> Graph {
    let mut b = GraphBuilder::new(graph.num_nodes());
    let gains: std::collections::HashSet<NodeId> = new_edges.iter().map(|&(u, _)| u).collect();
    for (s, t) in graph.edges() {
        // Drop the dangling-fix self-loop once the node gains a real edge.
        if s == t && gains.contains(&s) {
            continue;
        }
        b.add_edge(s, t);
    }
    for &(u, v) in new_edges {
        b.add_edge(u, v);
    }
    b.build()
}

#[test]
fn dynamic_patching_agrees_with_rebuild_and_memory_refresh() {
    // Apply several update batches so the arena accumulates tombstones and
    // crosses the compaction threshold at least once; after every batch the
    // patched arena must answer queries exactly like a fresh build and
    // like the MemoryIndex refresh path.
    let mut graph = barabasi_albert(600, 3, 9);
    let hubs = select_hubs(&graph, HubPolicy::ExpectedUtility, 40, 0);
    // ε matched to the graph scale so refreshes stay local (see dynamic.rs).
    let config = Config::default().with_epsilon(1e-4);
    let (mut flat, _) = build_flat_index(&graph, &hubs, &config, 1);
    let (mut memory, _) = build_index(&graph, &hubs, &config);
    for round in 0u32..6 {
        let u = (37 * round + 11) % 600;
        let v = (u + 101 + round) % 600;
        if u == v || graph.has_edge(u, v) {
            continue;
        }
        let new_graph = add_edges(&graph, &[(u, v)]);
        let stats = refresh_flat_index(&mut flat, &graph, &new_graph, &hubs, &[u], &config);
        let (mem_refreshed, mem_stats) =
            refresh_index(&memory, &graph, &new_graph, &hubs, &[u], &config);
        assert_eq!(stats.recomputed, mem_stats.recomputed, "round {round}");
        memory = mem_refreshed;
        graph = new_graph;

        let (rebuilt, _) = build_flat_index(&graph, &hubs, &config, 1);
        let engine_patched = QueryEngine::new(&graph, &hubs, &flat, config);
        let engine_rebuilt = QueryEngine::new(&graph, &hubs, &rebuilt, config);
        let engine_memory = QueryEngine::new(&graph, &hubs, &memory, config);
        let stop = StoppingCondition::iterations(3);
        for q in [u, v, hubs.ids()[0], 599] {
            let a = engine_patched.query(q, &stop);
            let b = engine_rebuilt.query(q, &stop);
            let c = engine_memory.query(q, &stop);
            let ctx = format!("round {round} q {q}");
            assert_scores_close(&a.scores, &b.scores, 1e-12, &format!("{ctx} vs rebuild"));
            assert_scores_close(&a.scores, &c.scores, 1e-12, &format!("{ctx} vs memory"));
        }
    }
    assert!(
        flat.compactions() > 0,
        "updates never exercised arena compaction"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn arena_round_trips_random_ppv_sets(
        hubs_map in prop::collection::btree_map(0u32..300, prop::collection::vec(
            (0u32..300, 1e-9..1.0f64), 0..50), 1..12),
        replace in prop::collection::vec((0u32..300, prop::collection::vec(
            (0u32..300, 1e-9..1.0f64), 0..50)), 0..4),
    ) {
        let mut memory = MemoryIndex::new(300);
        for (&h, entries) in &hubs_map {
            memory.insert(h, PrimePpv {
                entries: SparseVector::from_unsorted(entries.clone()),
            });
        }
        let hub_ids: Vec<NodeId> = hubs_map.keys().copied().collect();
        let hub_set = HubSet::from_ids(300, hub_ids.clone());
        let mut flat = FlatIndex::from_memory(&memory, &hub_set);
        prop_assert_eq!(flat.hub_count(), memory.hub_count());
        prop_assert_eq!(flat.total_entries(), memory.total_entries());

        // Patch a few segments (only over indexed hubs) and mirror in the
        // slot map; equality must survive tombstoning and compaction.
        for (pick, entries) in &replace {
            let h = hub_ids[*pick as usize % hub_ids.len()];
            let ppv = PrimePpv { entries: SparseVector::from_unsorted(entries.clone()) };
            flat.replace(h, &ppv, &hub_set);
            memory.insert(h, ppv);
        }
        flat.compact();
        prop_assert_eq!(flat.total_entries(), memory.total_entries());
        for &h in &hub_ids {
            let expected = memory.get(h).unwrap();
            let got = flat.load(h).unwrap();
            prop_assert_eq!(&got, expected);
            // Border sublists point exactly at the hub entries.
            let view = flat.view(h).unwrap();
            let (bids, bpos) = flat.border_sublist(h).unwrap();
            let borders: Vec<(NodeId, f64)> = bids
                .iter()
                .zip(bpos)
                .map(|(&b, &p)| (b, view.score_at(p as usize)))
                .collect();
            let want: Vec<(NodeId, f64)> = expected.border_hubs(&hub_set).collect();
            prop_assert_eq!(borders, want);
        }
        prop_assert!(!flat.contains(299) || hubs_map.contains_key(&299));

        // Single-file round trip: write → open (mmap or heap fallback) →
        // bit-exact loads, including the tombstone/compaction history the
        // writer must not leak into the file.
        let path = arena_temp("prop");
        flat.write_to_file(&path).unwrap();
        let opened = FlatIndex::open(&path).unwrap();
        std::fs::remove_file(&path).unwrap();
        prop_assert_eq!(opened.hub_count(), flat.hub_count());
        prop_assert_eq!(opened.total_entries(), flat.total_entries());
        for &h in &hub_ids {
            let a = flat.load(h).unwrap();
            let b = opened.load(h).unwrap();
            prop_assert_eq!(a.entries.len(), b.entries.len());
            for (&(va, sa), &(vb, sb)) in
                a.entries.entries().iter().zip(b.entries.entries())
            {
                prop_assert_eq!(va, vb);
                prop_assert_eq!(sa.to_bits(), sb.to_bits());
            }
            prop_assert_eq!(
                flat.budget_spent(h).to_bits(),
                opened.budget_spent(h).to_bits()
            );
            prop_assert_eq!(flat.border_sublist(h), opened.border_sublist(h));
        }
    }
}

/// Unique temp path per call (proptest cases reuse the process).
fn arena_temp(tag: &str) -> std::path::PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static CASE: AtomicU64 = AtomicU64::new(0);
    let case = CASE.fetch_add(1, Ordering::Relaxed);
    let mut p = std::env::temp_dir();
    p.push(format!(
        "fastppv-arena-it-{}-{case}-{tag}",
        std::process::id()
    ));
    p
}

#[test]
fn mmap_opened_arena_serves_identical_queries() {
    // write → open (mmap or heap fallback) → the opened arena must answer
    // every stopping condition bit-identically to the built one, and carry
    // the per-hub budget spends through.
    let (g, hubs, _, mut flat) = ba2k_setup();
    let spend_hub = hubs.ids()[3];
    flat.set_budget_spent(spend_hub, 1.25e-3);
    let path = arena_temp("queries");
    flat.write_to_file(&path).unwrap();
    let opened = FlatIndex::open(&path).unwrap();
    std::fs::remove_file(&path).unwrap();
    assert_eq!(
        opened.budget_spent(spend_hub).to_bits(),
        1.25e-3f64.to_bits()
    );
    for &h in hubs.ids() {
        let a = flat.load(h).unwrap();
        let b = opened.load(h).unwrap();
        assert_eq!(a.entries.len(), b.entries.len(), "hub {h}");
        for (&(va, sa), &(vb, sb)) in a.entries.entries().iter().zip(b.entries.entries()) {
            assert_eq!(va, vb, "hub {h}");
            assert_eq!(sa.to_bits(), sb.to_bits(), "hub {h} node {va}");
        }
    }
    let config = Config::default().with_epsilon(1e-6);
    let built_engine = QueryEngine::new(&g, &hubs, &flat, config);
    let opened_engine = QueryEngine::new(&g, &hubs, &opened, config);
    let stop = StoppingCondition::l1_error(1e-3).or_iterations(5);
    for q in (0..2000u32).step_by(173) {
        let a = built_engine.query(q, &stop);
        let b = opened_engine.query(q, &stop);
        assert_eq!(a.iterations, b.iterations, "q {q}");
        assert_eq!(a.l1_error.to_bits(), b.l1_error.to_bits(), "q {q}");
        assert_eq!(a.scores.len(), b.scores.len(), "q {q}");
        for (&(va, sa), &(vb, sb)) in a.scores.entries().iter().zip(b.scores.entries()) {
            assert_eq!(va, vb, "q {q}");
            assert_eq!(sa.to_bits(), sb.to_bits(), "q {q} node {va}");
        }
    }
}

#[test]
fn arena_open_corruption_fuzz_never_panics() {
    // Deterministic corruption sweep: truncate at random lengths and flip
    // random bytes. open must return Ok or a typed error — never panic —
    // and when it says Ok, every hub's views must be readable.
    let g = barabasi_albert(400, 3, 7);
    let hubs = select_hubs(&g, HubPolicy::ExpectedUtility, 30, 0);
    let config = Config::default().with_epsilon(1e-5);
    let (flat, _) = build_flat_index(&g, &hubs, &config, 1);
    let path = arena_temp("fuzz");
    flat.write_to_file(&path).unwrap();
    let pristine = std::fs::read(&path).unwrap();
    let mut state = 0x9E37_79B9_7F4A_7C15u64;
    let mut rng = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let rounds: usize = std::env::var("FASTPPV_FUZZ_ROUNDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(300);
    let mut opened_ok = 0usize;
    for round in 0..rounds {
        let mut bytes = pristine.clone();
        match round % 3 {
            0 => {
                let cut = rng() as usize % (bytes.len() + 1);
                bytes.truncate(cut);
            }
            1 => {
                let at = rng() as usize % bytes.len();
                bytes[at] ^= (rng() as u8).max(1);
            }
            _ => {
                for _ in 0..4 {
                    let at = rng() as usize % bytes.len();
                    bytes[at] = rng() as u8;
                }
            }
        }
        std::fs::write(&path, &bytes).unwrap();
        // Typed result, never a panic or out-of-bounds read.
        if let Ok(opened) = FlatIndex::open(&path) {
            opened_ok += 1;
            for &h in opened.hub_ids().to_vec().iter() {
                let view = opened.view(h).expect("open accepted the directory");
                view.for_each(|_, s| {
                    let _ = s;
                });
                let _ = opened.border_sublist(h);
                let _ = opened.budget_spent(h);
            }
        }
    }
    // A pristine copy still opens (the loop never mutates `pristine`).
    std::fs::write(&path, &pristine).unwrap();
    FlatIndex::open(&path).expect("pristine file reopens");
    std::fs::remove_file(&path).unwrap();
    // Score-byte flips land in section interiors and are unvalidatable by
    // design (raw f64 payloads), so some corrupt files must legitimately
    // open — the guarantee under test is no panic, not total rejection.
    assert!(opened_ok < rounds, "every corruption was accepted");
}
