//! Property-based tests of the delta-propagated index refresh: over random
//! graphs and random insert/delete event sequences, the patched index must
//! stay within its *declared* per-hub error budget of an exact rebuild,
//! budget 0 must be bit-identical to the exact refresher, and the flat
//! arena must evolve exactly like the memory layout.

use fastppv::core::dynamic::{
    refresh_flat_index_delta, refresh_index, refresh_index_delta, DeltaConfig,
};
use fastppv::core::index::PpvStore;
use fastppv::core::offline::{build_flat_index, build_index};
use fastppv::core::{select_hubs, Config, HubPolicy};
use fastppv::graph::builder::{from_edges, GraphBuilder};
use fastppv::graph::{Graph, NodeId};
use proptest::prelude::*;

/// Exact-ish config: no clipping and a deep ε so the rebuild the budget is
/// checked against is the maintained state itself, not a pruning artifact.
fn tight_config() -> Config {
    let mut c = Config::default().with_epsilon(1e-10).with_clip(0.0);
    c.solve_tolerance = 1e-12;
    c
}

fn add_edge(graph: &Graph, u: NodeId, v: NodeId) -> Graph {
    let mut b = GraphBuilder::new(graph.num_nodes());
    for (s, t) in graph.edges() {
        if s == t && s == u {
            continue; // shed the dangling-fix self-loop
        }
        b.add_edge(s, t);
    }
    b.add_edge(u, v);
    b.build()
}

fn remove_edge(graph: &Graph, u: NodeId, v: NodeId) -> Graph {
    let mut b = GraphBuilder::new(graph.num_nodes());
    let mut removed = false;
    let mut remaining = 0usize;
    for (s, t) in graph.edges() {
        if s == u {
            if !removed && t == v {
                removed = true;
                continue;
            }
            remaining += 1;
        }
        b.add_edge(s, t);
    }
    assert!(removed, "edge ({u}, {v}) not present");
    if remaining == 0 {
        b.add_edge(u, u); // keep the dangling-fix invariant
    }
    b.build()
}

fn entries_l1(a: &[(NodeId, f64)], b: &[(NodeId, f64)]) -> f64 {
    let mut d = 0.0;
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        if a[i].0 < b[j].0 {
            d += a[i].1.abs();
            i += 1;
        } else if b[j].0 < a[i].0 {
            d += b[j].1.abs();
            j += 1;
        } else {
            d += (a[i].1 - b[j].1).abs();
            i += 1;
            j += 1;
        }
    }
    d += a[i..].iter().map(|&(_, s)| s.abs()).sum::<f64>();
    d += b[j..].iter().map(|&(_, s)| s.abs()).sum::<f64>();
    d
}

/// A generated case: node count, initial edge list, proposed edge flips.
type GraphAndFlips = (usize, Vec<(NodeId, NodeId)>, Vec<(NodeId, NodeId)>);

/// Strategy: a small random directed graph plus a list of proposed edge
/// flips. Each proposal toggles the named edge: delete it when live,
/// insert it otherwise (self-loop proposals are dropped — self-loops are
/// the builder's dangling bookkeeping, not data).
fn graph_and_flips() -> impl Strategy<Value = GraphAndFlips> {
    (6usize..16).prop_flat_map(|n| {
        let edges = prop::collection::vec((0..n as NodeId, 0..n as NodeId), n..4 * n);
        let flips = prop::collection::vec((0..n as NodeId, 0..n as NodeId), 1..8);
        (Just(n), edges, flips)
    })
}

/// Resolves one proposed flip against the live edge set, or skips it.
fn apply_flip(graph: &Graph, u: NodeId, v: NodeId) -> Option<Graph> {
    if u == v {
        return None;
    }
    if graph.has_edge(u, v) {
        Some(remove_edge(graph, u, v))
    } else {
        Some(add_edge(graph, u, v))
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The headline contract: across a random insert/delete sequence,
    /// every hub of the delta-maintained index stays within its *recorded*
    /// budget spend — itself capped by the declared budget — of a
    /// from-scratch rebuild, in both layouts, which also march in lockstep.
    #[test]
    fn delta_maintained_index_stays_within_declared_budget(
        (n, edges, flips) in graph_and_flips()
    ) {
        let config = tight_config();
        let delta = DeltaConfig {
            budget: 0.05,
            push_threshold: 1e-13,
            ..DeltaConfig::default()
        };
        let mut graph = from_edges(n, &edges);
        let hubs = select_hubs(&graph, HubPolicy::ExpectedUtility, (n / 3).max(2), 0);
        let (mut memory, _) = build_index(&graph, &hubs, &config);
        let (mut flat, _) = build_flat_index(&graph, &hubs, &config, 1);
        for &(u, v) in &flips {
            let Some(next) = apply_flip(&graph, u, v) else { continue };
            let (patched, stats) = refresh_index_delta(
                &memory, &graph, &next, &hubs, &[u], &config, &delta,
            );
            prop_assert!(stats.budget_watermark <= delta.budget);
            prop_assert_eq!(
                stats.delta_patched + stats.recomputed + stats.reused,
                hubs.len()
            );
            let flat_stats = refresh_flat_index_delta(
                &mut flat, &graph, &next, &hubs, &[u], &config, &delta,
            );
            prop_assert_eq!(flat_stats.delta_patched, stats.delta_patched);
            prop_assert_eq!(flat_stats.recomputed, stats.recomputed);
            memory = patched;
            graph = next;
        }
        // Certified accuracy: per-hub L1 against a fresh exact rebuild is
        // bounded by that hub's recorded spend (small float slack).
        let (rebuilt, _) = build_index(&graph, &hubs, &config);
        for &h in hubs.ids() {
            let ours = memory.get(h).expect("maintained hub");
            let fresh = rebuilt.get(h).expect("rebuilt hub");
            let l1 = entries_l1(ours.entries.entries(), fresh.entries.entries());
            prop_assert!(
                l1 <= memory.budget_spent(h) + 1e-6,
                "hub {}: L1 {} exceeds recorded spend {}",
                h, l1, memory.budget_spent(h)
            );
            // Both layouts hold the same bits and the same spend.
            let flat_ppv = flat.load(h).expect("flat hub");
            prop_assert_eq!(&flat_ppv.entries, &ours.entries);
            prop_assert_eq!(flat.budget_spent(h), memory.budget_spent(h));
        }
    }

    /// Budget 0 must disable the delta path entirely: the refresher's
    /// output is bit-identical to the exact one, with nothing patched.
    #[test]
    fn zero_budget_is_bit_identical_to_exact_refresh(
        (n, edges, flips) in graph_and_flips()
    ) {
        let config = tight_config();
        let graph = from_edges(n, &edges);
        let hubs = select_hubs(&graph, HubPolicy::ExpectedUtility, (n / 3).max(2), 0);
        let (index, _) = build_index(&graph, &hubs, &config);
        let Some(next) = flips
            .iter()
            .find_map(|&(u, v)| apply_flip(&graph, u, v).map(|g| (u, g)))
        else {
            return; // every proposal was a self-loop
        };
        let (u, next) = next;
        let (exact, exact_stats) = refresh_index(&index, &graph, &next, &hubs, &[u], &config);
        let (zero, zero_stats) = refresh_index_delta(
            &index, &graph, &next, &hubs, &[u], &config, &DeltaConfig::exact(),
        );
        prop_assert_eq!(exact_stats.delta_patched, 0);
        prop_assert_eq!(zero_stats.delta_patched, 0);
        prop_assert_eq!(zero_stats.recomputed, exact_stats.recomputed);
        for &h in hubs.ids() {
            prop_assert_eq!(
                &zero.get(h).unwrap().entries,
                &exact.get(h).unwrap().entries
            );
            prop_assert_eq!(zero.budget_spent(h), 0.0);
        }
    }
}
