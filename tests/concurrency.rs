//! Concurrency test suite: the guarantees a shared, multi-threaded
//! deployment rests on.
//!
//! 1. one `&self` engine shared by N threads (via `Arc`) answers exactly
//!    like a fresh single-threaded engine;
//! 2. the worker-pooled `QueryService` preserves request order and
//!    single-threaded semantics under contention;
//! 3. parallel offline builds are byte-identical to serial ones;
//! 4. the hot-PPV cache serves results identical to misses, and a
//!    `dynamic` graph update invalidates it (no stale hits).
//!
//! CI runs this file twice — `RUST_TEST_THREADS=1` and default
//! parallelism — so scheduling-order flakiness surfaces there, not in
//! users' terminals.

use std::sync::Arc;

use fastppv::core::offline::{build_index, build_index_in_order, build_index_parallel};
use fastppv::core::query::StoppingCondition;
use fastppv::core::{
    select_hubs, Config, HubPolicy, HubSet, MemoryIndex, PrimeComputer, QueryEngine,
};
use fastppv::graph::gen::barabasi_albert;
use fastppv::graph::{Graph, GraphBuilder, NodeId, SparseVector};
use fastppv::server::{QueryService, Request, ServiceOptions};

/// L1 distance between two sparse vectors (union of supports).
fn l1_diff(a: &SparseVector, b: &SparseVector) -> f64 {
    let mut d: f64 = a.entries().iter().map(|&(v, s)| (s - b.get(v)).abs()).sum();
    for &(v, s) in b.entries() {
        if a.get(v) == 0.0 {
            d += s.abs();
        }
    }
    d
}

fn build_deployment(
    n: usize,
    hubs: usize,
    seed: u64,
    config: Config,
) -> (Graph, HubSet, MemoryIndex) {
    let g = barabasi_albert(n, 3, seed);
    let h = select_hubs(&g, HubPolicy::ExpectedUtility, hubs, 0);
    let (index, _) = build_index(&g, &h, &config);
    (g, h, index)
}

#[test]
fn shared_engine_matches_single_threaded() {
    const THREADS: usize = 8;
    let config = Config::default();
    let (g, hubs, index) = build_deployment(800, 60, 17, config);
    let engine = Arc::new(QueryEngine::new(&g, &hubs, &index, config));
    let stop = StoppingCondition::iterations(3);

    // Every thread queries an interleaved slice of the node range through
    // the one shared engine, each with its own workspace.
    let concurrent: Vec<Vec<(NodeId, SparseVector)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let engine = Arc::clone(&engine);
                scope.spawn(move || {
                    let mut ws = engine.workspace();
                    (t as u32..800)
                        .step_by(THREADS * 7)
                        .map(|q| (q, engine.query_with(&mut ws, q, &stop).scores))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // A fresh engine over the same deployment, strictly single-threaded.
    let reference = QueryEngine::new(&g, &hubs, &index, config);
    let mut ws = reference.workspace();
    let mut checked = 0;
    for (q, scores) in concurrent.into_iter().flatten() {
        let expected = reference.query_with(&mut ws, q, &stop).scores;
        assert!(
            l1_diff(&scores, &expected) <= 1e-12,
            "query {q}: concurrent and single-threaded results diverge"
        );
        checked += 1;
    }
    assert!(checked >= THREADS, "every thread must have queried");
}

#[test]
fn service_pool_matches_single_threaded_engine() {
    let config = Config::default();
    let (g, hubs, index) = build_deployment(600, 50, 23, config);
    let service = QueryService::new(
        Arc::new(g),
        Arc::new(hubs),
        Arc::new(index),
        config,
        ServiceOptions {
            workers: 4,
            queue_capacity: 8,
            cache_capacity: 0, // every request exercises the engine
        },
    );
    // A skewed mix with repeats and mixed stopping conditions.
    let requests: Vec<Request> = (0..200u32)
        .map(|i| {
            let q = (i * 37) % 600;
            if i % 3 == 0 {
                Request::l1_error(q, 0.05)
            } else {
                Request::iterations(q, (i % 4) as usize)
            }
        })
        .collect();
    let responses = service.process_batch(requests.clone());
    assert_eq!(responses.len(), requests.len());

    let state = service.snapshot();
    let engine = state.engine(*service.config());
    let mut ws = engine.workspace();
    for (req, resp) in requests.iter().zip(&responses) {
        assert_eq!(resp.query, req.query, "request order must be preserved");
        let expected = engine.query_with(&mut ws, req.query, &req.stop);
        assert!(
            l1_diff(&resp.scores, &expected.scores) <= 1e-12,
            "query {}: pooled and direct results diverge",
            req.query
        );
        assert_eq!(resp.iterations, expected.iterations);
    }
}

fn serialize_index(index: &MemoryIndex, name: &str) -> Vec<u8> {
    let mut path = std::env::temp_dir();
    path.push(format!(
        "fastppv-determinism-{}-{name}.idx",
        std::process::id()
    ));
    index.write_to_file(&path).unwrap();
    let bytes = std::fs::read(&path).unwrap();
    std::fs::remove_file(&path).unwrap();
    bytes
}

#[test]
fn parallel_build_is_byte_identical() {
    let g = barabasi_albert(500, 3, 31);
    let hubs = select_hubs(&g, HubPolicy::ExpectedUtility, 50, 0);
    let config = Config::default();
    let (serial, _) = build_index(&g, &hubs, &config);
    let reference = serialize_index(&serial, "serial");
    for threads in [2usize, 4, 8] {
        let (parallel, _) = build_index_parallel(&g, &hubs, &config, threads);
        let bytes = serialize_index(&parallel, &format!("t{threads}"));
        assert_eq!(
            bytes, reference,
            "{threads}-thread build must serialize byte-identically to serial"
        );
    }
}

#[test]
fn work_stealing_build_is_byte_identical_under_pathological_order() {
    // Largest prime subgraph first: the adversarial ordering for static
    // contiguous chunking (one chunk would draw every giant while the
    // others idle). Work stealing must both survive it (no skew
    // assumptions baked into the merge) and stay byte-identical to a
    // serial build of the same order — and, because the serialized file
    // sorts hubs, to the default-order build too.
    let g = barabasi_albert(500, 3, 31);
    let hubs = select_hubs(&g, HubPolicy::ExpectedUtility, 50, 0);
    // ε = 1e-3 keeps prime subgraphs genuinely size-skewed at this scale
    // (at 1e-8 every ε-ball spans the whole 500-node graph).
    let config = Config::default().with_epsilon(1e-3);
    let mut pc = PrimeComputer::new(g.num_nodes());
    let mut sized: Vec<(usize, NodeId)> = hubs
        .ids()
        .iter()
        .map(|&h| (pc.extract(&g, &hubs, h, &config).num_nodes(), h))
        .collect();
    sized.sort_unstable_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    assert!(
        sized.first().unwrap().0 > 2 * sized.last().unwrap().0,
        "workload not skewed enough to be a meaningful ordering test"
    );
    let order: Vec<NodeId> = sized.into_iter().map(|(_, h)| h).collect();

    let (serial, _) = build_index_in_order(&g, &hubs, &order, &config, 1);
    let reference = serialize_index(&serial, "pathological-serial");
    for threads in [2usize, 4, 8] {
        let (parallel, _) = build_index_in_order(&g, &hubs, &order, &config, threads);
        let bytes = serialize_index(&parallel, &format!("pathological-t{threads}"));
        assert_eq!(
            bytes, reference,
            "{threads}-thread largest-first build must serialize byte-identically"
        );
    }
    let (default_order, _) = build_index(&g, &hubs, &config);
    assert_eq!(
        serialize_index(&default_order, "default-order"),
        reference,
        "serialized index must not depend on build order at all"
    );
}

#[test]
fn cache_hits_equal_misses_and_dynamic_update_invalidates() {
    let config = Config::default();
    let (g, hubs, index) = build_deployment(400, 40, 47, config);
    let query: NodeId = (0..400).find(|&v| !hubs.is_hub(v)).unwrap();
    let service = QueryService::new(
        Arc::new(g),
        Arc::new(hubs),
        Arc::new(index),
        config,
        ServiceOptions {
            workers: 2,
            queue_capacity: 8,
            cache_capacity: 64,
        },
    );

    // Miss then hit: identical to 1e-12 (in fact, the same allocation).
    let miss = service.query(Request::iterations(query, 2));
    let hit = service.query(Request::iterations(query, 2));
    assert!(!miss.cached && hit.cached);
    assert_eq!(l1_diff(&miss.scores, &hit.scores), 0.0);
    assert_eq!(hit.l1_error, miss.l1_error);

    // A dynamic edge insertion at the query node must invalidate: the next
    // request is a miss again and matches a fresh engine on the new graph.
    let old = service.graph();
    let mut b = GraphBuilder::new(400);
    for (s, t) in old.edges() {
        b.add_edge(s, t);
    }
    let target = (query + 211) % 400;
    b.add_edge(query, target);
    service.apply_update(b.build(), &[query]);

    let after = service.query(Request::iterations(query, 2));
    assert!(!after.cached, "update must invalidate the hot-PPV cache");
    let state = service.snapshot();
    let engine = state.engine(*service.config());
    let expected = engine.query(query, &StoppingCondition::iterations(2));
    assert!(
        l1_diff(&after.scores, &expected.scores) <= 1e-12,
        "post-update result must match a fresh engine on the new graph"
    );
    assert!(
        l1_diff(&after.scores, &miss.scores) > 1e-9,
        "the inserted edge changes the PPV, so a stale hit would be wrong"
    );
    // And the refreshed result is cacheable again: hit equals miss.
    let rehit = service.query(Request::iterations(query, 2));
    assert!(rehit.cached);
    assert_eq!(l1_diff(&rehit.scores, &after.scores), 0.0);
}

#[test]
fn engine_and_service_are_sync() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<QueryEngine<'_, MemoryIndex>>();
    assert_send_sync::<QueryService<MemoryIndex>>();
    assert_send_sync::<fastppv::core::DiskIndex>();
}
