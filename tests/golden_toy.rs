//! Golden tests for the paper's 8-node running example (Figure 1).
//!
//! The toy graph is small enough that its PPV from `a` has a closed form:
//! with the self-loop variant (`c`, `e` absorbing) every walk eventually
//! settles in `c` or `e`, and the distribution `x_k = e_a P^k` stabilizes
//! after four steps. Summing `α Σ_k (1-α)^k x_k` by hand gives exact
//! terminating decimals, hard-coded below — any drift in the graph
//! substrate, the power-iteration baseline, or the scheduled-approximation
//! engine shows up as a golden mismatch here.

use fastppv::baselines::exact::{exact_ppv, ExactOptions};
use fastppv::core::query::StoppingCondition;
use fastppv::core::{build_index, select_hubs, Config, HubPolicy, HubSet, QueryEngine};
use fastppv::graph::toy;
use fastppv::graph::NodeId;

/// PPV from `a` with α = 0.15 on [`toy::graph`] (self-loops on `c`, `e`),
/// computed by hand (exact decimals; the walk distribution is absorbed
/// after four steps). Indexed by node id `a..h`.
const GOLDEN_PPV_FROM_A: [f64; 8] = [
    0.15,         // a: restart mass only
    0.0255,       // b: α·(1-α)/5
    0.5121940625, // c
    0.052774375,  // d
    0.1976940625, // e
    0.0255,       // f: α·(1-α)/5
    0.0108375,    // g: α·(1-α)²/10
    0.0255,       // h: α·(1-α)/5
];

/// Untruncated configuration: Eq. 6 (`φ(k) = 1 − ‖r̂‖₁`) holds exactly.
fn exact_config() -> Config {
    Config::default()
        .with_epsilon(1e-12)
        .with_delta(0.0)
        .with_clip(0.0)
}

#[test]
fn exact_ppv_matches_hand_computed_values() {
    let g = toy::graph();
    let exact = exact_ppv(&g, toy::A, ExactOptions::default());
    for (v, (&got, &want)) in exact.iter().zip(GOLDEN_PPV_FROM_A.iter()).enumerate() {
        assert!(
            (got - want).abs() < 1e-10,
            "node {}: exact_ppv {got} vs golden {want}",
            toy::NAMES[v]
        );
    }
    let total: f64 = exact.iter().sum();
    assert!((total - 1.0).abs() < 1e-10, "PPV mass {total}");
}

#[test]
fn fastppv_engine_converges_to_golden_values() {
    let g = toy::graph();
    let config = exact_config();
    let hubs = HubSet::from_ids(8, toy::PAPER_HUBS.to_vec());
    let (index, _) = build_index(&g, &hubs, &config);
    let engine = QueryEngine::new(&g, &hubs, &index, config);
    let result = engine.query(toy::A, &StoppingCondition::l1_error(1e-11));
    for v in 0..8u32 {
        let got = result.scores.get(v);
        let want = GOLDEN_PPV_FROM_A[v as usize];
        assert!(
            (got - want).abs() < 1e-9,
            "node {}: engine {got} vs golden {want}",
            toy::NAMES[v as usize]
        );
    }
}

#[test]
fn hub_selection_by_expected_utility() {
    // EU(v) = PageRank(v)·|Out(v)| (Eq. 7). On the self-loop variant the
    // absorbing sinks dominate PageRank, and d is the strongest interior
    // node: EU ranks c > e > d > a > b > f > g > h (hand-checked by power
    // iteration; a's PageRank is pure teleport 0.15/8, b/f/h tie at
    // 0.0219375 but differ in out-degree 3/2/1).
    let g = toy::graph();
    let expected_order: [NodeId; 8] = [
        toy::C,
        toy::E,
        toy::D,
        toy::A,
        toy::B,
        toy::F,
        toy::G,
        toy::H,
    ];
    for count in 1..=8usize {
        let hubs = select_hubs(&g, HubPolicy::ExpectedUtility, count, 0);
        assert_eq!(hubs.len(), count);
        for (rank, &v) in expected_order.iter().enumerate() {
            assert_eq!(
                hubs.is_hub(v),
                rank < count,
                "count {count}: node {} (EU rank {rank})",
                toy::NAMES[v as usize]
            );
        }
    }
}

#[test]
fn phi_equals_true_l1_error_to_1e12() {
    // Eq. 6: after every increment, φ(k) = 1 − ‖r̂‖₁ IS the L1 error —
    // no exact PPV needed. With truncation off, the identity must hold to
    // floating-point accuracy against the hand-computed golden PPV.
    let g = toy::graph();
    let config = exact_config();
    let hubs = HubSet::from_ids(8, toy::PAPER_HUBS.to_vec());
    let (index, _) = build_index(&g, &hubs, &config);
    let engine = QueryEngine::new(&g, &hubs, &index, config);
    let mut session = engine.session(toy::A);
    for step in 0..12 {
        let phi = session.l1_error();
        let true_gap: f64 = (0..8u32)
            .map(|v| (GOLDEN_PPV_FROM_A[v as usize] - session.estimate().get(v)).abs())
            .sum();
        assert!(
            (phi - true_gap).abs() <= 1e-12,
            "step {step}: φ {phi} vs true gap {true_gap} \
             (diff {:.3e})",
            (phi - true_gap).abs()
        );
        if !session.step() {
            break;
        }
    }
    assert!(
        session.l1_error() < 1e-9,
        "toy query should converge essentially exactly: φ = {}",
        session.l1_error()
    );
}
