//! Kernel-equivalence suite: the bucket-queue + CSR prime-PPV kernel
//! against a self-contained reference implementation of the original
//! binary-heap kernel (exact float priorities, discovery-order local
//! numbering).
//!
//! The two kernels must agree on the *semantics* — the prime-subgraph node
//! sets are order-free fixed points and match exactly; the solved prime
//! PPVs differ only in floating-point accumulation order (the new kernel
//! renumbers interiors by degree), so entries match to ≤ 1e-12. On top of
//! that, the fused one-shot path (`prime_ppv_into`) is pinned bit-for-bit
//! against the materialized `extract` + `solve` pipeline.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use fastppv::core::{Config, HubSet, PrimeComputer};
use fastppv::graph::gen::barabasi_albert;
use fastppv::graph::{Graph, NodeId};
use proptest::prelude::*;

/// The original kernel, kept verbatim as a test oracle: max-probability
/// Dijkstra over a `BinaryHeap` with exact float priorities, interior
/// locals in pop order, adjacency copied into a per-call subgraph, and the
/// same worklist solve.
mod reference {
    use super::*;

    struct ProbEntry(f64, NodeId);

    impl PartialEq for ProbEntry {
        fn eq(&self, other: &Self) -> bool {
            self.0 == other.0 && self.1 == other.1
        }
    }
    impl Eq for ProbEntry {}
    impl PartialOrd for ProbEntry {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for ProbEntry {
        fn cmp(&self, other: &Self) -> Ordering {
            self.0.total_cmp(&other.0).then(other.1.cmp(&self.1))
        }
    }

    pub struct Subgraph {
        pub nodes: Vec<NodeId>,
        pub num_interior: usize,
        adj_offsets: Vec<usize>,
        adj_targets: Vec<u32>,
        out_degree: Vec<u32>,
        source_is_hub: bool,
    }

    pub fn extract(graph: &Graph, hubs: &HubSet, source: NodeId, config: &Config) -> Subgraph {
        let alpha = config.alpha;
        let eps = config.epsilon;
        let n = graph.num_nodes();
        let mut best = vec![0.0f64; n];
        let mut local_of = vec![u32::MAX; n];
        let mut nodes: Vec<NodeId> = Vec::new();
        let push_local = |v: NodeId, nodes: &mut Vec<NodeId>, local_of: &mut [u32]| -> u32 {
            let slot = &mut local_of[v as usize];
            if *slot == u32::MAX {
                *slot = nodes.len() as u32;
                nodes.push(v);
            }
            *slot
        };
        let mut heap = BinaryHeap::new();
        best[source as usize] = 1.0;
        heap.push(ProbEntry(1.0, source));
        let mut interior: Vec<NodeId> = Vec::new();
        while let Some(ProbEntry(p, v)) = heap.pop() {
            if p < best[v as usize] {
                continue;
            }
            best[v as usize] = f64::INFINITY;
            interior.push(v);
            let d = graph.out_degree(v);
            if d == 0 {
                continue;
            }
            let w = p * (1.0 - alpha) / d as f64;
            if w < eps {
                continue;
            }
            for &t in graph.out_neighbors(v) {
                if hubs.is_hub(t) {
                    continue;
                }
                if w > best[t as usize] {
                    best[t as usize] = w;
                    heap.push(ProbEntry(w, t));
                }
            }
        }
        for &v in &interior {
            push_local(v, &mut nodes, &mut local_of);
        }
        let num_interior = nodes.len();
        let mut adj_offsets = vec![0usize];
        let mut adj_targets: Vec<u32> = Vec::new();
        let mut out_degree = Vec::new();
        for u in 0..num_interior {
            let v = nodes[u];
            out_degree.push(graph.out_degree(v) as u32);
            for &t in graph.out_neighbors(v) {
                let lt = push_local(t, &mut nodes, &mut local_of);
                adj_targets.push(lt);
            }
            adj_offsets.push(adj_targets.len());
        }
        Subgraph {
            nodes,
            num_interior,
            adj_offsets,
            adj_targets,
            out_degree,
            source_is_hub: hubs.is_hub(source),
        }
    }

    pub fn solve(sub: &Subgraph, config: &Config, clip: f64) -> Vec<(NodeId, f64)> {
        let alpha = config.alpha;
        let ni = sub.num_interior;
        let ntot = sub.nodes.len();
        let theta = config.solve_tolerance;
        let mut mass = vec![0.0f64; ni];
        let mut mass_next = vec![0.0f64; ni];
        let mut absorbed = vec![0.0f64; ntot - ni];
        let mut in_queue = vec![false; ni];
        let mut queue = std::collections::VecDeque::new();
        let mut source_returns = 0.0;
        mass_next[0] = 1.0;
        in_queue[0] = true;
        queue.push_back(0u32);
        let max_pushes = config
            .solve_max_iterations
            .saturating_mul(ni.max(1))
            .max(1_000);
        let mut pushes = 0usize;
        while let Some(u) = queue.pop_front() {
            let u = u as usize;
            in_queue[u] = false;
            let r = mass_next[u];
            if r == 0.0 {
                continue;
            }
            mass_next[u] = 0.0;
            mass[u] += r;
            pushes += 1;
            if pushes > max_pushes {
                break;
            }
            let d = sub.out_degree[u];
            if d == 0 {
                continue;
            }
            let share = r * (1.0 - alpha) / d as f64;
            for &t in &sub.adj_targets[sub.adj_offsets[u]..sub.adj_offsets[u + 1]] {
                let t = t as usize;
                if t >= ni {
                    absorbed[t - ni] += share;
                } else if t == 0 && sub.source_is_hub {
                    source_returns += share;
                } else {
                    mass_next[t] += share;
                    if mass_next[t] > theta && !in_queue[t] {
                        in_queue[t] = true;
                        queue.push_back(t as u32);
                    }
                }
            }
        }
        let mut entries: Vec<(NodeId, f64)> = Vec::new();
        let src_score = if sub.source_is_hub {
            alpha * source_returns
        } else {
            alpha * (mass[0] - 1.0)
        };
        if src_score >= clip && src_score > 0.0 {
            entries.push((sub.nodes[0], src_score));
        }
        for (&v, &m) in sub.nodes[1..ni].iter().zip(&mass[1..ni]) {
            let s = alpha * m;
            if s >= clip && s > 0.0 {
                entries.push((v, s));
            }
        }
        for (i, &a) in absorbed.iter().enumerate() {
            let s = alpha * a;
            if s >= clip && s > 0.0 {
                entries.push((sub.nodes[ni + i], s));
            }
        }
        entries.sort_unstable_by_key(|&(id, _)| id);
        entries
    }
}

fn sorted(mut v: Vec<NodeId>) -> Vec<NodeId> {
    v.sort_unstable();
    v
}

/// Asserts the new kernel against the reference for one (graph, hubs,
/// source, config) instance. `clip` is 0 throughout: a positive clip would
/// let sub-ulp score differences flip borderline entries in or out.
fn assert_kernels_agree(
    g: &Graph,
    hubs: &HubSet,
    pc: &mut PrimeComputer,
    q: NodeId,
    config: &Config,
) {
    let ref_sub = reference::extract(g, hubs, q, config);
    let new_sub = pc.extract(g, hubs, q, config);
    assert_eq!(new_sub.num_interior, ref_sub.num_interior);
    assert_eq!(
        sorted(new_sub.nodes[..new_sub.num_interior].to_vec()),
        sorted(ref_sub.nodes[..ref_sub.num_interior].to_vec())
    );
    assert_eq!(
        sorted(new_sub.nodes[new_sub.num_interior..].to_vec()),
        sorted(ref_sub.nodes[ref_sub.num_interior..].to_vec())
    );

    let ref_entries = reference::solve(&ref_sub, config, 0.0);
    let (new_ppv, size) = pc.prime_ppv(g, hubs, q, config, 0.0);
    assert_eq!(size, ref_sub.nodes.len());
    let new_entries = new_ppv.entries.entries();
    assert_eq!(new_entries.len(), ref_entries.len());
    for (&(nv, ns), &(rv, rs)) in new_entries.iter().zip(&ref_entries) {
        assert_eq!(nv, rv);
        assert!(
            (ns - rs).abs() <= 1e-12,
            "source {q} node {nv}: bucket kernel {ns} vs heap kernel {rs}"
        );
    }

    // The fused one-shot path is pinned bit-for-bit to the materialized
    // extract + solve pipeline (same arrays, same op order).
    let materialized = pc.solve(&new_sub, config, 0.0);
    assert_eq!(&materialized, &new_ppv);
    let (slice, fused_size) = pc.prime_ppv_into(g, hubs, q, config, 0.0);
    assert_eq!(fused_size, size);
    assert_eq!(slice, new_ppv.entries.entries());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn bucket_kernel_matches_heap_kernel_on_random_ba_graphs(
        n in 60usize..240,
        m in 2usize..5,
        seed in 0u64..1_000,
        hub_stride in 2usize..12,
        eps_exp in 4u32..9,
    ) {
        let g = barabasi_albert(n, m, seed);
        // Deterministic but varied hub sets: every `hub_stride`-th node.
        let hub_ids: Vec<NodeId> =
            (0..n as NodeId).step_by(hub_stride).collect();
        let hubs = HubSet::from_ids(n, hub_ids);
        let mut config = Config::default()
            .with_epsilon(10f64.powi(-(eps_exp as i32)))
            .with_clip(0.0);
        // The sweep solver and the FIFO oracle place their sub-tolerance
        // leftovers differently; per-entry divergence is bounded by
        // 2·|interior|·θ, so θ = 1e-15 keeps it well inside 1e-12.
        config.solve_tolerance = 1e-15;
        let mut pc = PrimeComputer::new(n);
        // A hub source, a non-hub source, and the highest-degree node.
        let non_hub = (0..n as NodeId).find(|&v| !hubs.is_hub(v));
        let top_degree = (0..n as NodeId).max_by_key(|&v| (g.out_degree(v), v)).unwrap();
        let mut sources = vec![0 as NodeId, top_degree];
        if let Some(v) = non_hub {
            sources.push(v);
        }
        for q in sources {
            assert_kernels_agree(&g, &hubs, &mut pc, q, &config);
        }
    }

    #[test]
    fn bucket_kernel_matches_heap_kernel_without_hubs(
        n in 40usize..150,
        seed in 0u64..500,
    ) {
        // No hubs: the prime subgraph is the whole ε-ball — the deepest
        // searches and largest solves the kernel sees.
        let g = barabasi_albert(n, 3, seed);
        let hubs = HubSet::empty(n);
        let mut config = Config::default().with_epsilon(1e-7).with_clip(0.0);
        config.solve_tolerance = 1e-15;
        let mut pc = PrimeComputer::new(n);
        assert_kernels_agree(&g, &hubs, &mut pc, 0, &config);
    }
}

#[test]
fn kernels_agree_on_exhaustive_config() {
    // Deep ε (1e-14) drives the bucket queue across ~50 octaves.
    let g = barabasi_albert(120, 3, 7);
    let hub_ids: Vec<NodeId> = (0..120).step_by(5).collect();
    let hubs = HubSet::from_ids(120, hub_ids);
    let config = Config::exhaustive();
    let mut pc = PrimeComputer::new(120);
    for q in [0u32, 5, 17, 119] {
        assert_kernels_agree(&g, &hubs, &mut pc, q, &config);
    }
}

#[test]
fn kernels_agree_for_unusual_alphas() {
    // α above 0.5 (k = 0, octave-wide buckets) and α below the monotone
    // clamp threshold 1/65 (the re-expansion fallback path).
    let g = barabasi_albert(150, 3, 11);
    let hub_ids: Vec<NodeId> = (0..150).step_by(4).collect();
    let hubs = HubSet::from_ids(150, hub_ids);
    for alpha in [0.6, 0.3, 0.01, 0.005] {
        let mut config = Config::default()
            .with_alpha(alpha)
            .with_epsilon(1e-7)
            .with_clip(0.0);
        config.solve_tolerance = 1e-15;
        let mut pc = PrimeComputer::new(150);
        for q in [0u32, 3, 77] {
            assert_kernels_agree(&g, &hubs, &mut pc, q, &config);
        }
    }
}
